//! Execution context: the per-query runtime state.
//!
//! Every structure here is thread-safe (`Sync`): under
//! [`crate::exec::ExecMode::Parallel`] one worker thread per segment
//! executes against the same `ExecContext` concurrently, so the
//! interior mutability is `parking_lot::Mutex` / atomics rather than
//! `RefCell`. Sequential execution uses the identical state — the locks
//! are simply uncontended.

use crate::exec::ExecMode;
use crate::prepared::CompiledCache;
use crate::stats::{ExecutionStats, SegmentStats};
use crate::stream::CancelToken;
use mpp_common::{Datum, Error, MotionId, PartOid, PartScanId, Result, Row, RowBlock, SegmentId};
use mpp_plan::PhysicalPlan;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-query runtime state shared by all operators and segments.
///
/// `part_registry` is the simulator's stand-in for the shared-memory
/// channel between a `PartitionSelector` and its `DynamicScan` (paper
/// §2.2): it is keyed by *(partScanId, segment)*, so OIDs selected on one
/// segment are only visible to the scan on the **same** segment — exactly
/// the property that makes plans with a Motion between the pair invalid.
/// That keying is mode-independent: parallel workers share the registry
/// but never read another segment's entries.
pub struct ExecContext<'a> {
    /// Prepared-statement parameter values (`$1` = index 0).
    pub params: &'a [Datum],
    mode: ExecMode,
    /// (scan id, segment) → selected partition OIDs. An entry exists once
    /// the selector has run, even when it selected nothing.
    part_registry: Mutex<HashMap<(PartScanId, SegmentId), BTreeSet<PartOid>>>,
    /// Legacy init-plan OID-set parameters (`$oidsN` gates). Both drivers
    /// run every `InitPlanOids` before the main plan, so gates only ever
    /// see the table complete.
    oid_params: Mutex<HashMap<u32, HashSet<PartOid>>>,
    /// Motion materialization cache: stable [`MotionId`] → per-source-
    /// segment rows. `Arc` so concurrent readers share one materialization.
    motion_cache: Mutex<HashMap<MotionId, Arc<Vec<Vec<Row>>>>>,
    /// Block-engine Motion cache: per-source-segment chunk lists. A run
    /// uses one engine throughout, so the two caches never both fill for
    /// the same Motion.
    motion_cache_blocks: Mutex<HashMap<MotionId, Arc<Vec<Vec<RowBlock>>>>>,
    /// Row-engine Broadcast memo: the child output flattened across
    /// source segments exactly once per Motion, shared by every
    /// destination segment instead of each re-walking (and re-collecting)
    /// the whole cache.
    broadcast_flat: Mutex<HashMap<MotionId, Arc<Vec<Row>>>>,
    /// Block-engine Redistribute memo: distribution hashes per chunk (in
    /// flattened source order), computed once per Motion instead of once
    /// per destination segment.
    redist_hashes: Mutex<HashMap<MotionId, Arc<Vec<Vec<u64>>>>>,
    /// Node address → stable id, precomputed from the plan's pre-order
    /// Motion positions. Read-only during execution.
    motion_ids: HashMap<usize, MotionId>,
    /// Set once the parallel driver finishes the init-plan phase: from
    /// then on a Motion cache miss is a stage-scheduling bug, not an
    /// occasion to materialize lazily from a worker thread.
    motions_frozen: AtomicBool,
    /// Pre-routed Gather output: the parallel stage driver has each
    /// worker clone its own slice output (warm and concurrent), so the
    /// consuming slice on segment 0 can take the assembled copy instead
    /// of cloning the whole cache serially. Take-once: re-executions
    /// (e.g. a Motion under a nested-loop inner) fall back to cloning
    /// from `motion_cache` exactly as sequential execution does.
    preroute: Mutex<HashMap<MotionId, Vec<Row>>>,
    /// Block-engine pre-routed Gather output (chunk lists concatenated in
    /// segment order).
    preroute_blocks: Mutex<HashMap<MotionId, Vec<RowBlock>>>,
    /// Rows materialized per Motion node.
    per_motion_rows: Mutex<HashMap<MotionId, u64>>,
    motions: AtomicU64,
    /// One slot per segment; a worker only locks its own during parallel
    /// execution, so contention is nil.
    seg_stats: Vec<Mutex<SegmentStats>>,
    /// Compiled-expression template cache of a [`crate::prepared::PreparedPlan`]
    /// execution; `None` for ad-hoc plans (compile per slice, as before).
    compiled_cache: Option<&'a CompiledCache>,
    /// Cooperative cancellation, checked at block boundaries (per stage,
    /// per segment, per partition scanned). A fresh token never trips, so
    /// the collecting entry points pay only an uncontended atomic load.
    cancel: CancelToken,
}

impl<'a> ExecContext<'a> {
    /// Context for executing `plan`: precomputes the Motion-id overlay.
    pub fn for_plan(
        plan: &PhysicalPlan,
        params: &'a [Datum],
        num_segments: usize,
        mode: ExecMode,
    ) -> ExecContext<'a> {
        let motion_ids = plan
            .motion_sites()
            .into_iter()
            .map(|(id, node)| (node as *const PhysicalPlan as usize, id))
            .collect();
        ExecContext {
            motion_ids,
            mode,
            ..ExecContext::new(params, num_segments)
        }
    }

    /// Bare context with no plan overlay — for unit tests of the
    /// registry itself.
    pub fn new(params: &'a [Datum], num_segments: usize) -> ExecContext<'a> {
        ExecContext {
            params,
            mode: ExecMode::Sequential,
            part_registry: Mutex::new(HashMap::new()),
            oid_params: Mutex::new(HashMap::new()),
            motion_cache: Mutex::new(HashMap::new()),
            motion_cache_blocks: Mutex::new(HashMap::new()),
            broadcast_flat: Mutex::new(HashMap::new()),
            redist_hashes: Mutex::new(HashMap::new()),
            motion_ids: HashMap::new(),
            motions_frozen: AtomicBool::new(false),
            preroute: Mutex::new(HashMap::new()),
            preroute_blocks: Mutex::new(HashMap::new()),
            per_motion_rows: Mutex::new(HashMap::new()),
            motions: AtomicU64::new(0),
            seg_stats: (0..num_segments.max(1))
                .map(|_| Mutex::new(SegmentStats::default()))
                .collect(),
            compiled_cache: None,
            cancel: CancelToken::new(),
        }
    }

    /// Attach a prepared plan's template cache to this execution.
    pub(crate) fn with_compiled_cache(mut self, cache: Option<&'a CompiledCache>) -> Self {
        self.compiled_cache = cache;
        self
    }

    /// Attach a cancellation token to this execution.
    pub(crate) fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Cooperative cancellation point: `Err(Error::Cancelled)` once the
    /// token tripped (explicitly or by deadline).
    pub fn check_cancel(&self) -> Result<()> {
        self.cancel.check()
    }

    pub(crate) fn compiled_cache(&self) -> Option<&'a CompiledCache> {
        self.compiled_cache
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The `partition_propagation` built-in (paper Table 1): push OIDs to
    /// the DynamicScan with this id on this segment.
    pub fn propagate_parts(
        &self,
        id: PartScanId,
        segment: SegmentId,
        oids: impl IntoIterator<Item = PartOid>,
    ) {
        let mut reg = self.part_registry.lock();
        reg.entry((id, segment)).or_default().extend(oids);
    }

    /// Mark a selector as having run even if it selected no partitions.
    pub fn mark_selector_ran(&self, id: PartScanId, segment: SegmentId) {
        self.part_registry.lock().entry((id, segment)).or_default();
    }

    /// Consume the propagated OIDs for a DynamicScan. Errors if no
    /// selector ran on this segment — the runtime symptom of the §3.1
    /// invalid plans, detected identically in both execution modes.
    pub fn consume_parts(&self, id: PartScanId, segment: SegmentId) -> Result<Vec<PartOid>> {
        self.part_registry
            .lock()
            .get(&(id, segment))
            .map(|s| s.iter().copied().collect())
            .ok_or_else(|| {
                Error::InvalidPlan(format!(
                    "DynamicScan {id} on {segment}: no PartitionSelector ran in this \
                     process (is a Motion separating the pair?)"
                ))
            })
    }

    /// Publish an init-plan OID set.
    pub fn set_oid_param(&self, param: u32, oids: HashSet<PartOid>) {
        self.oid_params.lock().insert(param, oids);
    }

    /// Has this init-plan parameter been published already? The
    /// `InitPlanOids` operator uses this to run exactly once even though
    /// the driver pre-runs init plans and the node is then visited again
    /// during the main traversal.
    pub fn oid_param_published(&self, param: u32) -> bool {
        self.oid_params.lock().contains_key(&param)
    }

    /// Gate check for a legacy `PartScan`. Init plans run before the main
    /// plan in both modes, so an absent parameter means the plan never
    /// computes it — an invalid plan, not a timing issue.
    pub fn oid_param_contains(&self, param: u32, oid: PartOid) -> Result<bool> {
        self.oid_params
            .lock()
            .get(&param)
            .map(|set| set.contains(&oid))
            .ok_or_else(|| {
                Error::InvalidPlan(format!("OID-set parameter $oids{param} was never computed"))
            })
    }

    /// Stable id of a Motion node, from the precomputed overlay.
    pub(crate) fn motion_id_of(&self, node: &PhysicalPlan) -> Result<MotionId> {
        self.motion_ids
            .get(&(node as *const PhysicalPlan as usize))
            .copied()
            .ok_or_else(|| {
                Error::Internal("Motion node not in the plan the context was built for".into())
            })
    }

    pub(crate) fn motion_cached(&self, id: MotionId) -> Option<Arc<Vec<Vec<Row>>>> {
        self.motion_cache.lock().get(&id).cloned()
    }

    pub(crate) fn motion_store(&self, id: MotionId, per_segment: Arc<Vec<Vec<Row>>>) {
        self.motion_cache.lock().insert(id, per_segment);
    }

    pub(crate) fn motion_cached_blocks(&self, id: MotionId) -> Option<Arc<Vec<Vec<RowBlock>>>> {
        self.motion_cache_blocks.lock().get(&id).cloned()
    }

    pub(crate) fn motion_store_blocks(&self, id: MotionId, per_segment: Arc<Vec<Vec<RowBlock>>>) {
        self.motion_cache_blocks.lock().insert(id, per_segment);
    }

    /// Row-engine Broadcast: flatten the materialized child output across
    /// source segments once per Motion and share the result. Every
    /// destination segment still receives its own `Vec<Row>` (rows are
    /// refcounted, so that is pointer copies), but the per-segment walk
    /// over the whole cache is gone.
    pub(crate) fn broadcast_flattened(
        &self,
        id: MotionId,
        build: impl FnOnce() -> Vec<Row>,
    ) -> Arc<Vec<Row>> {
        Arc::clone(
            self.broadcast_flat
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(build())),
        )
    }

    /// Block-engine Redistribute: distribution hashes for every chunk (in
    /// flattened source order), computed once per Motion and shared by
    /// all destination segments' routing passes.
    pub(crate) fn redistribute_hashes(
        &self,
        id: MotionId,
        build: impl FnOnce() -> Vec<Vec<u64>>,
    ) -> Arc<Vec<Vec<u64>>> {
        Arc::clone(
            self.redist_hashes
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(build())),
        )
    }

    /// Store a pre-routed copy of a Gather's output for its first
    /// consumption on segment 0.
    pub(crate) fn preroute_put(&self, id: MotionId, rows: Vec<Row>) {
        self.preroute.lock().insert(id, rows);
    }

    /// Take the pre-routed copy, if one exists and was not consumed yet.
    pub(crate) fn preroute_take(&self, id: MotionId) -> Option<Vec<Row>> {
        self.preroute.lock().remove(&id)
    }

    /// Block-engine variants of the Gather preroute.
    pub(crate) fn preroute_blocks_put(&self, id: MotionId, chunks: Vec<RowBlock>) {
        self.preroute_blocks.lock().insert(id, chunks);
    }

    pub(crate) fn preroute_blocks_take(&self, id: MotionId) -> Option<Vec<RowBlock>> {
        self.preroute_blocks.lock().remove(&id)
    }

    /// After this, a Motion cache miss under parallel execution is an
    /// internal error (the stage driver must have materialized it).
    pub(crate) fn freeze_motions(&self) {
        self.motions_frozen.store(true, Ordering::Release);
    }

    pub(crate) fn motions_frozen(&self) -> bool {
        self.motions_frozen.load(Ordering::Acquire)
    }

    /// Record one Motion materialization: a global motion count, rows
    /// keyed by the stable motion id, and per-source-segment rows-moved
    /// attribution.
    pub(crate) fn record_motion(&self, id: MotionId, per_source: &[Vec<Row>]) {
        let counts: Vec<u64> = per_source.iter().map(|r| r.len() as u64).collect();
        self.record_motion_counts(id, &counts);
    }

    /// [`ExecContext::record_motion`] over pre-counted per-source row
    /// totals — the block engine's chunked payloads record through this.
    pub(crate) fn record_motion_counts(&self, id: MotionId, per_source: &[u64]) {
        self.motions.fetch_add(1, Ordering::Relaxed);
        let total: u64 = per_source.iter().sum();
        *self.per_motion_rows.lock().entry(id).or_insert(0) += total;
        for (s, &rows) in per_source.iter().enumerate() {
            if let Some(slot) = self.seg_stats.get(s) {
                slot.lock().rows_moved += rows;
            }
        }
    }

    /// This segment's stats slot.
    pub(crate) fn seg_stats(&self, seg: SegmentId) -> MutexGuard<'_, SegmentStats> {
        self.seg_stats[seg.0 as usize % self.seg_stats.len()].lock()
    }

    /// Merge everything into the final query-level stats.
    pub fn into_stats(self) -> ExecutionStats {
        let mut stats = ExecutionStats {
            motions: self.motions.into_inner(),
            per_motion_rows: self.per_motion_rows.into_inner(),
            ..ExecutionStats::default()
        };
        stats.merge_segments(self.seg_stats.into_iter().map(|m| m.into_inner()).collect());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_is_per_segment() {
        let ctx = ExecContext::new(&[], 2);
        ctx.propagate_parts(PartScanId(1), SegmentId(0), [PartOid(5)]);
        assert_eq!(
            ctx.consume_parts(PartScanId(1), SegmentId(0)).unwrap(),
            vec![PartOid(5)]
        );
        // Same scan id, different segment: nothing was propagated there.
        let err = ctx.consume_parts(PartScanId(1), SegmentId(1)).unwrap_err();
        assert_eq!(err.kind(), "invalid_plan");
    }

    #[test]
    fn empty_selection_still_counts_as_ran() {
        let ctx = ExecContext::new(&[], 1);
        ctx.mark_selector_ran(PartScanId(2), SegmentId(0));
        assert!(ctx
            .consume_parts(PartScanId(2), SegmentId(0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn propagation_accumulates_and_dedupes() {
        let ctx = ExecContext::new(&[], 1);
        ctx.propagate_parts(PartScanId(1), SegmentId(0), [PartOid(5), PartOid(6)]);
        ctx.propagate_parts(PartScanId(1), SegmentId(0), [PartOid(5), PartOid(7)]);
        assert_eq!(
            ctx.consume_parts(PartScanId(1), SegmentId(0)).unwrap(),
            vec![PartOid(5), PartOid(6), PartOid(7)]
        );
    }

    #[test]
    fn oid_params_gate() {
        let ctx = ExecContext::new(&[], 1);
        assert!(ctx.oid_param_contains(1, PartOid(5)).is_err());
        assert!(!ctx.oid_param_published(1));
        ctx.set_oid_param(1, [PartOid(5)].into_iter().collect());
        assert!(ctx.oid_param_published(1));
        assert!(ctx.oid_param_contains(1, PartOid(5)).unwrap());
        assert!(!ctx.oid_param_contains(1, PartOid(6)).unwrap());
    }

    #[test]
    fn registry_is_shared_across_threads() {
        // Parallel workers publish into and read from the same registry;
        // per-segment keying keeps their entries apart.
        let ctx = ExecContext::new(&[], 4);
        std::thread::scope(|s| {
            for seg in 0..4u32 {
                let ctx = &ctx;
                s.spawn(move || {
                    ctx.propagate_parts(PartScanId(1), SegmentId(seg), [PartOid(seg)]);
                });
            }
        });
        for seg in 0..4u32 {
            assert_eq!(
                ctx.consume_parts(PartScanId(1), SegmentId(seg)).unwrap(),
                vec![PartOid(seg)]
            );
        }
    }

    #[test]
    fn context_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<ExecContext<'static>>();
    }
}
