//! Acceptance property: `PreparedStatement::execute` with differing
//! parameters returns exactly what a fresh `sql_with_params` of the same
//! statement returns — same rows, same partitions scanned — across both
//! planner flavors and both execution modes.

use mpp_session::SessionCtx;
use mppart::common::Datum;
use mppart::testing::sorted;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::{ExecMode, MppDb, Planner};
use proptest::prelude::*;
use std::sync::Arc;

fn ctx(seed: u64, mode: ExecMode) -> Arc<SessionCtx> {
    let db = MppDb::new(3).with_exec_mode(mode);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 300,
            s_rows: 100,
            r_parts: Some(20),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed,
        },
    )
    .unwrap();
    SessionCtx::with_db(db, 32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prepared_equals_fresh_for_every_binding(
        v1 in 0i32..200,
        v2 in 0i32..200,
        v3 in 0i32..200,
        seed in 0u64..25,
    ) {
        let sql = "SELECT * FROM r WHERE b = $1 OR b > $2";
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let ctx = ctx(seed, mode);
            let r_oid = ctx.db().catalog().table_by_name("r").unwrap().oid;
            for planner in [Planner::Orca, Planner::Legacy] {
                let session = ctx.session().with_planner(planner);
                let prepared = session.prepare(sql).unwrap();
                prop_assert_eq!(prepared.param_count(), 2);
                for (a, b) in [(v1, v2), (v2, v3), (v3, v1)] {
                    let params = [Datum::Int32(a), Datum::Int32(b)];
                    let got = prepared.execute(&params).unwrap();
                    let fresh = ctx.db().run_sql(sql, &params, planner).unwrap();
                    prop_assert_eq!(
                        sorted(got.rows),
                        sorted(fresh.rows),
                        "params=({},{}) planner={:?} mode={:?}",
                        a, b, planner, mode
                    );
                    prop_assert_eq!(
                        got.stats.parts_scanned_for(r_oid),
                        fresh.stats.parts_scanned_for(r_oid),
                        "params=({},{}) planner={:?} mode={:?}",
                        a, b, planner, mode
                    );
                }
            }
        }
    }

    /// The implicit plan cache is just as invisible: an ad-hoc session
    /// statement (cached or not) equals the uncached database call.
    #[test]
    fn cached_adhoc_equals_uncached(
        v in 0i32..200,
        seed in 0u64..25,
    ) {
        let sql = "SELECT * FROM r WHERE b < $1";
        let ctx = ctx(seed, ExecMode::Sequential);
        let session = ctx.session();
        let params = [Datum::Int32(v)];
        let first = session.sql_with_params(sql, &params).unwrap();
        let second = session.sql_with_params(sql, &params).unwrap();
        prop_assert!(second.cache.unwrap().hit);
        let fresh = ctx.db().sql_with_params(sql, &params).unwrap();
        prop_assert_eq!(sorted(first.rows), sorted(fresh.rows.clone()));
        prop_assert_eq!(sorted(second.rows), sorted(fresh.rows));
    }
}
