//! DDL invalidation: every catalog change (CREATE / DROP / ALTER TABLE,
//! including adding and dropping partitions) bumps the catalog version,
//! and no cached plan from before the change is ever executed again —
//! sessions re-plan, and results always reflect the current metadata.

use mpp_session::SessionCtx;
use mppart::common::Datum;
use mppart::workloads::{setup_rs, SynthConfig};
use std::sync::Arc;

fn ctx() -> Arc<SessionCtx> {
    let ctx = SessionCtx::new(2);
    setup_rs(ctx.db().storage(), &SynthConfig::default()).unwrap();
    ctx
}

fn count(ctx: &Arc<SessionCtx>, session: &mpp_session::Session, sql: &str) -> (i64, bool) {
    let _ = ctx;
    let out = session.sql(sql).unwrap();
    (
        out.rows[0].values()[0].as_i64().unwrap(),
        out.cache.unwrap().hit,
    )
}

#[test]
fn create_table_invalidates_cached_plans() {
    let ctx = ctx();
    let s = ctx.session();
    let q = "SELECT count(*) FROM r WHERE b < 100";
    let (n0, hit0) = count(&ctx, &s, q);
    let (n1, hit1) = count(&ctx, &s, q);
    assert!(!hit0);
    assert!(hit1);
    assert_eq!(n0, n1);
    let before = ctx.db().catalog().version();
    s.sql("CREATE TABLE unrelated (x int)").unwrap();
    assert!(ctx.db().catalog().version() > before);
    // The DDL swept the cache: the next run re-plans.
    let (n2, hit2) = count(&ctx, &s, q);
    assert!(!hit2, "plan cached before DDL must not be reused");
    assert_eq!(n0, n2);
    let info = s.sql(q).unwrap().cache.unwrap();
    assert!(info.hit);
    assert!(
        info.invalidations >= 1,
        "sweep must be observable: {info:?}"
    );
}

#[test]
fn drop_and_recreate_never_serves_stale_rows() {
    let ctx = ctx();
    let s = ctx.session();
    s.sql("CREATE TABLE t (a int)").unwrap();
    s.sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let (n, _) = count(&ctx, &s, "SELECT count(*) FROM t");
    assert_eq!(n, 3);
    s.sql("DROP TABLE t").unwrap();
    // The cached plan must not resurrect the dropped table.
    assert!(s.sql("SELECT count(*) FROM t").is_err());
    // Recreate under the same name: fresh rows, never the old three.
    s.sql("CREATE TABLE t (a int)").unwrap();
    let (n, hit) = count(&ctx, &s, "SELECT count(*) FROM t");
    assert_eq!(n, 0, "recreated table must read empty");
    assert!(!hit);
    s.sql("INSERT INTO t VALUES (9)").unwrap();
    let (n, _) = count(&ctx, &s, "SELECT count(*) FROM t");
    assert_eq!(n, 1);
}

#[test]
fn alter_partitions_replan_and_stay_exact() {
    let ctx = ctx();
    let s = ctx.session();
    s.sql(
        "CREATE TABLE m (k int, v int) \
         PARTITION BY RANGE (k) (START (0) END (30) EVERY (10))",
    )
    .unwrap();
    s.sql("INSERT INTO m VALUES (5, 1), (15, 1), (25, 1)")
        .unwrap();
    let total = "SELECT count(*) FROM m";
    let pruned = "SELECT count(*) FROM m WHERE k >= 30";
    assert_eq!(count(&ctx, &s, total), (3, false));
    assert_eq!(count(&ctx, &s, pruned), (0, false));
    assert!(count(&ctx, &s, pruned).1);

    // ADD PARTITION: the cached pruned plan knew nothing about the new
    // leaf; serving it would silently miss the new rows.
    s.sql("ALTER TABLE m ADD PARTITION p4 START (30) END (40)")
        .unwrap();
    s.sql("INSERT INTO m VALUES (35, 7)").unwrap();
    let (n, hit) = count(&ctx, &s, pruned);
    assert_eq!(n, 1, "re-planned query must see the new partition's rows");
    assert!(!hit);
    assert_eq!(count(&ctx, &s, total).0, 4);

    // DROP PARTITION: rows of the dropped leaf disappear everywhere.
    s.sql("ALTER TABLE m DROP PARTITION p4").unwrap();
    let (n, hit) = count(&ctx, &s, total);
    assert_eq!(n, 3, "dropped partition's rows must be gone");
    assert!(!hit);
    assert_eq!(count(&ctx, &s, pruned).0, 0);
}

#[test]
fn prepared_statements_track_every_ddl_kind() {
    let ctx = ctx();
    let s = ctx.session();
    s.sql(
        "CREATE TABLE m (k int, v int) \
         PARTITION BY RANGE (k) (START (0) END (20) EVERY (10))",
    )
    .unwrap();
    s.sql("INSERT INTO m VALUES (5, 1), (15, 1)").unwrap();
    let q = s.prepare("SELECT count(*) FROM m WHERE k < $1").unwrap();
    let run = |hi: i32| {
        let out = q.execute(&[Datum::Int32(hi)]).unwrap();
        (
            out.rows[0].values()[0].as_i64().unwrap(),
            out.cache.unwrap().hit,
        )
    };
    assert_eq!(run(100), (2, true)); // prepare() already planned it
    let v0 = q.catalog_version();

    s.sql("ALTER TABLE m ADD PARTITION p9 START (20) END (30)")
        .unwrap();
    s.sql("INSERT INTO m VALUES (25, 1)").unwrap();
    let (n, hit) = run(100);
    assert_eq!(n, 3, "handle must re-prepare against the altered table");
    assert!(!hit);
    assert!(q.catalog_version() > v0);

    s.sql("ALTER TABLE m DROP PARTITION p9").unwrap();
    assert_eq!(run(100).0, 2);

    s.sql("CREATE TABLE shadow (z int)").unwrap();
    assert_eq!(run(10), (1, false));
    assert_eq!(run(10), (1, true));

    // Dropping the underlying table: the handle fails to re-prepare
    // rather than serving rows of a table that no longer exists.
    s.sql("DROP TABLE m").unwrap();
    assert!(q.execute(&[Datum::Int32(100)]).is_err());
}
