//! Concurrency: N sessions over one shared [`SessionCtx`] must return
//! exactly what one session running sequentially returns, the shared
//! counters must add up, and DDL racing with queries must never produce
//! a wrong answer — only a re-plan.

use mpp_session::{Session, SessionCtx};
use mppart::common::{Datum, Row};
use mppart::testing::sorted;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::{ExecMode, MppDb};
use std::sync::Arc;

fn ctx_with_mode(mode: ExecMode) -> Arc<SessionCtx> {
    let db = MppDb::new(3).with_exec_mode(mode);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 300,
            s_rows: 100,
            r_parts: Some(20),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed: 7,
        },
    )
    .unwrap();
    SessionCtx::with_db(db, 64)
}

const QUERIES: &[(&str, i32)] = &[
    ("SELECT * FROM r WHERE b = $1", 17),
    ("SELECT * FROM r WHERE b < $1", 40),
    ("SELECT count(*) FROM r WHERE b BETWEEN $1 AND 90", 50),
    ("SELECT * FROM s WHERE a >= $1", 150),
    ("SELECT count(*) FROM s, r WHERE r.b = s.b AND s.a < $1", 60),
];

fn run_all(s: &Session) -> Vec<Vec<Row>> {
    QUERIES
        .iter()
        .map(|(q, v)| sorted(s.sql_with_params(q, &[Datum::Int32(*v)]).unwrap().rows))
        .collect()
}

#[test]
fn n_sessions_match_the_sequential_reference() {
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        let ctx = ctx_with_mode(mode);
        // Reference: one session, one pass, before any caching happened.
        let reference = run_all(&ctx.session());

        const SESSIONS: usize = 8;
        const ROUNDS: usize = 4;
        // sessions → rounds → queries → rows
        let results: Vec<Vec<Vec<Vec<Row>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|_| {
                    let session = ctx.session();
                    scope.spawn(move || -> Vec<Vec<Vec<Row>>> {
                        (0..ROUNDS).map(|_| run_all(&session)).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for per_session in &results {
            for pass in per_session {
                assert_eq!(pass, &reference, "mode={mode:?}");
            }
        }

        // Counters add up: every statement was either a hit or a miss,
        // and the cache never held more than the distinct key count.
        let info = ctx.cache().info(false);
        let total = ((SESSIONS * ROUNDS + 1) * QUERIES.len()) as u64;
        assert_eq!(info.hits + info.misses, total, "mode={mode:?}");
        assert!(ctx.cache().len() <= QUERIES.len());
        // Racing first-misses are allowed, but the steady state is hits.
        assert!(
            info.hits >= (SESSIONS * (ROUNDS - 1) * QUERIES.len()) as u64,
            "mode={mode:?}: too few hits: {info:?}"
        );
        assert_eq!(info.evictions, 0, "mode={mode:?}");
    }
}

#[test]
fn ddl_racing_with_queries_stays_exact() {
    let ctx = ctx_with_mode(ExecMode::Sequential);
    let s = ctx.session();
    // DDL churns a *different* table, so every query answer is still
    // uniquely determined — invalidation may cost re-plans, never rows.
    let reference = run_all(&s);
    std::thread::scope(|scope| {
        let churn = {
            let session = ctx.session();
            scope.spawn(move || {
                for i in 0..20 {
                    session
                        .sql(&format!("CREATE TABLE churn{i} (x int)"))
                        .unwrap();
                    session.sql(&format!("DROP TABLE churn{i}")).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let session = ctx.session();
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..6 {
                        assert_eq!(&run_all(&session), reference);
                    }
                })
            })
            .collect();
        churn.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    });
    // Versions moved many times; the cache must have noticed.
    let info = ctx.cache().info(false);
    assert!(info.invalidations > 0 || info.misses > QUERIES.len() as u64);
}

#[test]
fn one_prepared_statement_shared_by_many_threads() {
    let ctx = ctx_with_mode(ExecMode::Sequential);
    let s = ctx.session();
    let q = Arc::new(s.prepare("SELECT count(*) FROM r WHERE b < $1").unwrap());
    let expect = |hi: i32| {
        ctx.db()
            .sql_with_params("SELECT count(*) FROM r WHERE b < $1", &[Datum::Int32(hi)])
            .unwrap()
            .rows[0]
            .values()[0]
            .clone()
    };
    let expected: Vec<Datum> = (0..8).map(|i| expect(i * 25)).collect();
    std::thread::scope(|scope| {
        for (i, want) in expected.iter().enumerate() {
            let q = Arc::clone(&q);
            scope.spawn(move || {
                for _ in 0..5 {
                    let out = q.execute(&[Datum::Int32(i as i32 * 25)]).unwrap();
                    assert_eq!(&out.rows[0].values()[0], want);
                }
            });
        }
    });
    // All threads shared one compiled-template set.
    assert!(q.compiled_sites() > 0);
}
