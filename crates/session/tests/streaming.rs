//! The streaming execution path is the *one* implementation — the
//! collecting APIs are wrappers over it. These tests pin the contract:
//! streamed chunks reassemble to exactly the collected result (rows and
//! stats) across engines, modes and planners; large results arrive in
//! multiple chunks; a sink or token can stop a query mid-stream and the
//! partial statistics survive the error.

use mpp_session::SessionCtx;
use mppart::common::{Datum, Row};
use mppart::testing::sorted;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::{CancelToken, ExecEngine, ExecMode, MppDb, ResultChunk, StreamOutcome};
use std::sync::Arc;
use std::time::Duration;

fn ctx_with(mode: ExecMode, engine: ExecEngine) -> Arc<SessionCtx> {
    let db = MppDb::new(3).with_exec_mode(mode).with_exec_engine(engine);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 2_000,
            s_rows: 400,
            r_parts: Some(20),
            s_parts: None,
            b_domain: 100,
            a_domain: 500,
            seed: 11,
        },
    )
    .unwrap();
    SessionCtx::with_db(db, 32)
}

/// Stream a statement, collecting every chunk; panics on sink error.
fn stream_all(ctx: &Arc<SessionCtx>, sql: &str, params: &[Datum]) -> (Vec<Row>, StreamOutcome) {
    let session = ctx.session();
    let cancel = CancelToken::new();
    let mut rows = Vec::new();
    let mut sink = |chunk: ResultChunk| {
        chunk.append_to(&mut rows);
        Ok(())
    };
    let out = session.sql_stream_with_params(sql, params, &cancel, &mut sink);
    (rows, out)
}

const STATEMENTS: &[&str] = &[
    "SELECT count(*) FROM r",
    "SELECT a, b FROM r WHERE b = 7",
    "SELECT b, count(*) FROM r WHERE b < 40 GROUP BY b",
    "SELECT r.a, s.b FROM r JOIN s ON r.b = s.b WHERE r.a < 100",
    "EXPLAIN SELECT a FROM r WHERE b = 3",
];

#[test]
fn streamed_chunks_reassemble_to_the_collected_result() {
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        for engine in [ExecEngine::Row, ExecEngine::Batch] {
            let ctx = ctx_with(mode, engine);
            let session = ctx.session();
            for sql in STATEMENTS {
                let collected = session.sql(sql).unwrap();
                let (rows, out) = stream_all(&ctx, sql, &[]);
                out.result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{mode:?}/{engine:?} {sql}: {e}"));
                assert_eq!(
                    sorted(rows),
                    sorted(collected.rows),
                    "{mode:?}/{engine:?}: rows diverge for {sql}"
                );
                assert_eq!(out.stats.rows_returned, collected.stats.rows_returned);
                assert_eq!(out.stats.tuples_scanned, collected.stats.tuples_scanned);
                assert_eq!(out.stats.parts_scanned, collected.stats.parts_scanned);
                assert_eq!(out.stats.rows_moved, collected.stats.rows_moved);
            }
        }
    }
}

#[test]
fn large_results_arrive_in_multiple_chunks() {
    let ctx = ctx_with(ExecMode::Sequential, ExecEngine::Batch);
    let session = ctx.session();
    let cancel = CancelToken::new();
    let mut chunks = 0usize;
    let mut rows = 0usize;
    let mut sink = |chunk: ResultChunk| {
        chunks += 1;
        rows += chunk.len();
        Ok(())
    };
    let out = session.sql_stream_with_params("SELECT a, b FROM r", &[], &cancel, &mut sink);
    out.result.unwrap();
    assert_eq!(rows, 2_000);
    assert!(
        chunks > 1,
        "2000 rows over 3 segments must arrive incrementally"
    );
}

#[test]
fn sink_error_aborts_the_query_and_keeps_partial_stats() {
    let ctx = ctx_with(ExecMode::Sequential, ExecEngine::Batch);
    let session = ctx.session();
    let full = session.sql("SELECT a, b FROM r").unwrap();

    let cancel = CancelToken::new();
    let mut seen = 0usize;
    let mut sink = |chunk: ResultChunk| {
        seen += chunk.len();
        // The network layer's "client went away": fail the sink after
        // the first chunk.
        Err(mppart::common::Error::Cancelled("reader gone".into()))
    };
    let out = session.sql_stream_with_params("SELECT a, b FROM r", &[], &cancel, &mut sink);
    let err = out.result.unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(seen > 0, "the first chunk must have been delivered");
    assert!(seen < 2_000, "the query must not have run to completion");
    // Partial stats survive the error (what an Error frame carries).
    assert!(out.stats.tuples_scanned > 0);
    assert!(out.stats.rows_returned < full.stats.rows_returned);
}

#[test]
fn cancel_token_stops_streaming_between_chunks() {
    let ctx = ctx_with(ExecMode::Sequential, ExecEngine::Batch);
    let session = ctx.session();

    let cancel = CancelToken::new();
    let mut first = true;
    let mut sink = |_chunk: ResultChunk| {
        if first {
            first = false;
            cancel.cancel();
        }
        Ok(())
    };
    let out = session.sql_stream_with_params("SELECT a, b FROM r", &[], &cancel, &mut sink);
    let err = out.result.unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(!cancel.timed_out());
}

#[test]
fn expired_timeout_reports_timed_out() {
    let ctx = ctx_with(ExecMode::Sequential, ExecEngine::Batch);
    let session = ctx.session();
    let cancel = CancelToken::with_timeout(Duration::ZERO);
    let mut sink = |_chunk: ResultChunk| Ok(());
    let out = session.sql_stream_with_params("SELECT a, b FROM r", &[], &cancel, &mut sink);
    assert_eq!(out.result.unwrap_err().kind(), "cancelled");
    assert!(cancel.timed_out());
}

#[test]
fn prepared_statements_stream_identically_to_execute() {
    let ctx = ctx_with(ExecMode::Sequential, ExecEngine::Batch);
    let session = ctx.session();
    let ps = session.prepare("SELECT a, b FROM r WHERE b = $1").unwrap();

    for key in [0i32, 7, 63, 99] {
        let params = [Datum::Int32(key)];
        let collected = ps.execute(&params).unwrap();

        let cancel = CancelToken::new();
        let mut rows = Vec::new();
        let mut sink = |chunk: ResultChunk| {
            chunk.append_to(&mut rows);
            Ok(())
        };
        let out = ps.execute_stream(&params, &cancel, &mut sink);
        out.result.unwrap();
        assert_eq!(sorted(rows), sorted(collected.rows), "key {key}");
        assert_eq!(out.stats.rows_returned, collected.stats.rows_returned);
        assert!(
            out.cache.is_some(),
            "streamed execution must report cache info"
        );
    }
}

#[test]
fn ddl_streams_with_no_chunks_and_bumps_the_catalog() {
    let ctx = ctx_with(ExecMode::Sequential, ExecEngine::Batch);
    let session = ctx.session();

    let cancel = CancelToken::new();
    let mut chunks = 0usize;
    let mut sink = |_chunk: ResultChunk| {
        chunks += 1;
        Ok(())
    };
    let out =
        session.sql_stream_with_params("CREATE TABLE st (k int, v int)", &[], &cancel, &mut sink);
    out.result.unwrap();
    assert_eq!(chunks, 0, "DDL produces no result chunks");

    session.sql("INSERT INTO st VALUES (1, 2), (3, 4)").unwrap();
    let (rows, out) = stream_all(&ctx, "SELECT k, v FROM st", &[]);
    out.result.unwrap();
    assert_eq!(rows.len(), 2);
}
