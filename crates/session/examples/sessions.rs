//! Sessions, prepared statements and the plan cache, end to end:
//! one shared database, several threads, DDL invalidation in between.
//!
//!     cargo run --release -p mpp-session --example sessions

use mpp_session::SessionCtx;
use mppart::common::Datum;

fn main() -> mppart::common::Result<()> {
    let ctx = SessionCtx::new(4);
    let session = ctx.session();
    session.sql(
        "CREATE TABLE orders (o_id bigint, amount double, date date NOT NULL) \
         DISTRIBUTED BY (o_id) \
         PARTITION BY RANGE (date) \
         (START ('2013-01-01') END ('2014-01-01') EVERY (1 MONTH))",
    )?;
    for m in 1..=12 {
        session.sql(&format!(
            "INSERT INTO orders VALUES ({m}, {}.50, '2013-{m:02}-15')",
            m * 100
        ))?;
    }

    // Explicit prepare/execute: planned once, partition OIDs re-resolved
    // per binding.
    let stmt =
        session.prepare("SELECT count(*), avg(amount) FROM orders WHERE date BETWEEN $1 AND $2")?;
    for (label, lo, hi) in [
        ("Q1", (2013, 1, 1), (2013, 3, 31)),
        ("July", (2013, 7, 1), (2013, 7, 31)),
        ("H2", (2013, 7, 1), (2013, 12, 31)),
    ] {
        let out = stmt.execute(&[
            Datum::date_ymd(lo.0, lo.1, lo.2),
            Datum::date_ymd(hi.0, hi.1, hi.2),
        ])?;
        println!(
            "{label:>5}: {} | parts scanned {:>2} | cache hit: {}",
            out.rows[0],
            out.stats.total_parts_scanned(),
            out.cache.unwrap().hit,
        );
    }

    // Ad-hoc SQL from many threads shares one cached plan.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let s = ctx.session();
            scope.spawn(move || {
                for _ in 0..5 {
                    s.sql("SELECT count(*) FROM orders WHERE date >= '2013-10-01'")
                        .unwrap();
                }
            });
        }
    });
    let info = ctx.cache().info(false);
    println!(
        "\n4 threads x 5 queries: {} plan cache hits, {} misses, {} cached plan(s)",
        info.hits,
        info.misses,
        ctx.cache().len()
    );

    // DDL bumps the catalog version: cached plans and prepared handles
    // re-plan instead of serving stale metadata.
    session
        .sql("ALTER TABLE orders ADD PARTITION jan2014 START ('2014-01-01') END ('2014-02-01')")?;
    session.sql("INSERT INTO orders VALUES (13, 99.00, '2014-01-05')")?;
    let out = stmt.execute(&[Datum::date_ymd(2013, 12, 1), Datum::date_ymd(2014, 1, 31)])?;
    println!(
        "\nafter ALTER TABLE … ADD PARTITION: {} (re-planned: {})",
        out.rows[0],
        !out.cache.unwrap().hit,
    );
    Ok(())
}
