//! The process-wide plan cache: sharded, LRU-evicting, version-checked.
//!
//! Keys are (normalized SQL, planner flavor, execution mode) — the three
//! inputs that determine the physical plan. Values are fully prepared
//! statements ([`mppart::PreparedQuery`]) behind `Arc`s, so a cache hit
//! shares not just the plan but the executor's compiled-expression
//! templates with every concurrent user.
//!
//! Entries carry the planning epoch they were optimized against — the
//! (catalog version, statistics version) pair recorded on the
//! `PreparedQuery`. A lookup that finds an entry from an older epoch
//! removes it and reports a miss; DDL and ANALYZE paths may also
//! [`PlanCache::sweep`] eagerly. Statistics count because the
//! cost-based join-order search reads them: a plan cached before
//! ANALYZE may order joins badly afterwards, so it must re-optimize
//! even though it would still be *correct*. An execution already
//! running on an invalidated plan is unaffected — the `Arc` keeps the
//! plan alive, and storage reads of partitions dropped mid-flight
//! simply see no rows — so invalidation is safe at any point.

use mppart::{CacheInfo, ExecMode, Planner, PreparedQuery};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default total entry capacity of a [`PlanCache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

const SHARDS: usize = 8;

/// What determines a cached plan: the canonical statement text (see
/// [`crate::normalize_sql`]), which planner produced it, and which
/// execution mode it was sliced for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub sql: String,
    pub planner: Planner,
    pub mode: ExecMode,
}

struct Entry {
    q: Arc<PreparedQuery>,
    /// Last-touch stamp from the shard's logical clock; the minimum
    /// stamp is the LRU victim.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Sharded LRU plan cache shared by every session of a
/// [`crate::SessionCtx`]. All methods take `&self`; contention is one
/// short `Mutex` per shard, and the hit/miss/eviction/invalidation
/// counters are lock-free.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cached plan for `key`, if present *and* optimized against the
    /// current planning epoch (catalog version, statistics version). An
    /// epoch mismatch removes the stale entry and counts as both an
    /// invalidation and a miss.
    pub fn lookup(&self, key: &CacheKey, epoch: (u64, u64)) -> Option<Arc<PreparedQuery>> {
        if self.per_shard_cap > 0 {
            let mut guard = self.shard(key).lock();
            let shard = &mut *guard;
            shard.tick += 1;
            let stamp = shard.tick;
            let stale = match shard.map.get_mut(key) {
                Some(e) if e.q.epoch() == epoch => {
                    e.stamp = stamp;
                    let q = Arc::clone(&e.q);
                    drop(guard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(q);
                }
                Some(_) => true,
                None => false,
            };
            if stale {
                shard.map.remove(key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a freshly prepared plan, evicting the shard's
    /// least-recently-used entry when at capacity. (The victim scan is
    /// linear in the shard — shards are small by construction.)
    ///
    /// Victim selection is epoch-aware: an entry from an older epoch
    /// than the inserted plan's is preferred over any live entry and is
    /// accounted as an *invalidation*, not an eviction — a lookup or
    /// sweep would have dropped it for the same reason. Counting it as
    /// an eviction would double-report one catalog or stats bump (once
    /// here, once in the sweep/lookup bookkeeping) and misstate
    /// capacity pressure.
    pub fn insert(&self, key: CacheKey, q: Arc<PreparedQuery>) {
        if self.per_shard_cap == 0 {
            return;
        }
        let current = q.epoch();
        let mut guard = self.shard(&key).lock();
        let shard = &mut *guard;
        shard.tick += 1;
        let stamp = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_cap {
            // `false < true`: stale entries sort before live ones, then
            // least-recent stamp among equals.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| (e.q.epoch() == current, e.stamp))
                .map(|(k, e)| (k.clone(), e.q.epoch() != current));
            if let Some((victim, was_stale)) = victim {
                shard.map.remove(&victim);
                if was_stale {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        shard.map.insert(key, Entry { q, stamp });
    }

    /// Eagerly drop every entry not optimized against the current epoch.
    /// Called after DDL and ANALYZE so stale plans don't linger until
    /// their next lookup; lookups would catch them anyway.
    pub fn sweep(&self, epoch: (u64, u64)) {
        for shard in &self.shards {
            let mut g = shard.lock();
            let before = g.map.len();
            g.map.retain(|_, e| e.q.epoch() == epoch);
            let dropped = (before - g.map.len()) as u64;
            if dropped > 0 {
                self.invalidations.fetch_add(dropped, Ordering::Relaxed);
            }
        }
    }

    /// Cached entries right now, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }

    /// Point-in-time counter snapshot, tagged with whether the
    /// statement that asked reused a cached plan.
    pub fn info(&self, hit: bool) -> CacheInfo {
        CacheInfo {
            hit,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mppart::MppDb;

    fn key(sql: &str) -> CacheKey {
        CacheKey {
            sql: sql.into(),
            planner: Planner::Orca,
            mode: ExecMode::Sequential,
        }
    }

    fn prepared(db: &MppDb, sql: &str) -> Arc<PreparedQuery> {
        Arc::new(db.prepare(sql).unwrap())
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        let cache = PlanCache::new(16);
        let v = db.planning_epoch();
        assert!(cache.lookup(&key("q"), v).is_none());
        cache.insert(key("q"), prepared(&db, "SELECT a FROM t"));
        assert!(cache.lookup(&key("q"), v).is_some());
        // A catalog bump makes the entry stale: removed on next lookup.
        assert!(cache.lookup(&key("q"), (v.0 + 1, v.1)).is_none());
        assert_eq!(cache.len(), 0);
        let info = cache.info(false);
        assert_eq!((info.hits, info.misses, info.invalidations), (1, 2, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        let v = db.planning_epoch();
        // Single-slot shards: every shard holds one entry, so two keys
        // landing in the same shard must evict the older one.
        let cache = PlanCache::new(SHARDS);
        let keys: Vec<CacheKey> = (0..64).map(|i| key(&format!("q{i}"))).collect();
        for k in &keys {
            cache.insert(k.clone(), prepared(&db, "SELECT a FROM t"));
        }
        assert!(cache.len() <= SHARDS);
        assert!(cache.info(false).evictions >= (64 - SHARDS) as u64);
        // The most recently inserted key of some shard must still be hot.
        let survivors = keys.iter().filter(|k| cache.lookup(k, v).is_some()).count();
        assert_eq!(survivors, cache.len());
    }

    /// Two distinct keys guaranteed to land in `cache`'s same shard,
    /// plus `extra` more (probing the private shard mapping directly).
    fn same_shard_keys(cache: &PlanCache, n: usize) -> Vec<CacheKey> {
        let first = key("s0");
        let mut keys = vec![first.clone()];
        let mut i = 1;
        while keys.len() < n {
            let k = key(&format!("s{i}"));
            if std::ptr::eq(cache.shard(&k), cache.shard(&first)) {
                keys.push(k);
            }
            i += 1;
        }
        keys
    }

    #[test]
    fn stale_victim_at_insert_counts_once_as_invalidation() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        let cache = PlanCache::new(SHARDS); // single-slot shards
        let keys = same_shard_keys(&cache, 2);
        cache.insert(keys[0].clone(), prepared(&db, "SELECT a FROM t"));
        db.sql("CREATE TABLE u (b int)").unwrap(); // keys[0]'s plan is now stale
        cache.insert(keys[1].clone(), prepared(&db, "SELECT b FROM u"));
        let info = cache.info(false);
        assert_eq!(info.evictions, 0, "stale victim misreported as an eviction");
        assert_eq!(info.invalidations, 1);
        // The displaced entry is gone; the DDL sweep must not report the
        // same entry a second time.
        cache.sweep(db.planning_epoch());
        let info = cache.info(false);
        assert_eq!((info.evictions, info.invalidations), (0, 1));
        assert!(cache.lookup(&keys[1], db.planning_epoch()).is_some());
    }

    #[test]
    fn insert_prefers_stale_victims_over_the_lru_entry() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        let cache = PlanCache::new(2 * SHARDS); // two-slot shards
        let keys = same_shard_keys(&cache, 3);
        let v0 = db.planning_epoch();
        cache.insert(keys[0].clone(), prepared(&db, "SELECT a FROM t"));
        db.sql("CREATE TABLE u (b int)").unwrap();
        cache.insert(keys[1].clone(), prepared(&db, "SELECT b FROM u"));
        // Touch the stale entry so it is *not* the LRU victim.
        assert!(cache.lookup(&keys[0], v0).is_some());
        cache.insert(keys[2].clone(), prepared(&db, "SELECT b FROM u"));
        // The stale-but-recently-touched entry was displaced, not the
        // colder live one, and it counted as an invalidation.
        let v1 = db.planning_epoch();
        assert!(cache.lookup(&keys[1], v1).is_some());
        assert!(cache.lookup(&keys[0], v1).is_none());
        let info = cache.info(false);
        assert_eq!((info.evictions, info.invalidations), (0, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        let cache = PlanCache::new(0);
        cache.insert(key("q"), prepared(&db, "SELECT a FROM t"));
        assert!(cache.lookup(&key("q"), db.planning_epoch()).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn sweep_drops_only_stale_entries() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        let cache = PlanCache::new(16);
        cache.insert(key("old"), prepared(&db, "SELECT a FROM t"));
        db.sql("CREATE TABLE u (b int)").unwrap(); // bumps the version
        cache.insert(key("new"), prepared(&db, "SELECT b FROM u"));
        cache.sweep(db.planning_epoch());
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key("new"), db.planning_epoch()).is_some());
        assert_eq!(cache.info(false).invalidations, 1);
    }

    #[test]
    fn analyze_bumps_only_the_stats_half_of_the_epoch() {
        let db = MppDb::new(2);
        db.sql("CREATE TABLE t (a int)").unwrap();
        db.sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let cache = PlanCache::new(16);
        cache.insert(key("q"), prepared(&db, "SELECT a FROM t"));
        let before = db.planning_epoch();
        assert!(cache.lookup(&key("q"), before).is_some());
        db.sql("ANALYZE t").unwrap();
        let after = db.planning_epoch();
        assert_eq!(before.0, after.0, "ANALYZE must not look like DDL");
        assert!(after.1 > before.1, "ANALYZE must bump the stats version");
        // The cached plan was costed against pre-ANALYZE statistics.
        assert!(cache.lookup(&key("q"), after).is_none());
        assert_eq!(cache.len(), 0);
    }
}
