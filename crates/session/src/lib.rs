//! # mpp-session — sessions, prepared statements and the plan cache
//!
//! [`mppart::MppDb`] answers one statement at a time; this crate turns
//! it into something N clients can share:
//!
//! * [`SessionCtx`] — the process-wide context: one `MppDb` plus one
//!   [`PlanCache`], behind an `Arc`. `MppDb` is `Send + Sync` (checked
//!   at compile time below), so sessions run concurrently from any
//!   thread.
//! * [`Session`] — a lightweight per-client handle. Its [`Session::sql`]
//!   is a drop-in for `MppDb::sql`, except statements transparently hit
//!   the shared plan cache: parse/bind/optimize are paid once per
//!   distinct (normalized text, planner, exec-mode) triple, process-wide.
//! * [`Session::prepare`] → [`PreparedStatement`] — the explicit
//!   compile-once/execute-many handle. Parameters are bound per
//!   execution; partition OIDs are re-resolved by the plan's
//!   `PartitionSelector`s each time (paper §4.1), so `$n`-driven
//!   partition elimination stays exact under every binding.
//!
//! Staleness is governed by the catalog's monotonic version: every DDL
//! bumps it, cached plans record the version they were optimized
//! against, and any version mismatch re-plans instead of serving stale
//! metadata. A `PreparedStatement` re-prepares itself transparently;
//! cache entries are invalidated on lookup and swept after DDL.
//! Executions already in flight on an invalidated plan are safe: the
//! `Arc` keeps their plan alive, and rows of partitions dropped
//! mid-flight are gone from storage, so they are simply not produced.

mod cache;
mod normalize;

pub use cache::{CacheKey, PlanCache, DEFAULT_CACHE_CAPACITY};
pub use normalize::normalize_sql;

use mpp_common::{Datum, Result};
use mppart::{
    is_ddl, CancelToken, MppDb, Planner, PreparedQuery, QueryOutcome, RowSink, StreamOutcome,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// The whole design rests on sharing one database between threads; make
// the compiler prove it instead of a doc comment promising it.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MppDb>();
    assert_send_sync::<SessionCtx>();
    assert_send_sync::<Session>();
    assert_send_sync::<PreparedStatement>();
};

/// The shared, process-wide state behind every session: the database
/// and the plan cache.
pub struct SessionCtx {
    db: MppDb,
    cache: PlanCache,
}

impl SessionCtx {
    /// A context over a fresh database with the given segment count and
    /// the default plan-cache capacity.
    pub fn new(num_segments: usize) -> Arc<SessionCtx> {
        SessionCtx::with_db(MppDb::new(num_segments), DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap an existing database (any exec mode / optimizer config) with
    /// a plan cache of `cache_capacity` entries (0 disables caching).
    pub fn with_db(db: MppDb, cache_capacity: usize) -> Arc<SessionCtx> {
        Arc::new(SessionCtx {
            db,
            cache: PlanCache::new(cache_capacity),
        })
    }

    pub fn db(&self) -> &MppDb {
        &self.db
    }

    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Open a session. Cheap: a refcount bump and two counters.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            ctx: Arc::clone(self),
            planner: Planner::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Per-session cache counters (the process-wide ones live on
/// [`PlanCache`] and are reported in every outcome's `CacheInfo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    pub hits: u64,
    pub misses: u64,
}

/// One client's handle on a [`SessionCtx`]. All methods take `&self`;
/// open as many sessions as you have threads.
pub struct Session {
    ctx: Arc<SessionCtx>,
    planner: Planner,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Session {
    /// Route this session's statements through the given planner flavor
    /// (cache keys include it, so both flavors can be cached at once).
    pub fn with_planner(mut self, planner: Planner) -> Session {
        self.planner = planner;
        self
    }

    pub fn planner(&self) -> Planner {
        self.planner
    }

    pub fn ctx(&self) -> &Arc<SessionCtx> {
        &self.ctx
    }

    /// This session's own hit/miss counts.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Run a statement, reusing a cached plan when one is current.
    pub fn sql(&self, text: &str) -> Result<QueryOutcome> {
        self.sql_with_params(text, &[])
    }

    /// [`Session::sql`] with `$n` parameters bound. The cache key is the
    /// *normalized* text, so casing/whitespace/comment variants of one
    /// statement share a single cached plan.
    pub fn sql_with_params(&self, text: &str, params: &[Datum]) -> Result<QueryOutcome> {
        let db = self.ctx.db();
        let stmt = mpp_sql::parse(text)?;
        if is_ddl(&stmt) {
            // DDL (and ANALYZE, which rides the DDL path) never caches;
            // it bumps the planning epoch, so sweep the plans that
            // epoch just obsoleted.
            let mut out = db.run_sql(text, params, self.planner)?;
            self.ctx.cache.sweep(db.planning_epoch());
            out.cache = Some(self.ctx.cache.info(false));
            return Ok(out);
        }
        let (q, hit) = self.cached_prepare(text)?;
        let mut out = db.execute_prepared(&q, params)?;
        out.cache = Some(self.ctx.cache.info(hit));
        Ok(out)
    }

    /// Streaming [`Session::sql_with_params`]: result chunks flow through
    /// `sink` as segments finish, `cancel` stops execution at the next
    /// block boundary, and partial statistics survive errors. Identical
    /// plan-cache behavior (DDL sweeps, everything else keys on
    /// normalized text).
    pub fn sql_stream_with_params(
        &self,
        text: &str,
        params: &[Datum],
        cancel: &CancelToken,
        sink: &mut RowSink<'_>,
    ) -> StreamOutcome {
        let db = self.ctx.db();
        let stmt = match mpp_sql::parse(text) {
            Ok(stmt) => stmt,
            Err(e) => return StreamOutcome::failed(e),
        };
        if is_ddl(&stmt) {
            let mut out = db.stream_sql(text, params, self.planner, cancel, sink);
            if out.result.is_ok() {
                self.ctx.cache.sweep(db.planning_epoch());
            }
            out.cache = Some(self.ctx.cache.info(false));
            return out;
        }
        let (q, hit) = match self.cached_prepare(text) {
            Ok(pair) => pair,
            Err(e) => return StreamOutcome::failed(e),
        };
        let mut out = db.stream_prepared(&q, params, cancel, sink);
        out.cache = Some(self.ctx.cache.info(hit));
        out
    }

    /// The cache lookup behind [`Session::sql_with_params`], exposed so
    /// streaming front ends (the network server) can resolve the plan —
    /// and announce the result's row description — *before* execution
    /// starts. Counts a per-session hit or miss; the returned flag says
    /// which.
    pub fn cached_prepare(&self, text: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        let db = self.ctx.db();
        let key = CacheKey {
            sql: normalize_sql(text)?,
            planner: self.planner,
            mode: db.exec_mode(),
        };
        let epoch = db.planning_epoch();
        match self.ctx.cache.lookup(&key, epoch) {
            Some(q) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((q, true))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let q = Arc::new(db.prepare_with(text, self.planner)?);
                self.ctx.cache.insert(key, Arc::clone(&q));
                Ok((q, false))
            }
        }
    }

    /// Prepare a statement for repeated execution. Unlike the implicit
    /// cache, the returned handle pins its plan — no eviction can take
    /// it — but it still re-prepares itself if DDL moves the catalog.
    pub fn prepare(&self, text: &str) -> Result<PreparedStatement> {
        let q = self.ctx.db().prepare_with(text, self.planner)?;
        Ok(PreparedStatement {
            ctx: Arc::clone(&self.ctx),
            text: text.to_string(),
            planner: self.planner,
            slot: RwLock::new(Arc::new(q)),
        })
    }
}

/// A statement prepared once and executed many times, with staleness
/// handled for you: each [`PreparedStatement::execute`] checks the
/// catalog version and transparently re-prepares after DDL, so it never
/// runs a plan against metadata that no longer exists.
pub struct PreparedStatement {
    ctx: Arc<SessionCtx>,
    text: String,
    planner: Planner,
    slot: RwLock<Arc<PreparedQuery>>,
}

impl PreparedStatement {
    /// Execute with this call's parameter bindings (arity-checked
    /// exactly). Partition OIDs are re-resolved per execution, and the
    /// plan's compiled-expression templates are reused across calls.
    pub fn execute(&self, params: &[Datum]) -> Result<QueryOutcome> {
        let (q, hit) = self.current()?;
        let mut out = self.ctx.db().execute_prepared(&q, params)?;
        out.cache = Some(self.ctx.cache().info(hit));
        Ok(out)
    }

    /// Streaming [`PreparedStatement::execute`]: same transparent
    /// re-prepare on catalog change, but result chunks flow through
    /// `sink` and `cancel` stops execution at the next block boundary.
    pub fn execute_stream(
        &self,
        params: &[Datum],
        cancel: &CancelToken,
        sink: &mut RowSink<'_>,
    ) -> StreamOutcome {
        let (q, hit) = match self.current() {
            Ok(pair) => pair,
            Err(e) => return StreamOutcome::failed(e),
        };
        let mut out = self.ctx.db().stream_prepared(&q, params, cancel, sink);
        out.cache = Some(self.ctx.cache().info(hit));
        out
    }

    /// The statement's current plan, re-prepared if DDL or ANALYZE has
    /// obsoleted it. The flag reports whether the cached plan was still
    /// valid.
    fn current(&self) -> Result<(Arc<PreparedQuery>, bool)> {
        let db = self.ctx.db();
        let current = db.planning_epoch();
        let cached = {
            let g = self.slot.read();
            (g.epoch() == current).then(|| Arc::clone(&g))
        };
        match cached {
            Some(q) => Ok((q, true)),
            None => {
                let fresh = Arc::new(db.prepare_with(&self.text, self.planner)?);
                *self.slot.write() = Arc::clone(&fresh);
                Ok((fresh, false))
            }
        }
    }

    /// Exact number of `$n` parameters every execution must supply.
    pub fn param_count(&self) -> u32 {
        self.slot.read().param_count()
    }

    /// Output column names of the current plan (`["QUERY PLAN"]` for an
    /// `EXPLAIN`). Read from the plan as currently prepared; a DDL that
    /// races between this call and the next execution re-prepares the
    /// plan, which can change the answer.
    pub fn columns(&self) -> Vec<String> {
        let q = self.slot.read();
        if q.is_explain() {
            vec!["QUERY PLAN".to_string()]
        } else {
            q.plan()
                .output_cols()
                .iter()
                .map(|c| c.name.to_string())
                .collect()
        }
    }

    pub fn planner(&self) -> Planner {
        self.planner
    }

    pub fn sql_text(&self) -> &str {
        &self.text
    }

    /// The catalog version the current plan was optimized against.
    pub fn catalog_version(&self) -> u64 {
        self.slot.read().catalog_version()
    }

    /// The statistics version the current plan was costed against.
    pub fn stats_version(&self) -> u64 {
        self.slot.read().stats_version()
    }

    /// Compiled expression sites of the current plan (stable across
    /// executions — the signature of template reuse).
    pub fn compiled_sites(&self) -> usize {
        self.slot.read().compiled_sites()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_workloads::{setup_rs, SynthConfig};

    fn ctx() -> Arc<SessionCtx> {
        let ctx = SessionCtx::new(2);
        setup_rs(ctx.db().storage(), &SynthConfig::default()).unwrap();
        ctx
    }

    #[test]
    fn adhoc_sql_hits_the_shared_cache() {
        let ctx = ctx();
        let s1 = ctx.session();
        let s2 = ctx.session();
        let a = s1.sql("SELECT count(*) FROM r WHERE b < 100").unwrap();
        assert!(!a.cache.unwrap().hit);
        // Different session, different spelling — same cached plan.
        let b = s2.sql("select COUNT(*) from R where b < 100;").unwrap();
        let info = b.cache.unwrap();
        assert!(info.hit);
        assert_eq!(a.rows, b.rows);
        assert!(Arc::ptr_eq(&a.plan, &b.plan), "cached plan must be shared");
        assert_eq!((info.hits, info.misses), (1, 1));
        assert_eq!(s1.stats(), SessionStats { hits: 0, misses: 1 });
        assert_eq!(s2.stats(), SessionStats { hits: 1, misses: 0 });
    }

    #[test]
    fn params_share_one_cached_plan() {
        let ctx = ctx();
        let s = ctx.session();
        for v in [3, 7, 3] {
            let out = s
                .sql_with_params("SELECT * FROM r WHERE b = $1", &[Datum::Int32(v)])
                .unwrap();
            let fresh = ctx
                .db()
                .sql_with_params("SELECT * FROM r WHERE b = $1", &[Datum::Int32(v)])
                .unwrap();
            assert_eq!(out.rows, fresh.rows, "v={v}");
        }
        assert_eq!(s.stats(), SessionStats { hits: 2, misses: 1 });
        assert_eq!(ctx.cache().len(), 1);
    }

    #[test]
    fn planner_flavors_cache_separately() {
        let ctx = ctx();
        let orca = ctx.session();
        let legacy = ctx.session().with_planner(Planner::Legacy);
        let q = "SELECT count(*) FROM r WHERE b < 50";
        let a = orca.sql(q).unwrap();
        let b = legacy.sql(q).unwrap();
        assert_eq!(a.rows, b.rows);
        assert!(!b.cache.unwrap().hit, "legacy must not reuse the Orca plan");
        assert_eq!(ctx.cache().len(), 2);
    }

    #[test]
    fn prepared_statement_reprepares_after_ddl() {
        let ctx = ctx();
        let s = ctx.session();
        let q = s.prepare("SELECT count(*) FROM r WHERE b < $1").unwrap();
        let v0 = q.catalog_version();
        q.execute(&[Datum::Int32(100)]).unwrap();
        ctx.session().sql("CREATE TABLE side (x int)").unwrap();
        let out = q.execute(&[Datum::Int32(100)]).unwrap();
        assert!(
            !out.cache.unwrap().hit,
            "post-DDL execution must re-prepare"
        );
        assert!(q.catalog_version() > v0);
        let again = q.execute(&[Datum::Int32(100)]).unwrap();
        assert!(again.cache.unwrap().hit);
    }

    #[test]
    fn analyze_reoptimizes_cached_plans() {
        let ctx = ctx();
        let s = ctx.session();
        let q = "SELECT count(*) FROM r JOIN s ON r.a = s.a";
        let a = s.sql(q).unwrap();
        assert!(!a.cache.unwrap().hit);
        assert!(s.sql(q).unwrap().cache.unwrap().hit);
        // ANALYZE bumps the stats version: both the eager sweep and the
        // next lookup must treat the cached plan as stale, so the query
        // re-optimizes against the fresh statistics.
        let sv0 = ctx.db().planning_epoch();
        s.sql("ANALYZE r").unwrap();
        assert!(ctx.db().planning_epoch().1 > sv0.1);
        assert_eq!(ctx.cache().len(), 0, "sweep must drop pre-ANALYZE plans");
        let b = s.sql(q).unwrap();
        assert!(!b.cache.unwrap().hit, "post-ANALYZE execution must re-plan");
        assert_eq!(a.rows, b.rows);
        assert!(!Arc::ptr_eq(&a.plan, &b.plan), "plan must be rebuilt");
        // Prepared handles re-prepare lazily on the same trigger.
        let p = s.prepare("SELECT count(*) FROM s WHERE b < $1").unwrap();
        let sv1 = p.stats_version();
        p.execute(&[Datum::Int32(100)]).unwrap();
        s.sql("ANALYZE s").unwrap();
        let out = p.execute(&[Datum::Int32(100)]).unwrap();
        assert!(
            !out.cache.unwrap().hit,
            "post-ANALYZE handle must re-prepare"
        );
        assert!(p.stats_version() > sv1);
    }

    #[test]
    fn runtime_feedback_invalidates_stale_cached_plan() {
        use mppart::common::{Datum as D, Row};
        use mppart::plan::explain;

        // s starts tiny (20 rows, analyzed) so the cached join plan is
        // optimized for a small inner side.
        let ctx = SessionCtx::new(4);
        setup_rs(
            ctx.db().storage(),
            &SynthConfig {
                r_rows: 2_000,
                s_rows: 20,
                ..SynthConfig::default()
            },
        )
        .unwrap();
        let s = ctx.session();
        s.sql("ANALYZE r").unwrap();
        s.sql("ANALYZE s").unwrap();
        let q = "SELECT count(*) FROM r JOIN s ON r.a = s.a";
        assert!(!s.sql(q).unwrap().cache.unwrap().hit);
        assert!(s.sql(q).unwrap().cache.unwrap().hit);

        // Bulk-grow s by ~2500×. The coarse insert-time refresh updates
        // row counts but must NOT invalidate the cached plan — row-count
        // drift alone never flushes caches.
        let s_oid = ctx.db().catalog().table_by_name("s").unwrap().oid;
        let epoch = ctx.db().planning_epoch();
        ctx.db()
            .storage()
            .insert(
                s_oid,
                (0..50_000).map(|i| Row::new(vec![D::Int32(i % 1000), D::Int32(i % 1000)])),
            )
            .unwrap();
        assert_eq!(
            ctx.db().planning_epoch(),
            epoch,
            "coarse refresh must not invalidate"
        );

        // The next execution still serves the stale cached plan — and its
        // actual scan cardinality misses the plan-time estimate by >10×,
        // which lands in the feedback store and bumps the stats epoch.
        let stale = s.sql(q).unwrap();
        assert!(stale.cache.unwrap().hit, "stale plan served once more");
        assert!(
            ctx.db().planning_epoch().1 > epoch.1,
            ">10x miss must invalidate through the stats epoch"
        );
        assert_eq!(
            ctx.db().catalog().feedback_override(s_oid),
            Some(50_020),
            "observed cardinality recorded"
        );

        // The following lookup re-optimizes against the observed
        // cardinality: a different plan, identical results.
        let fresh = s.sql(q).unwrap();
        assert!(!fresh.cache.unwrap().hit, "post-feedback run must re-plan");
        assert_eq!(stale.rows, fresh.rows);
        assert_ne!(
            explain(&stale.plan),
            explain(&fresh.plan),
            "re-optimized plan must differ for a 2500x larger inner side"
        );

        // The loop settles: the re-optimized plan estimates near the
        // observation, so further executions neither miss nor re-bump.
        let settled = ctx.db().planning_epoch();
        assert!(s.sql(q).unwrap().cache.unwrap().hit);
        assert_eq!(ctx.db().planning_epoch(), settled, "no invalidation loop");
    }

    #[test]
    fn explain_statements_cache_too() {
        let ctx = ctx();
        let s = ctx.session();
        let a = s.sql("EXPLAIN SELECT * FROM r WHERE b = 5").unwrap();
        let b = s.sql("explain select * from r where b = 5").unwrap();
        assert!(b.cache.unwrap().hit);
        assert_eq!(a.rows, b.rows);
        assert!(!a.rows.is_empty());
    }
}
