//! SQL text normalization for plan-cache keys.
//!
//! Two statements that differ only in whitespace, comments, keyword /
//! identifier casing or trailing semicolons optimize to the same plan,
//! so they must map to the same cache key. Rather than invent a second
//! lexer, the key is the statement's token stream re-rendered in one
//! canonical spelling: identifiers lowercased (the dialect is
//! case-insensitive), literals printed canonically, one space between
//! tokens, `;` dropped.
//!
//! Literals stay in the key on purpose: this cache keys *plans*, and a
//! changed literal can change the plan (static partition elimination
//! prunes against constants — paper §4.1). Parameter markers `$n`
//! render as themselves, so the prepared form is shared across
//! executions no matter the bound values.

use mpp_common::Result;
use mpp_sql::lexer::{tokenize, Token};
use std::fmt::Write;

/// Canonical cache-key spelling of `sql`. Errors only when the text
/// does not lex — in which case it cannot plan either, and the caller
/// should surface the parse error instead.
pub fn normalize_sql(sql: &str) -> Result<String> {
    let toks = tokenize(sql)?;
    let mut out = String::new();
    for t in &toks {
        if matches!(t, Token::Semi) {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        render(t, &mut out);
    }
    Ok(out)
}

fn render(t: &Token, out: &mut String) {
    match t {
        Token::Ident(s) => out.push_str(&s.to_ascii_lowercase()),
        Token::Int(v) => write!(out, "{v}").unwrap(),
        Token::Float(v) => write!(out, "{v}").unwrap(),
        Token::Str(s) => write!(out, "'{}'", s.replace('\'', "''")).unwrap(),
        Token::Param(n) => write!(out, "${n}").unwrap(),
        Token::LParen => out.push('('),
        Token::RParen => out.push(')'),
        Token::Comma => out.push(','),
        Token::Dot => out.push('.'),
        Token::Semi => (),
        Token::Star => out.push('*'),
        Token::Plus => out.push('+'),
        Token::Minus => out.push('-'),
        Token::Slash => out.push('/'),
        Token::Percent => out.push('%'),
        Token::Eq => out.push('='),
        Token::Neq => out.push_str("<>"),
        Token::Lt => out.push('<'),
        Token::Le => out.push_str("<="),
        Token::Gt => out.push('>'),
        Token::Ge => out.push_str(">="),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casing_whitespace_and_semicolons_collapse() {
        let a = normalize_sql("SELECT * FROM R WHERE b = $1;").unwrap();
        let b = normalize_sql("select *\n  from r\twhere B=$1").unwrap();
        let c = normalize_sql("-- lead comment\nselect * from r where b = $1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, "select * from r where b = $1");
    }

    #[test]
    fn literals_distinguish_keys() {
        let a = normalize_sql("SELECT * FROM r WHERE b = 1").unwrap();
        let b = normalize_sql("SELECT * FROM r WHERE b = 2").unwrap();
        assert_ne!(a, b);
        // String escaping round-trips to one spelling.
        assert_eq!(
            normalize_sql("select 'it''s'").unwrap(),
            normalize_sql("SELECT   'it''s'").unwrap()
        );
    }

    #[test]
    fn bad_sql_does_not_normalize() {
        assert!(normalize_sql("select #").is_err());
    }
}
