//! # mpp-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§4), plus Criterion micro-benchmarks.
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 2 (partitioning overhead) | `cargo run -p mpp-bench --release --bin table2` |
//! | Table 3 + Figure 16 (elimination effectiveness) | `… --bin table3_fig16` |
//! | Figure 17 (runtime improvement) | `… --bin fig17` |
//! | Figure 18(a) (static plan size) | `… --bin fig18a` |
//! | Figure 18(b) (dynamic plan size) | `… --bin fig18b` |
//! | Figure 18(c) (DML plan size) | `… --bin fig18c` |
//! | Figure 14 (cost-based plan space) | `… --bin fig14_planspace` |
//!
//! Every binary prints a human-readable table and appends a JSON record
//! to `results/<name>.json` for EXPERIMENTS.md bookkeeping. Scale knobs
//! come from the `MPPART_SCALE` environment variable (a row-count
//! multiplier, default 1).

use std::time::{Duration, Instant};

/// Row-count multiplier from `MPPART_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MPPART_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scale a base row count.
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).max(1.0) as usize
}

/// Run `f` a few times and return the median wall-clock duration.
pub fn time_median<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters >= 1);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed());
        drop(out);
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Time two alternatives back to back, interleaved (a, b, a, b, …), and
/// return the median duration of each. Interleaving cancels slow drift
/// (allocator state, frequency scaling, cache warm-up) that would bias
/// two separately-timed blocks — use this when the point is the *ratio*
/// between the two.
pub fn time_median_pair<A, B>(
    iters: usize,
    mut fa: impl FnMut() -> A,
    mut fb: impl FnMut() -> B,
) -> (Duration, Duration) {
    assert!(iters >= 1);
    let mut sa = Vec::with_capacity(iters);
    let mut sb = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = fa();
        sa.push(t0.elapsed());
        drop(out);
        let t0 = Instant::now();
        let out = fb();
        sb.push(t0.elapsed());
        drop(out);
    }
    sa.sort();
    sb.sort();
    (sa[sa.len() / 2], sb[sb.len() / 2])
}

/// Append a JSON record to `results/<name>.json` (one JSON value per
/// line, so reruns accumulate).
pub fn write_result(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        use std::io::Write;
        let _ = writeln!(file, "{value}");
    }
}

/// Print a markdown-ish table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_timing_is_monotone_sane() {
        let d = time_median(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn scaled_never_zero() {
        assert!(scaled(0) >= 1);
        assert!(scaled(100) >= 1);
    }
}
