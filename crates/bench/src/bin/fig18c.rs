//! Paper Figure 18(c): plan size for the DML statement
//! `UPDATE R SET b = S.b FROM S WHERE R.a = S.a` with both R and S
//! partitioned, as the partition count grows.
//!
//! Shape to reproduce: the Planner enumerates every R-partition ×
//! S-partition join pair → quadratic growth; Orca stays flat.

use mpp_bench::{print_table, write_result};
use mppart::plan::{plan_node_count, plan_size_bytes};
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;

fn main() {
    println!("== Figure 18(c): DML plan size ==\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for parts in [50usize, 100, 150, 200, 250, 300] {
        let db = MppDb::new(4);
        setup_rs(
            db.storage(),
            &SynthConfig {
                r_rows: 50,
                s_rows: 50,
                r_parts: Some(parts),
                s_parts: Some(parts),
                b_domain: 3_000,
                a_domain: 1_000,
                seed: 7,
            },
        )
        .unwrap();
        let sql = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a";
        let orca_plan = db.plan(sql).unwrap();
        let planner_plan = db.plan_legacy(sql).unwrap();
        rows.push(vec![
            parts.to_string(),
            plan_size_bytes(&planner_plan).to_string(),
            plan_node_count(&planner_plan).to_string(),
            plan_size_bytes(&orca_plan).to_string(),
        ]);
        json.push(serde_json::json!({
            "parts": parts,
            "planner_bytes": plan_size_bytes(&planner_plan),
            "planner_nodes": plan_node_count(&planner_plan),
            "orca_bytes": plan_size_bytes(&orca_plan),
        }));
    }
    print_table(
        &[
            "#partitions (each table)",
            "Planner (bytes)",
            "Planner (nodes)",
            "Orca (bytes)",
        ],
        &rows,
    );
    println!("\n(paper Figure 18(c): Planner quadratic, Orca flat)");
    write_result("fig18c", &serde_json::json!({ "series": json }));
}
