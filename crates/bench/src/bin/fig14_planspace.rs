//! Paper Figures 13/14: the Memo's cost-based choice between enabling
//! dynamic partition elimination (move the outer side, keep the
//! partitioned side in place and select into it) and plain
//! redistribution with a full scan.
//!
//! `SELECT * FROM R, S WHERE R.pk = S.a` with R partitioned on pk. With a
//! small S the DPE plan (paper's Plan 4) must win; blowing S up past the
//! scan savings flips the choice.

use mpp_bench::write_result;
use mppart::core::OptimizerConfig;
use mppart::plan::{explain, PhysicalPlan};
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;

fn plan_for(r_rows: usize, s_rows: usize) -> (String, bool, bool) {
    let db = MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        use_memo: true,
        ..OptimizerConfig::default()
    });
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows,
            s_rows,
            r_parts: Some(100),
            s_parts: None,
            b_domain: 1_000,
            a_domain: 1_000,
            seed: 1,
        },
    )
    .unwrap();
    // Join S's *a* against R's partition key b, with a filter on S to give
    // the selector something to prune with.
    let plan = db
        .plan("SELECT * FROM s, r WHERE r.b = s.a AND s.b < 100")
        .unwrap();
    let mut dpe = false;
    plan.visit(&mut |p| {
        if let PhysicalPlan::PartitionSelector {
            child: Some(_),
            predicates,
            ..
        } = p
        {
            if predicates.iter().any(Option::is_some) {
                dpe = true;
            }
        }
    });
    let moved_outer = explain(&plan).contains("Motion");
    (explain(&plan), dpe, moved_outer)
}

fn main() {
    println!("== Figure 14: cost-based plan space (memo) ==\n");

    println!("--- case 1: R = 200k rows over 100 parts, S = 1k rows ---");
    let (text, dpe, _) = plan_for(200_000, 1_000);
    println!("{text}");
    println!("dynamic partition elimination chosen: {dpe} (expected: true — the paper's Plan 4)\n");
    let case1_dpe = dpe;

    println!("--- case 2: R = 200 rows over 100 parts, S = 500k rows ---");
    let (text, dpe2, _) = plan_for(200, 500_000);
    println!("{text}");
    println!(
        "dynamic partition elimination chosen: {dpe2} \
         (moving 500k rows to prune a 200-row table should lose)"
    );

    write_result(
        "fig14",
        &serde_json::json!({
            "case1_small_outer_dpe": case1_dpe,
            "case2_huge_outer_dpe": dpe2,
        }),
    );
}
