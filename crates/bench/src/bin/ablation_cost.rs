//! Cost-model ablation (the paper's §6 "future work: better modeling of
//! costs", and the root cause of its Figure 17 outliers).
//!
//! Dynamic partition elimination pays data movement (replicating or
//! redistributing the join's outer side) to save partition scans. The
//! crossover sits where the outer side grows too large for the scan
//! savings — and *where* that crossover falls depends on the cost
//! constants. This binary sweeps the outer-side size at three
//! per-partition-open costs and reports the Memo's choice, showing the
//! crossover move.

use mpp_bench::{print_table, write_result};
use mppart::core::cost::CostModel;
use mppart::core::{Optimizer, OptimizerConfig};
use mppart::expr::ColRefGenerator;
use mppart::plan::PhysicalPlan;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;

/// R is fixed: 20k rows over 100 partitions on b. S (unpartitioned) grows.
const R_ROWS: usize = 20_000;
const S_SIZES: [usize; 6] = [1_000, 10_000, 20_000, 40_000, 80_000, 240_000];
const PART_OPEN_COSTS: [f64; 3] = [5.0, 50.0, 500.0];

fn choice_for(s_rows: usize, part_open: f64) -> bool {
    let db = MppDb::new(4);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: R_ROWS,
            s_rows,
            r_parts: Some(100),
            s_parts: None,
            b_domain: 1_000,
            a_domain: 1_000,
            seed: 3,
        },
    )
    .unwrap();
    let opt = Optimizer::with_cost_model(
        db.catalog().clone(),
        OptimizerConfig {
            num_segments: 4,
            use_memo: true,
            ..OptimizerConfig::default()
        },
        CostModel {
            part_open,
            ..CostModel::with_segments(4)
        },
    );
    let gen = ColRefGenerator::starting_at(50_000);
    // Join S's *b* column (not its distribution key) against R's partition
    // key, so enabling DPE genuinely requires moving S.
    let bound = mppart::sql::plan_sql(
        "SELECT * FROM s, r WHERE r.b = s.b AND s.a < 100",
        db.catalog(),
        &gen,
    )
    .unwrap();
    let plan = opt.optimize(&bound.plan).unwrap();
    let mut dpe = false;
    plan.visit(&mut |p| {
        if let PhysicalPlan::PartitionSelector {
            child: Some(_),
            predicates,
            ..
        } = p
        {
            if predicates.iter().any(Option::is_some) {
                dpe = true;
            }
        }
    });
    dpe
}

fn main() {
    println!("== Ablation: where does DPE stop paying? ==");
    println!("R fixed at {R_ROWS} rows / 100 partitions; S (outer side) grows.\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &s_rows in &S_SIZES {
        let mut row = vec![format!("{s_rows}")];
        for &part_open in &PART_OPEN_COSTS {
            let dpe = choice_for(s_rows, part_open);
            row.push(if dpe {
                "DPE".into()
            } else {
                "full scan".to_string()
            });
            json.push(serde_json::json!({
                "s_rows": s_rows, "part_open": part_open, "dpe": dpe,
            }));
        }
        rows.push(row);
    }
    print_table(
        &[
            "S rows (outer)",
            "part_open=5",
            "part_open=50",
            "part_open=500",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: each column flips from DPE to full scan as the \
         outer side outgrows the scan savings; more expensive partition opens \
         push the flip later. The crossover's very existence — and its \
         sensitivity to these constants — is the tuning problem behind the \
         paper's Figure 17 outliers."
    );
    write_result("ablation_cost", &serde_json::json!({ "matrix": json }));
}
