//! Paper Table 3 + Figure 16: partition elimination effectiveness, Orca
//! vs the legacy Planner, over the TPC-DS-style workload.
//!
//! Table 3 classifies every query by who eliminated more partitions;
//! Figure 16 aggregates partitions scanned per fact table. The shapes to
//! reproduce: a large "equal" class (static and simple-join cases), a
//! sizable "Orca eliminates, Planner does not" class (subquery/multi-join
//! and parameterized cases), and strictly fewer partitions scanned by
//! Orca on every fact table.

use mpp_bench::{print_table, scaled, write_result};
use mppart::workloads::{setup_tpcds, tpcds_workload, TpcdsConfig};
use mppart::MppDb;
use std::collections::BTreeMap;

fn main() {
    let fact_rows = scaled(30_000);
    println!("== Table 3 / Figure 16: elimination effectiveness ({fact_rows} rows/fact) ==\n");
    let db = MppDb::new(4);
    let t = setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows,
            parts_per_fact: 24,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    let fact_names: BTreeMap<_, _> = t
        .facts
        .iter()
        .map(|(name, oid)| (*oid, name.clone()))
        .collect();

    let mut per_table: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // (planner, orca)
    let mut classes: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut per_query = Vec::new();

    for q in tpcds_workload() {
        let orca = db.sql_with_params(q.sql, &q.params).unwrap();
        let legacy = db.sql_legacy_with_params(q.sql, &q.params).unwrap();
        let mut orca_parts = 0usize;
        let mut legacy_parts = 0usize;
        // Total partitions of the facts this query actually touched:
        // "Planner does not eliminate" means it scanned all of them.
        let mut possible = 0usize;
        for (&oid, name) in &fact_names {
            let o = orca.stats.parts_scanned_for(oid);
            let l = legacy.stats.parts_scanned_for(oid);
            if o > 0 || l > 0 {
                possible += db.catalog().table(oid).unwrap().num_leaves();
            }
            orca_parts += o;
            legacy_parts += l;
            let e = per_table.entry(name.clone()).or_default();
            e.0 += l;
            e.1 += o;
        }
        let class = match orca_parts.cmp(&legacy_parts) {
            std::cmp::Ordering::Less if legacy_parts == possible => {
                "Orca eliminates parts, Planner does not"
            }
            std::cmp::Ordering::Less => "Orca eliminates more parts than Planner",
            std::cmp::Ordering::Equal => "Orca and Planner eliminate parts equally",
            std::cmp::Ordering::Greater => "Orca eliminates fewer parts than Planner",
        };
        *classes.entry(class).or_default() += 1;
        per_query.push(serde_json::json!({
            "query": q.name,
            "class_designed": format!("{:?}", q.class),
            "orca_parts": orca_parts,
            "planner_parts": legacy_parts,
        }));
    }

    let total: usize = classes.values().sum();
    println!("--- Table 3: workload classification ---");
    let order = [
        "Orca eliminates parts, Planner does not",
        "Orca eliminates more parts than Planner",
        "Orca and Planner eliminate parts equally",
        "Orca eliminates fewer parts than Planner",
    ];
    let rows: Vec<Vec<String>> = order
        .iter()
        .map(|c| {
            let n = classes.get(c).copied().unwrap_or(0);
            vec![
                c.to_string(),
                format!("{:.0}%", 100.0 * n as f64 / total as f64),
                n.to_string(),
            ]
        })
        .collect();
    print_table(&["Category", "Percentage", "Queries"], &rows);
    println!(
        "(paper: 11% / 3% / 80% / 3% / 3% — the paper's two sub-optimal \
         classes came from production cardinality-estimation errors, which \
         this deterministic reproduction does not exhibit)\n"
    );

    println!("--- Figure 16: partitions scanned per fact table (whole workload) ---");
    let rows: Vec<Vec<String>> = per_table
        .iter()
        .map(|(name, (planner, orca))| {
            let saved = if *planner > 0 {
                100.0 * (1.0 - *orca as f64 / *planner as f64)
            } else {
                0.0
            };
            vec![
                name.clone(),
                planner.to_string(),
                orca.to_string(),
                format!("{saved:.0}%"),
            ]
        })
        .collect();
    print_table(
        &["table", "Planner", "Orca", "eliminated by Orca vs Planner"],
        &rows,
    );
    println!("(paper Figure 16: Orca scans fewer parts everywhere, up to 80% fewer)");

    write_result(
        "table3_fig16",
        &serde_json::json!({
            "fact_rows": fact_rows,
            "classes": classes.iter().map(|(k, v)| (k.to_string(), v)).collect::<BTreeMap<_, _>>(),
            "per_table": per_table,
            "per_query": per_query,
        }),
    );
}
