//! Paper Figure 17: relative execution-time improvement per query when
//! partition selection is enabled vs disabled (same optimizer, same
//! plans apart from the selector predicates).
//!
//! The shape to reproduce: improvements across the board for queries with
//! elimination opportunities, >50% for many, ~0% for full-scan queries.
//! Each pair is measured under both execution modes (sequential
//! interpreter and per-segment parallel slices) — elimination gains are
//! mode-independent.

use mpp_bench::{print_table, scaled, time_median, write_result};
use mppart::core::OptimizerConfig;
use mppart::executor::{execute_with_params_mode, ExecMode};
use mppart::workloads::{setup_tpcds, tpcds_workload, TpcdsConfig};
use mppart::MppDb;

fn main() {
    let fact_rows = scaled(60_000);
    println!(
        "== Figure 17: runtime improvement from partition selection ({fact_rows} rows/fact) ==\n"
    );

    let mk = |enable: bool| {
        let db = MppDb::with_config(OptimizerConfig {
            num_segments: 4,
            enable_partition_selection: enable,
            ..OptimizerConfig::default()
        });
        setup_tpcds(
            db.storage(),
            &TpcdsConfig {
                fact_rows,
                parts_per_fact: 24,
                seed: 2014,
                ..TpcdsConfig::default()
            },
        )
        .unwrap();
        db
    };
    let on = mk(true);
    let off = mk(false);

    struct Entry {
        name: &'static str,
        off_us: u128,
        improvement_pct: f64,
        improvement_pct_parallel: f64,
    }
    let mut entries = Vec::new();
    for q in tpcds_workload() {
        let on_plan = on.plan(q.sql).unwrap();
        let off_plan = off.plan(q.sql).unwrap();
        let timed = |mode: ExecMode| {
            let t_on = time_median(3, || {
                execute_with_params_mode(on.storage(), &on_plan, &q.params, mode).unwrap()
            });
            let t_off = time_median(3, || {
                execute_with_params_mode(off.storage(), &off_plan, &q.params, mode).unwrap()
            });
            (t_on, t_off)
        };
        let (t_on, t_off) = timed(ExecMode::Sequential);
        let (p_on, p_off) = timed(ExecMode::Parallel);
        let improvement = (1.0 - t_on.as_secs_f64() / t_off.as_secs_f64()) * 100.0;
        let improvement_par = (1.0 - p_on.as_secs_f64() / p_off.as_secs_f64()) * 100.0;
        entries.push(Entry {
            name: q.name,
            off_us: t_off.as_micros(),
            improvement_pct: improvement,
            improvement_pct_parallel: improvement_par,
        });
    }
    // The paper orders queries by baseline runtime (short → long running).
    entries.sort_by_key(|e| e.off_us);

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            let bar_len = (e.improvement_pct.clamp(0.0, 100.0) / 5.0) as usize;
            vec![
                e.name.to_string(),
                format!("{:.0} us", e.off_us),
                format!("{:+.0}%", e.improvement_pct),
                format!("{:+.0}%", e.improvement_pct_parallel),
                "#".repeat(bar_len),
            ]
        })
        .collect();
    print_table(
        &[
            "query (by baseline runtime)",
            "disabled",
            "improvement (seq)",
            "improvement (par)",
            "",
        ],
        &rows,
    );

    let improved_50 = entries.iter().filter(|e| e.improvement_pct >= 50.0).count();
    let improved_70 = entries.iter().filter(|e| e.improvement_pct >= 70.0).count();
    println!(
        "\n{} of {} queries improved ≥50%, {} improved ≥70% \
         (paper: >half ≥50%, >25% of queries ≥70%)",
        improved_50,
        entries.len(),
        improved_70
    );
    write_result(
        "fig17",
        &serde_json::json!({
            "fact_rows": fact_rows,
            "queries": entries
                .iter()
                .map(|e| serde_json::json!({
                    "query": e.name,
                    "baseline_us": e.off_us,
                    "improvement_pct": e.improvement_pct,
                    "improvement_pct_parallel": e.improvement_pct_parallel,
                }))
                .collect::<Vec<_>>(),
        }),
    );
}
