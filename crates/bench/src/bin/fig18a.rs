//! Paper Figure 18(a): plan size for queries with a constant
//! partition-eliminating predicate (`l_shipdate < X` selecting 1%, 25%,
//! 50%, 75%, 100% of partitions).
//!
//! Shape to reproduce: Planner grows linearly with the percentage of
//! partitions scanned; Orca stays constant.

use mpp_bench::{print_table, write_result};
use mppart::plan::plan_size_bytes;
use mppart::workloads::{setup_lineitem, LineitemConfig};
use mppart::MppDb;

fn main() {
    println!("== Figure 18(a): static-elimination plan size ==\n");
    let db = MppDb::new(4);
    setup_lineitem(
        db.storage(),
        &LineitemConfig {
            rows: 1_000,
            parts: Some(361), // weekly grain: enough parts to see the slope
            seed: 42,
            name: "lineitem".into(),
        },
    )
    .unwrap();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for pct in [1usize, 25, 50, 75, 100] {
        // Cut-off date selecting roughly `pct` percent of the 7 years.
        let total_days = 7 * 365;
        let day =
            mppart::common::value::days_from_civil(1992, 1, 1) + ((total_days * pct) / 100) as i32;
        let (y, m, d) = mppart::common::value::civil_from_days(day);
        let sql = format!("SELECT * FROM lineitem WHERE l_shipdate < '{y:04}-{m:02}-{d:02}'");
        let orca = plan_size_bytes(&db.plan(&sql).unwrap());
        let planner = plan_size_bytes(&db.plan_legacy(&sql).unwrap());
        rows.push(vec![
            format!("{pct}%"),
            planner.to_string(),
            orca.to_string(),
        ]);
        json.push(serde_json::json!({
            "pct": pct, "planner_bytes": planner, "orca_bytes": orca,
        }));
    }
    print_table(
        &["% partitions scanned", "Planner (bytes)", "Orca (bytes)"],
        &rows,
    );
    println!("\n(paper Figure 18(a): Planner linear, Orca flat)");
    write_result("fig18a", &serde_json::json!({ "series": json }));
}
