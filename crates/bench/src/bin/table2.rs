//! Paper Table 2: overhead of partitioning on a full table scan.
//!
//! `SELECT * FROM lineitem` (7 years of data) against an unpartitioned
//! baseline and the four partition grains of the paper: 42 two-month,
//! 84 monthly, 169 bi-weekly, 361 weekly partitions. The paper reports
//! 1–3% overhead; the *shape* to reproduce is "flat — partitioning does
//! not make full scans meaningfully slower, regardless of grain".

use mpp_bench::{print_table, scaled, time_median, write_result};
use mppart::executor::execute;
use mppart::workloads::{setup_lineitem, LineitemConfig, TABLE2_GRAINS};
use mppart::MppDb;

fn main() {
    let rows = scaled(200_000);
    println!("== Table 2: partitioning overhead (lineitem, {rows} rows) ==\n");
    let db = MppDb::new(4);

    // Unpartitioned baseline.
    setup_lineitem(
        db.storage(),
        &LineitemConfig {
            rows,
            parts: None,
            seed: 42,
            name: "lineitem_flat".into(),
        },
    )
    .unwrap();
    // The four grains.
    for &parts in &TABLE2_GRAINS {
        setup_lineitem(
            db.storage(),
            &LineitemConfig {
                rows,
                parts: Some(parts),
                seed: 42,
                name: format!("lineitem_{parts}"),
            },
        )
        .unwrap();
    }

    let run = |table: &str| {
        let plan = db
            .plan(&format!("SELECT count(*) FROM {table}"))
            .unwrap();
        time_median(5, || execute(db.storage(), &plan).unwrap())
    };

    let base = run("lineitem_flat");
    println!("unpartitioned baseline: {base:?}\n");

    let descriptions = [
        "each part represents 2 months",
        "partitioned monthly",
        "partitioned bi-weekly",
        "partitioned weekly",
    ];
    let mut out_rows = Vec::new();
    let mut json = Vec::new();
    for (&parts, desc) in TABLE2_GRAINS.iter().zip(descriptions) {
        let t = run(&format!("lineitem_{parts}"));
        let overhead = (t.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
        out_rows.push(vec![
            parts.to_string(),
            desc.to_string(),
            format!("{:.1}%", overhead),
            format!("{:.2?}", t),
        ]);
        json.push(serde_json::json!({
            "parts": parts,
            "overhead_pct": overhead,
            "elapsed_us": t.as_micros(),
        }));
    }
    print_table(&["#parts", "Description", "Overhead", "Elapsed"], &out_rows);
    println!("\npaper reported: 3% / 3% / 1% / 2% — flat in the grain.");
    write_result(
        "table2",
        &serde_json::json!({
            "rows": rows,
            "baseline_us": base.as_micros(),
            "grains": json,
        }),
    );
}
