//! Paper Table 2: overhead of partitioning on a full table scan.
//!
//! `SELECT * FROM lineitem` (7 years of data) against an unpartitioned
//! baseline and the four partition grains of the paper: 42 two-month,
//! 84 monthly, 169 bi-weekly, 361 weekly partitions. The paper reports
//! 1–3% overhead; the *shape* to reproduce is "flat — partitioning does
//! not make full scans meaningfully slower, regardless of grain".
//!
//! Each scan is timed under both execution modes: the sequential
//! interpreter and the per-segment parallel slice driver. Parallel
//! should be no slower than sequential on this full scan at 4 segments.

use mpp_bench::{print_table, scaled, time_median_pair, write_result};
use mppart::executor::{execute_mode, ExecMode};
use mppart::workloads::{setup_lineitem, LineitemConfig, TABLE2_GRAINS};
use mppart::MppDb;

fn main() {
    // `--quick` is the CI / bench-script mode: a tenth of the rows and
    // fewer timing iterations, same shape of output.
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = scaled(if quick { 20_000 } else { 200_000 });
    let iters = if quick { 3 } else { 5 };
    println!("== Table 2: partitioning overhead (lineitem, {rows} rows) ==\n");
    let db = MppDb::new(4);

    // Unpartitioned baseline.
    setup_lineitem(
        db.storage(),
        &LineitemConfig {
            rows,
            parts: None,
            seed: 42,
            name: "lineitem_flat".into(),
        },
    )
    .unwrap();
    // The four grains.
    for &parts in &TABLE2_GRAINS {
        setup_lineitem(
            db.storage(),
            &LineitemConfig {
                rows,
                parts: Some(parts),
                seed: 42,
                name: format!("lineitem_{parts}"),
            },
        )
        .unwrap();
    }

    // The paper's Table 2 workload: a plain full scan, rows gathered to
    // the master. (Not `count(*)` — an aggregate above the Gather would
    // measure the serial master-side fold, not the scan.) Both modes are
    // timed interleaved so slow drift cannot bias the comparison.
    let run = |table: &str| {
        let plan = db.plan(&format!("SELECT * FROM {table}")).unwrap();
        time_median_pair(
            iters,
            || execute_mode(db.storage(), &plan, ExecMode::Sequential).unwrap(),
            || execute_mode(db.storage(), &plan, ExecMode::Parallel).unwrap(),
        )
    };

    let (base_seq, base_par) = run("lineitem_flat");
    println!("unpartitioned baseline: sequential {base_seq:?}, parallel {base_par:?}\n");

    let descriptions = [
        "each part represents 2 months",
        "partitioned monthly",
        "partitioned bi-weekly",
        "partitioned weekly",
    ];
    let mut out_rows = Vec::new();
    let mut json = Vec::new();
    for (&parts, desc) in TABLE2_GRAINS.iter().zip(descriptions) {
        let table = format!("lineitem_{parts}");
        let (t_seq, t_par) = run(&table);
        let overhead = (t_seq.as_secs_f64() / base_seq.as_secs_f64() - 1.0) * 100.0;
        let overhead_par = (t_par.as_secs_f64() / base_par.as_secs_f64() - 1.0) * 100.0;
        out_rows.push(vec![
            parts.to_string(),
            desc.to_string(),
            format!("{:.1}%", overhead),
            format!("{:.2?}", t_seq),
            format!("{:.1}%", overhead_par),
            format!("{:.2?}", t_par),
        ]);
        json.push(serde_json::json!({
            "parts": parts,
            "overhead_pct": overhead,
            "elapsed_us": t_seq.as_micros(),
            "overhead_pct_parallel": overhead_par,
            "elapsed_us_parallel": t_par.as_micros(),
        }));
    }
    print_table(
        &[
            "#parts",
            "Description",
            "Overhead (seq)",
            "Elapsed (seq)",
            "Overhead (par)",
            "Elapsed (par)",
        ],
        &out_rows,
    );
    println!("\npaper reported: 3% / 3% / 1% / 2% — flat in the grain.");
    if base_par <= base_seq {
        println!(
            "parallel full scan is {:.2}x the sequential one at 4 segments.",
            base_par.as_secs_f64() / base_seq.as_secs_f64()
        );
    } else {
        println!(
            "WARNING: parallel full scan slower than sequential ({base_par:?} vs {base_seq:?})."
        );
    }
    write_result(
        "table2",
        &serde_json::json!({
            "rows": rows,
            "baseline_us": base_seq.as_micros(),
            "baseline_us_parallel": base_par.as_micros(),
            "grains": json,
        }),
    );
}
