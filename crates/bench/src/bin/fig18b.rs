//! Paper Figure 18(b): plan size for the dynamic-elimination join
//! `SELECT * FROM R, S WHERE R.b = S.b AND S.a < 100` as the number of
//! partitions of R grows (50 … 300).
//!
//! Shape to reproduce: the Planner lists (and gates) every partition →
//! linear growth; Orca's DynamicScan plan is independent of the count.

use mpp_bench::{print_table, write_result};
use mppart::plan::plan_size_bytes;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;

fn main() {
    println!("== Figure 18(b): dynamic-elimination plan size ==\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for parts in [50usize, 100, 150, 200, 250, 300] {
        let db = MppDb::new(4);
        setup_rs(
            db.storage(),
            &SynthConfig {
                r_rows: 100,
                s_rows: 50,
                r_parts: Some(parts),
                s_parts: None,
                b_domain: 3_000,
                a_domain: 1_000,
                seed: 7,
            },
        )
        .unwrap();
        let sql = "SELECT * FROM s, r WHERE r.b = s.b AND s.a < 100";
        let orca = plan_size_bytes(&db.plan(sql).unwrap());
        let planner = plan_size_bytes(&db.plan_legacy(sql).unwrap());
        rows.push(vec![
            parts.to_string(),
            planner.to_string(),
            orca.to_string(),
        ]);
        json.push(serde_json::json!({
            "parts": parts, "planner_bytes": planner, "orca_bytes": orca,
        }));
    }
    print_table(
        &["#partitions of R", "Planner (bytes)", "Orca (bytes)"],
        &rows,
    );
    println!("\n(paper Figure 18(b): Planner linear in total partitions, Orca flat)");
    write_result("fig18b", &serde_json::json!({ "series": json }));
}
