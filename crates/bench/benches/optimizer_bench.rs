//! Criterion micro-benchmark behind paper Figure 18's motivation:
//! optimization time itself. The legacy planner's per-partition expansion
//! makes *planning* scale with the partition count; Orca's compact plans
//! keep it flat. Also measures the Memo path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mppart::core::OptimizerConfig;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning_time");
    group.sample_size(20);
    for parts in [50usize, 200] {
        let db = MppDb::new(4);
        let memo_db = MppDb::with_config(OptimizerConfig {
            num_segments: 4,
            use_memo: true,
            ..OptimizerConfig::default()
        });
        for d in [&db, &memo_db] {
            setup_rs(
                d.storage(),
                &SynthConfig {
                    r_rows: 100,
                    s_rows: 50,
                    r_parts: Some(parts),
                    s_parts: None,
                    b_domain: 3_000,
                    a_domain: 1_000,
                    seed: 7,
                },
            )
            .unwrap();
        }
        let sql = "SELECT * FROM s, r WHERE r.b = s.b AND s.a < 100";
        group.bench_function(BenchmarkId::new("orca_pipeline", parts), |b| {
            b.iter(|| db.plan(sql).unwrap())
        });
        group.bench_function(BenchmarkId::new("orca_memo", parts), |b| {
            b.iter(|| memo_db.plan(sql).unwrap())
        });
        group.bench_function(BenchmarkId::new("legacy_planner", parts), |b| {
            b.iter(|| db.plan_legacy(sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
