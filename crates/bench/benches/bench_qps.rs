//! Statement throughput (QPS) with and without plan reuse, at 1 / 4 / 16
//! concurrent sessions over one shared database.
//!
//! Three execution styles of the same parameterized workload:
//!
//!   unprepared   `MppDb::sql_with_params` — parse, bind and optimize
//!                on every call (the pre-session baseline);
//!   cached       `Session::sql_with_params` — ad-hoc text through the
//!                shared plan cache, planned once process-wide;
//!   prepared     `PreparedStatement::execute` — the explicit handle,
//!                which also reuses compiled expression templates.
//!
//! Besides the criterion group (single-session statement latency), the
//! bench drives each style at 1, 4 and 16 sessions, appends a record to
//! `results/BENCH_qps.json`, and (outside `--test` smoke mode) asserts
//! the acceptance criterion: plan reuse beats re-planning at every
//! session count.

use criterion::{black_box, Criterion};
use mpp_bench::write_result;
use mpp_session::SessionCtx;
use mppart::common::Datum;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;
use std::sync::Arc;
use std::time::Instant;

/// The measured workload: partition-pruning point and range lookups,
/// parameter-driven so every call re-resolves partition OIDs.
const STATEMENTS: &[(&str, i32)] = &[
    ("SELECT * FROM r WHERE b = $1", 17),
    ("SELECT count(*) FROM r WHERE b < $1", 60),
    ("SELECT * FROM r WHERE b BETWEEN $1 AND 120", 80),
];

fn mk_ctx() -> Arc<SessionCtx> {
    let db = MppDb::new(2);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 2_000,
            s_rows: 0,
            r_parts: Some(50),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed: 2014,
        },
    )
    .unwrap();
    SessionCtx::with_db(db, 64)
}

/// Run `iters` passes of the workload on each of `sessions` threads in
/// one of the three styles; returns statements per second.
fn qps(ctx: &Arc<SessionCtx>, sessions: usize, iters: usize, style: &str) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            let session = ctx.session();
            scope.spawn(move || {
                let prepared: Vec<_> = if style == "prepared" {
                    STATEMENTS
                        .iter()
                        .map(|(q, _)| session.prepare(q).unwrap())
                        .collect()
                } else {
                    Vec::new()
                };
                for i in 0..iters {
                    for (j, (q, v)) in STATEMENTS.iter().enumerate() {
                        // Vary the binding so runs don't degenerate to
                        // one partition's working set.
                        let params = [Datum::Int32((v + i as i32 * 7) % 200)];
                        let out = match style {
                            "unprepared" => session.ctx().db().sql_with_params(q, &params).unwrap(),
                            "cached" => session.sql_with_params(q, &params).unwrap(),
                            "prepared" => prepared[j].execute(&params).unwrap(),
                            _ => unreachable!(),
                        };
                        black_box(out.rows.len());
                    }
                }
            });
        }
    });
    (sessions * iters * STATEMENTS.len()) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 3 } else { 200 };

    // Criterion group: per-statement latency of each style, one session.
    let ctx = mk_ctx();
    let session = ctx.session();
    let q = STATEMENTS[0].0;
    let prepared = session.prepare(q).unwrap();
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("qps_statement");
    group.sample_size(if smoke { 1 } else { 10 });
    group.bench_function("unprepared", |b| {
        b.iter(|| {
            black_box(
                ctx.db()
                    .sql_with_params(q, &[Datum::Int32(17)])
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
    group.bench_function("cached", |b| {
        b.iter(|| {
            black_box(
                session
                    .sql_with_params(q, &[Datum::Int32(17)])
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
    group.bench_function("prepared", |b| {
        b.iter(|| black_box(prepared.execute(&[Datum::Int32(17)]).unwrap().rows.len()))
    });
    group.finish();

    println!(
        "\n== bench_qps: {} statements/pass, {iters} passes ==\n",
        STATEMENTS.len()
    );
    let mut records = Vec::new();
    for sessions in [1usize, 4, 16] {
        // Fresh context per style so one style's cache warmup never
        // subsidizes another.
        let unprepared = qps(&mk_ctx(), sessions, iters, "unprepared");
        let cached = qps(&mk_ctx(), sessions, iters, "cached");
        let prepared = qps(&mk_ctx(), sessions, iters, "prepared");
        println!(
            "{sessions:>2} session(s): unprepared {unprepared:>9.0} qps | cached {cached:>9.0} qps \
             ({:.2}x) | prepared {prepared:>9.0} qps ({:.2}x)",
            cached / unprepared,
            prepared / unprepared,
        );
        if !smoke {
            assert!(
                cached > unprepared,
                "{sessions} sessions: cached plans must beat re-planning \
                 ({cached:.0} vs {unprepared:.0} qps)"
            );
            assert!(
                prepared > unprepared,
                "{sessions} sessions: prepared statements must beat re-planning \
                 ({prepared:.0} vs {unprepared:.0} qps)"
            );
        }
        records.push(serde_json::json!({
            "sessions": sessions,
            "unprepared_qps": unprepared,
            "cached_qps": cached,
            "prepared_qps": prepared,
            "cached_speedup": cached / unprepared,
            "prepared_speedup": prepared / unprepared,
        }));
    }

    if !smoke {
        write_result(
            "BENCH_qps",
            &serde_json::json!({
                "statements": STATEMENTS.iter().map(|(q, _)| *q).collect::<Vec<_>>(),
                "passes": iters,
                "by_sessions": records,
            }),
        );
    }
}
