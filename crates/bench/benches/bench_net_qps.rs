//! Network service throughput: QPS and client-observed p50/p99 latency
//! of point-lookup statements over the wire protocol, at 1 / 16 / 128 /
//! 512 concurrent connections against one server process (in-process
//! listener on a loopback socket — real frames, real TCP, real
//! per-connection sessions).
//!
//! Appends a record to `results/BENCH_net_qps.json` with, per
//! connection count: QPS, client p50/p99 microseconds, and the
//! server-side histogram quantiles from the `Stats` frame. Smoke mode
//! (`--test`) shrinks the matrix and skips the JSON.

use mpp_bench::write_result;
use mpp_server::{Client, Server, ServerConfig};
use mpp_session::SessionCtx;
use mppart::common::Datum;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;
use std::sync::Arc;
use std::time::Instant;

const STATEMENTS: &[(&str, i32)] = &[
    ("SELECT * FROM r WHERE b = $1", 17),
    ("SELECT count(*) FROM r WHERE b < $1", 60),
];

fn mk_ctx() -> Arc<SessionCtx> {
    let db = MppDb::new(2);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 2_000,
            s_rows: 0,
            r_parts: Some(50),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed: 2014,
        },
    )
    .unwrap();
    SessionCtx::with_db(db, 256)
}

fn quantile(sorted_micros: &[u64], q: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_micros.len() as f64).ceil() as usize).clamp(1, sorted_micros.len());
    sorted_micros[rank - 1]
}

/// Drive `conns` client connections, each running `iters` passes of the
/// workload; returns (qps, sorted per-statement client latencies in µs).
fn run_load(addr: std::net::SocketAddr, conns: usize, iters: usize) -> (f64, Vec<u64>) {
    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lats = Vec::with_capacity(iters * STATEMENTS.len());
                    for i in 0..iters {
                        for (sql, v) in STATEMENTS {
                            let params = [Datum::Int32((v + (i + c) as i32 * 7) % 200)];
                            let t0 = Instant::now();
                            let reply = client.query(sql, &params).expect("query");
                            lats.push(t0.elapsed().as_micros() as u64);
                            std::hint::black_box(reply.rows.len());
                        }
                    }
                    let _ = client.goodbye();
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (
        (conns * iters * STATEMENTS.len()) as f64 / elapsed,
        latencies,
    )
}

fn main() {
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");

    let server = Server::start(
        mk_ctx(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 600,
            max_inflight_queries: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let matrix: &[usize] = if smoke { &[1, 4] } else { &[1, 16, 128, 512] };
    println!(
        "\n== bench_net_qps: {} statements/pass over {addr} ==\n",
        STATEMENTS.len()
    );

    let mut records = Vec::new();
    for &conns in matrix {
        // Keep total statement count roughly flat across the matrix so
        // each point runs for a comparable wall-clock span.
        let iters = if smoke { 2 } else { (4_000 / conns).max(8) };
        let (qps, lats) = run_load(addr, conns, iters);
        let p50 = quantile(&lats, 0.50);
        let p99 = quantile(&lats, 0.99);
        println!(
            "{conns:>3} connection(s): {qps:>9.0} qps | client p50 {p50:>6}us p99 {p99:>7}us \
             ({} statements)",
            lats.len()
        );
        records.push(serde_json::json!({
            "connections": conns,
            "qps": qps,
            "client_p50_micros": p50,
            "client_p99_micros": p99,
            "statements": lats.len(),
        }));
    }

    // Server-side view over the whole run, straight from a Stats frame.
    let mut probe = Client::connect(addr).expect("stats connect");
    let m = probe.server_stats().expect("stats");
    let _ = probe.goodbye();
    println!(
        "\nserver: {} queries ({} err), p50 {}us p99 {}us, {} rows in {} blocks",
        m.queries_started,
        m.queries_err,
        m.latency_quantile_micros(0.50),
        m.latency_quantile_micros(0.99),
        m.rows_streamed,
        m.blocks_streamed,
    );
    assert_eq!(m.queries_err, 0, "the bench workload must not fail queries");

    if !smoke {
        write_result(
            "BENCH_net_qps",
            &serde_json::json!({
                "statements": STATEMENTS.iter().map(|(q, _)| *q).collect::<Vec<_>>(),
                "by_connections": records,
                "server": serde_json::json!({
                    "queries": m.queries_started,
                    "p50_micros": m.latency_quantile_micros(0.50),
                    "p99_micros": m.latency_quantile_micros(0.99),
                    "rows_streamed": m.rows_streamed,
                    "blocks_streamed": m.blocks_streamed,
                    "cache_hits": m.cache_hits,
                    "cache_misses": m.cache_misses,
                }),
            }),
        );
    }
    server.stop();
}
