//! Criterion micro-benchmark behind paper Table 2: full-scan throughput
//! at each partition grain vs an unpartitioned baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mppart::executor::execute;
use mppart::workloads::{setup_lineitem, LineitemConfig, TABLE2_GRAINS};
use mppart::MppDb;

fn bench_scan_overhead(c: &mut Criterion) {
    let rows = 30_000;
    let db = MppDb::new(4);
    setup_lineitem(
        db.storage(),
        &LineitemConfig {
            rows,
            parts: None,
            seed: 42,
            name: "lineitem_flat".into(),
        },
    )
    .unwrap();
    for &parts in &TABLE2_GRAINS {
        setup_lineitem(
            db.storage(),
            &LineitemConfig {
                rows,
                parts: Some(parts),
                seed: 42,
                name: format!("lineitem_{parts}"),
            },
        )
        .unwrap();
    }

    let mut group = c.benchmark_group("table2_full_scan");
    group.sample_size(20);
    let plan_flat = db.plan("SELECT count(*) FROM lineitem_flat").unwrap();
    group.bench_function(BenchmarkId::new("parts", 0), |b| {
        b.iter(|| execute(db.storage(), &plan_flat).unwrap())
    });
    for &parts in &TABLE2_GRAINS {
        let plan = db
            .plan(&format!("SELECT count(*) FROM lineitem_{parts}"))
            .unwrap();
        group.bench_function(BenchmarkId::new("parts", parts), |b| {
            b.iter(|| execute(db.storage(), &plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_overhead);
criterion_main!(benches);
