//! Criterion micro-benchmark behind paper Figure 17: query execution
//! with partition selection enabled vs disabled, for static and dynamic
//! elimination patterns.

use criterion::{criterion_group, criterion_main, Criterion};
use mppart::core::OptimizerConfig;
use mppart::executor::execute;
use mppart::workloads::{setup_tpcds, TpcdsConfig};
use mppart::MppDb;

fn mk_db(enable: bool) -> MppDb {
    let db = MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        enable_partition_selection: enable,
        ..OptimizerConfig::default()
    });
    setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 20_000,
            parts_per_fact: 24,
            seed: 2014,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    db
}

fn bench_selection(c: &mut Criterion) {
    let on = mk_db(true);
    let off = mk_db(false);

    let static_sql = "SELECT count(*) FROM store_sales WHERE ss_date_id BETWEEN 100 AND 160";
    let dynamic_sql = "SELECT count(*) FROM store_sales WHERE ss_date_id IN \
                       (SELECT d_id FROM date_dim WHERE d_year = 2013 AND d_month = 12)";

    let mut group = c.benchmark_group("fig17_selection");
    group.sample_size(20);
    for (label, sql) in [("static", static_sql), ("dynamic", dynamic_sql)] {
        let plan_on = on.plan(sql).unwrap();
        let plan_off = off.plan(sql).unwrap();
        group.bench_function(format!("{label}/enabled"), |b| {
            b.iter(|| execute(on.storage(), &plan_on).unwrap())
        });
        group.bench_function(format!("{label}/disabled"), |b| {
            b.iter(|| execute(off.storage(), &plan_off).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
