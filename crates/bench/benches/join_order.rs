//! Cost-based join ordering vs the syntactic left-deep baseline.
//!
//! A 6-table star schema (fact + 5 dimensions) with the *selective*
//! dimensions written last, so the syntactic order drags the full fact
//! cardinality through four joins before anything cuts it down. The
//! DPsize enumerator, fed by ANALYZE histograms, reorders to join the
//! most selective dimensions first.
//!
//! Measures and records in `results/BENCH_join_order.json`:
//!
//!   * wall-clock of the star query, cost-based vs left-deep
//!     (`join_order_search: false`), interleaved medians — the
//!     acceptance criterion asserts cost-based ≥ 2×;
//!   * planning throughput (plans/sec) on chain queries of 2–10
//!     relations — the acceptance criterion asserts < 10 ms at 10
//!     relations (the DPsize ceiling; greedy takes over above).
//!
//! Also runs the adaptive-planning benchmark ([`bench_adaptive`]):
//! per-partition join specialization vs the uniform plan on a
//! skewed-DEFAULT-partition workload, recorded in
//! `results/BENCH_adaptive.json` with an acceptance criterion of
//! adaptive ≥ 1.5× (set `BENCH_ADAPTIVE_ONLY=1` to run just this
//! section, `BENCH_EXPLAIN=1` to print both plans).
//!
//! In `--test` smoke mode the row counts shrink and only the
//! result-equality checks run: both orderings (and both adaptive
//! settings) must return identical row multisets.

use mpp_bench::{scaled, time_median, time_median_pair, write_result};
use mppart::core::OptimizerConfig;
use mppart::workloads::{setup_skewed_default, SynthConfig};
use mppart::MppDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 2014;
const DIMS: usize = 5;

fn mk_db(join_order_search: bool) -> MppDb {
    MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        join_order_search,
        ..OptimizerConfig::default()
    })
}

/// Star schema: `f(id, k1..k5, v)` plus `d1..d5(id, w)` with `w = id`,
/// so `w < t` keeps exactly `t / dim_rows` of a dimension. Loaded
/// identically into every db, then ANALYZE'd so the enumerator sees
/// real histograms.
fn setup_star(dbs: &[&MppDb], fact_rows: usize, dim_rows: usize) {
    let mut g = StdRng::seed_from_u64(SEED);
    let mut stmts: Vec<String> = Vec::new();
    for d in 1..=DIMS {
        stmts.push(format!(
            "CREATE TABLE d{d} (id int, w int) DISTRIBUTED BY (id)"
        ));
        for chunk in (0..dim_rows).collect::<Vec<_>>().chunks(500) {
            let tuples: Vec<String> = chunk.iter().map(|i| format!("({i}, {i})")).collect();
            stmts.push(format!("INSERT INTO d{d} VALUES {}", tuples.join(", ")));
        }
    }
    stmts.push(
        "CREATE TABLE f (id int, k1 int, k2 int, k3 int, k4 int, k5 int, v int) \
         DISTRIBUTED BY (id)"
            .into(),
    );
    for chunk in (0..fact_rows).collect::<Vec<_>>().chunks(500) {
        let tuples: Vec<String> = chunk
            .iter()
            .map(|i| {
                let ks: Vec<String> = (0..DIMS)
                    .map(|_| g.gen_range(0..dim_rows as i64).to_string())
                    .collect();
                format!("({i}, {}, {})", ks.join(", "), g.gen_range(0..100))
            })
            .collect();
        stmts.push(format!("INSERT INTO f VALUES {}", tuples.join(", ")));
    }
    for d in 1..=DIMS {
        stmts.push(format!("ANALYZE d{d}"));
    }
    stmts.push("ANALYZE f".into());
    for db in dbs {
        for s in &stmts {
            db.sql(s).unwrap();
        }
    }
}

/// The star query, selective dimensions last in syntactic order: d4
/// keeps 10% and d5 keeps 1%, so the left-deep baseline carries the
/// full fact through three joins while the enumerator starts with d5.
fn star_query(dim_rows: usize) -> String {
    let joins: String = (1..=DIMS)
        .map(|d| format!(" JOIN d{d} ON f.k{d} = d{d}.id"))
        .collect();
    format!(
        "SELECT count(*), sum(f.v) FROM f{joins} WHERE d4.w < {} AND d5.w < {}",
        dim_rows / 10,
        dim_rows / 100
    )
}

/// Chain query over `c0..c{n-1}`, the planning-throughput axis.
fn chain_query(n: usize) -> String {
    let from: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    let conds: Vec<String> = (0..n - 1)
        .map(|i| format!("c{i}.b = c{}.a", i + 1))
        .collect();
    format!(
        "SELECT count(*) FROM {} WHERE {}",
        from.join(", "),
        conds.join(" AND ")
    )
}

/// Adaptive per-partition specialization vs the uniform single-strategy
/// plan, on the skewed-DEFAULT workload: `big` is range-partitioned on
/// `b` with explicit parts covering only `[0, 100_000)` and a DEFAULT
/// partition holding ~98% of the rows; `probe` is unpartitioned with
/// every key inside the covered range (anti-correlated with the
/// DEFAULT overflow). The uniform optimizer prices one strategy off the
/// aggregate row counts and redistributes both sides — dragging the
/// dominant DEFAULT partition through a Motion for a join that, at
/// runtime, never needs it. The adaptive plan splits the scan into a
/// heavy DEFAULT branch (whose filtered outer side shrinks to nothing,
/// so run-time partition selection skips the 98% entirely) and a light
/// branch that moves only the small covered parts.
fn bench_adaptive(smoke: bool) {
    // probe must stay above big/3: below that, broadcasting the probe
    // side gets cheaper than redistributing both and the uniform plan
    // stops being interestingly bad.
    let (big_rows, probe_rows) = if smoke {
        (4_000, 1_500)
    } else {
        (scaled(400_000), scaled(140_000))
    };
    let hot_pct = 98;
    let cover = 100_000;

    let mk = |adaptive: bool| {
        let db = MppDb::with_config(OptimizerConfig {
            num_segments: 4,
            adaptive_plans: adaptive,
            ..OptimizerConfig::default()
        });
        let cfg = SynthConfig {
            r_rows: big_rows,
            r_parts: Some(10),
            b_domain: 1_000_000,
            a_domain: 1_000,
            seed: SEED,
            ..SynthConfig::default()
        };
        setup_skewed_default(db.storage(), "big", &cfg, hot_pct, cover).unwrap();
        db.sql("CREATE TABLE probe (a int, b int) DISTRIBUTED BY (a)")
            .unwrap();
        let mut g = StdRng::seed_from_u64(SEED ^ 0xada);
        for chunk in (0..probe_rows).collect::<Vec<_>>().chunks(500) {
            let tuples: Vec<String> = chunk
                .iter()
                .map(|_| format!("({}, {})", g.gen_range(0..1_000), g.gen_range(0..cover)))
                .collect();
            db.sql(&format!("INSERT INTO probe VALUES {}", tuples.join(", ")))
                .unwrap();
        }
        db.sql("ANALYZE probe").unwrap();
        db
    };
    let adaptive = mk(true);
    let uniform = mk(false);
    let sql = "SELECT count(*), sum(big.a) FROM probe JOIN big ON probe.b = big.b";

    // Result equality first: specialization must never change rows. The
    // agg query plus a row-returning probe, compared as multisets.
    for q in [
        sql,
        "SELECT probe.a, big.a FROM probe JOIN big ON probe.b = big.b WHERE probe.a < 20",
    ] {
        let mut a: Vec<String> = adaptive
            .sql(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        let mut b: Vec<String> = uniform
            .sql(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "adaptive and uniform plans disagree on: {q}");
    }
    println!("result equality: adaptive ≡ uniform");

    let plan_adaptive = adaptive.explain_sql(sql).unwrap();
    let plan_uniform = uniform.explain_sql(sql).unwrap();
    assert_ne!(plan_adaptive, plan_uniform, "plans should differ");
    if std::env::var_os("BENCH_EXPLAIN").is_some() {
        println!("-- adaptive --\n{plan_adaptive}\n-- uniform --\n{plan_uniform}");
    }

    let iters = if smoke { 1 } else { 9 };
    let (t_adaptive, t_uniform) = time_median_pair(
        iters,
        || adaptive.sql(sql).unwrap().rows.len(),
        || uniform.sql(sql).unwrap().rows.len(),
    );
    let speedup = t_uniform.as_secs_f64() / t_adaptive.as_secs_f64();
    println!(
        "skewed DEFAULT join ({big_rows} rows, {hot_pct}% in DEFAULT): \
         adaptive {:.1} ms | uniform {:.1} ms ({speedup:.2}x)",
        t_adaptive.as_secs_f64() * 1e3,
        t_uniform.as_secs_f64() * 1e3,
    );

    if !smoke {
        assert!(
            plan_adaptive.contains("Append"),
            "adaptive plan should specialize into Append branches:\n{plan_adaptive}"
        );
        assert!(
            speedup >= 1.5,
            "adaptive plan must beat the uniform plan by >= 1.5x, got {speedup:.2}x"
        );
        write_result(
            "BENCH_adaptive",
            &serde_json::json!({
                "big_rows": big_rows,
                "probe_rows": probe_rows,
                "hot_pct": hot_pct,
                "segments": 4,
                "query": sql,
                "adaptive_ms": t_adaptive.as_secs_f64() * 1e3,
                "uniform_ms": t_uniform.as_secs_f64() * 1e3,
                "speedup": speedup,
            }),
        );
    }
}

fn main() {
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");
    if std::env::var_os("BENCH_ADAPTIVE_ONLY").is_some() {
        bench_adaptive(smoke);
        return;
    }
    let (fact_rows, dim_rows) = if smoke {
        (2_000, 200)
    } else {
        (scaled(60_000), scaled(2_000))
    };

    let cost_based = mk_db(true);
    let left_deep = mk_db(false);
    setup_star(&[&cost_based, &left_deep], fact_rows, dim_rows);
    let sql = star_query(dim_rows);

    // Correctness first: ordering must never change results. The agg
    // query plus a row-returning probe, both compared as multisets.
    for q in [
        sql.as_str(),
        "SELECT f.id, d5.w FROM f JOIN d4 ON f.k4 = d4.id JOIN d5 ON f.k5 = d5.id \
         WHERE d5.w < 20 AND d4.w < 40",
    ] {
        let mut a: Vec<String> = cost_based
            .sql(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        let mut b: Vec<String> = left_deep
            .sql(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "orderings disagree on: {q}");
    }
    println!("result equality: cost-based ≡ left-deep");

    let iters = if smoke { 1 } else { 5 };
    let (t_cost, t_left) = time_median_pair(
        iters,
        || cost_based.sql(&sql).unwrap().rows.len(),
        || left_deep.sql(&sql).unwrap().rows.len(),
    );
    let speedup = t_left.as_secs_f64() / t_cost.as_secs_f64();
    println!(
        "star 6-way ({fact_rows} fact rows): cost-based {:.1} ms | left-deep {:.1} ms ({speedup:.2}x)",
        t_cost.as_secs_f64() * 1e3,
        t_left.as_secs_f64() * 1e3,
    );

    // Planning throughput on 2..=10 chained relations. Tiny tables: the
    // axis is enumerator time, not execution.
    for i in 0..10 {
        cost_based
            .sql(&format!("CREATE TABLE c{i} (a int, b int)"))
            .unwrap();
        let tuples: Vec<String> = (0..50).map(|j| format!("({j}, {})", j % 10)).collect();
        cost_based
            .sql(&format!("INSERT INTO c{i} VALUES {}", tuples.join(", ")))
            .unwrap();
        cost_based.sql(&format!("ANALYZE c{i}")).unwrap();
    }
    let mut planning = Vec::new();
    let mut at_10 = f64::NAN;
    for n in 2..=10usize {
        let q = chain_query(n);
        let med = time_median(if smoke { 1 } else { 9 }, || cost_based.plan(&q).unwrap());
        let secs = med.as_secs_f64();
        if n == 10 {
            at_10 = secs;
        }
        println!(
            "plan {n:>2} relations: {:>9.0} plans/sec ({:.3} ms)",
            1.0 / secs,
            secs * 1e3
        );
        planning.push(serde_json::json!({
            "relations": n,
            "plans_per_sec": 1.0 / secs,
            "median_ms": secs * 1e3,
        }));
    }

    bench_adaptive(smoke);

    if !smoke {
        assert!(
            speedup >= 2.0,
            "cost-based join order must beat left-deep by >= 2x, got {speedup:.2}x"
        );
        assert!(
            at_10 < 0.010,
            "planning a 10-relation chain must stay under 10 ms, got {:.3} ms",
            at_10 * 1e3
        );
        write_result(
            "BENCH_join_order",
            &serde_json::json!({
                "fact_rows": fact_rows,
                "dim_rows": dim_rows,
                "query": sql,
                "cost_based_ms": t_cost.as_secs_f64() * 1e3,
                "left_deep_ms": t_left.as_secs_f64() * 1e3,
                "speedup": speedup,
                "planning": planning,
            }),
        );
    }
}
