//! Cost-based join ordering vs the syntactic left-deep baseline.
//!
//! A 6-table star schema (fact + 5 dimensions) with the *selective*
//! dimensions written last, so the syntactic order drags the full fact
//! cardinality through four joins before anything cuts it down. The
//! DPsize enumerator, fed by ANALYZE histograms, reorders to join the
//! most selective dimensions first.
//!
//! Measures and records in `results/BENCH_join_order.json`:
//!
//!   * wall-clock of the star query, cost-based vs left-deep
//!     (`join_order_search: false`), interleaved medians — the
//!     acceptance criterion asserts cost-based ≥ 2×;
//!   * planning throughput (plans/sec) on chain queries of 2–10
//!     relations — the acceptance criterion asserts < 10 ms at 10
//!     relations (the DPsize ceiling; greedy takes over above).
//!
//! In `--test` smoke mode the row counts shrink and only the
//! result-equality check runs: both orderings must return identical
//! row multisets.

use mpp_bench::{scaled, time_median, time_median_pair, write_result};
use mppart::core::OptimizerConfig;
use mppart::MppDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 2014;
const DIMS: usize = 5;

fn mk_db(join_order_search: bool) -> MppDb {
    MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        join_order_search,
        ..OptimizerConfig::default()
    })
}

/// Star schema: `f(id, k1..k5, v)` plus `d1..d5(id, w)` with `w = id`,
/// so `w < t` keeps exactly `t / dim_rows` of a dimension. Loaded
/// identically into every db, then ANALYZE'd so the enumerator sees
/// real histograms.
fn setup_star(dbs: &[&MppDb], fact_rows: usize, dim_rows: usize) {
    let mut g = StdRng::seed_from_u64(SEED);
    let mut stmts: Vec<String> = Vec::new();
    for d in 1..=DIMS {
        stmts.push(format!(
            "CREATE TABLE d{d} (id int, w int) DISTRIBUTED BY (id)"
        ));
        for chunk in (0..dim_rows).collect::<Vec<_>>().chunks(500) {
            let tuples: Vec<String> = chunk.iter().map(|i| format!("({i}, {i})")).collect();
            stmts.push(format!("INSERT INTO d{d} VALUES {}", tuples.join(", ")));
        }
    }
    stmts.push(
        "CREATE TABLE f (id int, k1 int, k2 int, k3 int, k4 int, k5 int, v int) \
         DISTRIBUTED BY (id)"
            .into(),
    );
    for chunk in (0..fact_rows).collect::<Vec<_>>().chunks(500) {
        let tuples: Vec<String> = chunk
            .iter()
            .map(|i| {
                let ks: Vec<String> = (0..DIMS)
                    .map(|_| g.gen_range(0..dim_rows as i64).to_string())
                    .collect();
                format!("({i}, {}, {})", ks.join(", "), g.gen_range(0..100))
            })
            .collect();
        stmts.push(format!("INSERT INTO f VALUES {}", tuples.join(", ")));
    }
    for d in 1..=DIMS {
        stmts.push(format!("ANALYZE d{d}"));
    }
    stmts.push("ANALYZE f".into());
    for db in dbs {
        for s in &stmts {
            db.sql(s).unwrap();
        }
    }
}

/// The star query, selective dimensions last in syntactic order: d4
/// keeps 10% and d5 keeps 1%, so the left-deep baseline carries the
/// full fact through three joins while the enumerator starts with d5.
fn star_query(dim_rows: usize) -> String {
    let joins: String = (1..=DIMS)
        .map(|d| format!(" JOIN d{d} ON f.k{d} = d{d}.id"))
        .collect();
    format!(
        "SELECT count(*), sum(f.v) FROM f{joins} WHERE d4.w < {} AND d5.w < {}",
        dim_rows / 10,
        dim_rows / 100
    )
}

/// Chain query over `c0..c{n-1}`, the planning-throughput axis.
fn chain_query(n: usize) -> String {
    let from: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    let conds: Vec<String> = (0..n - 1)
        .map(|i| format!("c{i}.b = c{}.a", i + 1))
        .collect();
    format!(
        "SELECT count(*) FROM {} WHERE {}",
        from.join(", "),
        conds.join(" AND ")
    )
}

fn main() {
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");
    let (fact_rows, dim_rows) = if smoke {
        (2_000, 200)
    } else {
        (scaled(60_000), scaled(2_000))
    };

    let cost_based = mk_db(true);
    let left_deep = mk_db(false);
    setup_star(&[&cost_based, &left_deep], fact_rows, dim_rows);
    let sql = star_query(dim_rows);

    // Correctness first: ordering must never change results. The agg
    // query plus a row-returning probe, both compared as multisets.
    for q in [
        sql.as_str(),
        "SELECT f.id, d5.w FROM f JOIN d4 ON f.k4 = d4.id JOIN d5 ON f.k5 = d5.id \
         WHERE d5.w < 20 AND d4.w < 40",
    ] {
        let mut a: Vec<String> = cost_based
            .sql(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        let mut b: Vec<String> = left_deep
            .sql(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "orderings disagree on: {q}");
    }
    println!("result equality: cost-based ≡ left-deep");

    let iters = if smoke { 1 } else { 5 };
    let (t_cost, t_left) = time_median_pair(
        iters,
        || cost_based.sql(&sql).unwrap().rows.len(),
        || left_deep.sql(&sql).unwrap().rows.len(),
    );
    let speedup = t_left.as_secs_f64() / t_cost.as_secs_f64();
    println!(
        "star 6-way ({fact_rows} fact rows): cost-based {:.1} ms | left-deep {:.1} ms ({speedup:.2}x)",
        t_cost.as_secs_f64() * 1e3,
        t_left.as_secs_f64() * 1e3,
    );

    // Planning throughput on 2..=10 chained relations. Tiny tables: the
    // axis is enumerator time, not execution.
    for i in 0..10 {
        cost_based
            .sql(&format!("CREATE TABLE c{i} (a int, b int)"))
            .unwrap();
        let tuples: Vec<String> = (0..50).map(|j| format!("({j}, {})", j % 10)).collect();
        cost_based
            .sql(&format!("INSERT INTO c{i} VALUES {}", tuples.join(", ")))
            .unwrap();
        cost_based.sql(&format!("ANALYZE c{i}")).unwrap();
    }
    let mut planning = Vec::new();
    let mut at_10 = f64::NAN;
    for n in 2..=10usize {
        let q = chain_query(n);
        let med = time_median(if smoke { 1 } else { 9 }, || cost_based.plan(&q).unwrap());
        let secs = med.as_secs_f64();
        if n == 10 {
            at_10 = secs;
        }
        println!(
            "plan {n:>2} relations: {:>9.0} plans/sec ({:.3} ms)",
            1.0 / secs,
            secs * 1e3
        );
        planning.push(serde_json::json!({
            "relations": n,
            "plans_per_sec": 1.0 / secs,
            "median_ms": secs * 1e3,
        }));
    }

    if !smoke {
        assert!(
            speedup >= 2.0,
            "cost-based join order must beat left-deep by >= 2x, got {speedup:.2}x"
        );
        assert!(
            at_10 < 0.010,
            "planning a 10-relation chain must stay under 10 ms, got {:.3} ms",
            at_10 * 1e3
        );
        write_result(
            "BENCH_join_order",
            &serde_json::json!({
                "fact_rows": fact_rows,
                "dim_rows": dim_rows,
                "query": sql,
                "cost_based_ms": t_cost.as_secs_f64() * 1e3,
                "left_deep_ms": t_left.as_secs_f64() * 1e3,
                "speedup": speedup,
                "planning": planning,
            }),
        );
    }
}
