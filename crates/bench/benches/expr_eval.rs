//! Per-row expression evaluation: interpreted AST walk vs the
//! compile-once [`CompiledExpr`] form the executor now uses, over the
//! three filter shapes with fast paths (`col < const`, `col BETWEEN
//! const AND const`, `col IN (const, …)`), plus partition routing at 64
//! vs 1024 range partitions to show the binary-search route is
//! sublinear in the partition count.
//!
//! Besides the criterion groups, the bench appends a machine-readable
//! record to `results/BENCH_expr.json` and (outside `--test` smoke
//! mode) asserts the two acceptance thresholds: compiled evaluation at
//! least 2x the interpreter on the col-op-const filter, and 1024-way
//! routing well under the 16x a linear scan of the pieces would cost
//! relative to 64-way.

use criterion::{black_box, Criterion};
use mpp_bench::{time_median_pair, write_result};
use mppart::catalog::builders::range_level_equal_width;
use mppart::common::{Datum, Row};
use mppart::expr::{compile, eval_predicate, CmpOp, ColRef, EvalContext, Expr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One benchmark table: rows of (a, b, c) with `b` uniform in 0..100.
fn mk_rows(n: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(2014);
    (0..n)
        .map(|i| {
            Row::new(vec![
                Datum::Int32(i as i32),
                Datum::Int32(rng.gen_range(0..100)),
                Datum::str(["x", "y", "z"][i % 3]),
            ])
        })
        .collect()
}

fn cols() -> Vec<ColRef> {
    vec![
        ColRef::new(1, "a"),
        ColRef::new(2, "b"),
        ColRef::new(3, "c"),
    ]
}

fn b() -> Expr {
    Expr::col(ColRef::new(2, "b"))
}

fn lit(v: i32) -> Expr {
    Expr::Lit(Datum::Int32(v))
}

/// The three per-row filter shapes the compiler special-cases.
fn shapes() -> Vec<(&'static str, Expr)> {
    vec![
        ("col_op_const", Expr::cmp(CmpOp::Lt, b(), lit(50))),
        ("between", Expr::between(b(), lit(20), lit(60))),
        (
            "in_const_set",
            Expr::InList {
                expr: Box::new(b()),
                list: [3, 17, 29, 41, 53, 67, 71, 83]
                    .into_iter()
                    .map(lit)
                    .collect(),
                negated: false,
            },
        ),
    ]
}

fn interpreted_count(e: &Expr, rows: &[Row], ctx: &EvalContext<'_>) -> usize {
    rows.iter()
        .filter(|r| eval_predicate(e, r, ctx).unwrap())
        .count()
}

fn compiled_count(e: &Expr, rows: &[Row], ctx: &EvalContext<'_>) -> usize {
    let compiled = compile(e, ctx);
    rows.iter()
        .filter(|r| compiled.eval_predicate(r).unwrap())
        .count()
}

fn route_all(level: &mppart::catalog::PartitionLevel, keys: &[Datum]) -> usize {
    keys.iter()
        .map(|k| level.route(k).expect("covered domain"))
        .sum()
}

fn main() {
    // `cargo bench` starts the binary in the package dir; anchor at the
    // workspace root so `results/` is the same one the figure binaries
    // write to.
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");
    let (n_rows, iters) = if smoke { (2_000, 2) } else { (100_000, 15) };
    let rows = mk_rows(n_rows);
    let cols = cols();
    let ctx = EvalContext::from_columns(&cols);

    println!("== expr_eval: interpreted vs compiled over {n_rows} rows ==\n");
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("expr_eval");
    group.sample_size(if smoke { 1 } else { 10 });
    let mut filter_json = Vec::new();
    for (name, e) in shapes() {
        group.bench_function(format!("{name}/interpreted"), |bench| {
            bench.iter(|| black_box(interpreted_count(&e, &rows, &ctx)))
        });
        group.bench_function(format!("{name}/compiled"), |bench| {
            bench.iter(|| black_box(compiled_count(&e, &rows, &ctx)))
        });
        // Interleaved timing for the recorded ratio: slow drift would
        // otherwise bias whichever alternative ran second.
        let (t_interp, t_comp) = time_median_pair(
            iters,
            || interpreted_count(&e, &rows, &ctx),
            || compiled_count(&e, &rows, &ctx),
        );
        let speedup = t_interp.as_secs_f64() / t_comp.as_secs_f64();
        assert_eq!(
            interpreted_count(&e, &rows, &ctx),
            compiled_count(&e, &rows, &ctx),
            "selectivity divergence on {name}"
        );
        println!("{name}: interpreted {t_interp:?}, compiled {t_comp:?} ({speedup:.2}x)");
        if !smoke && name == "col_op_const" {
            assert!(
                speedup >= 2.0,
                "compiled col-op-const must be >= 2x the interpreter, got {speedup:.2}x"
            );
        }
        filter_json.push(serde_json::json!({
            "shape": name,
            "interpreted_us": t_interp.as_micros(),
            "compiled_us": t_comp.as_micros(),
            "speedup": speedup,
        }));
    }
    group.finish();

    // Routing: the same key stream through a 64-way and a 1024-way
    // equal-width range level. A linear route would scale 16x; the
    // binary search should stay near log2(1024)/log2(64) ~ 1.7x.
    let level_64 = range_level_equal_width(0, Datum::Int32(0), Datum::Int32(1 << 20), 64).unwrap();
    let level_1024 =
        range_level_equal_width(0, Datum::Int32(0), Datum::Int32(1 << 20), 1024).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let keys: Vec<Datum> = (0..n_rows)
        .map(|_| Datum::Int32(rng.gen_range(0..1 << 20)))
        .collect();
    let mut group = criterion.benchmark_group("partition_route");
    group.sample_size(if smoke { 1 } else { 10 });
    group.bench_function("parts/64", |bench| {
        bench.iter(|| black_box(route_all(&level_64, &keys)))
    });
    group.bench_function("parts/1024", |bench| {
        bench.iter(|| black_box(route_all(&level_1024, &keys)))
    });
    group.finish();
    let (t_64, t_1024) = time_median_pair(
        iters,
        || route_all(&level_64, &keys),
        || route_all(&level_1024, &keys),
    );
    let ratio = t_1024.as_secs_f64() / t_64.as_secs_f64();
    println!("\nroute {n_rows} keys: 64 parts {t_64:?}, 1024 parts {t_1024:?} ({ratio:.2}x, linear would be 16x)");
    if !smoke {
        assert!(
            ratio < 8.0,
            "1024-way routing must be sublinear vs 64-way (< 8x), got {ratio:.2}x"
        );
        write_result(
            "BENCH_expr",
            &serde_json::json!({
                "rows": n_rows,
                "filters": filter_json,
                "routing": serde_json::json!({
                    "keys": n_rows,
                    "parts_64_us": t_64.as_micros(),
                    "parts_1024_us": t_1024.as_micros(),
                    "ratio_1024_vs_64": ratio,
                }),
            }),
        );
    }
}
