//! Vectorized vs row-at-a-time execution of a scan → filter → aggregate
//! pipeline, over the ISSUE grid of 10k/100k/1M rows × 4/64/1024 range
//! partitions.
//!
//! Two pipeline shapes per cell, both engines interleaved
//! ([`time_median_pair`]) so the recorded number is a fair ratio:
//!
//! * `filter` — `SELECT * FROM r WHERE a < 20` (≈10% selectivity): the
//!   block engine refines selection vectors over the storage blocks and
//!   only materializes survivors at the root;
//! * `agg` — `SELECT b, COUNT(*), SUM(a) FROM r WHERE a < 150 GROUP BY b`:
//!   batch filter + vectorized aggregate input, with a near-empty root.
//!
//! Appends one record per cell to `results/BENCH_batch.json` and, outside
//! `--test` smoke mode, asserts the acceptance threshold: the block
//! engine at least 2x the row engine on the 100k-row filter pipeline.

use criterion::{black_box, Criterion};
use mpp_bench::{scaled, time_median_pair, write_result};
use mppart::core::OptimizerConfig;
use mppart::executor::{ExecEngine, ExecMode};
use mppart::testing::sorted;
use mppart::workloads::{setup_nullable, setup_rs, setup_skewed, SynthConfig};
use mppart::{MppDb, SchedConfig, SchedPolicy};

const SEGMENTS: usize = 3;

fn mk_db(rows: usize, parts: usize) -> MppDb {
    let db = MppDb::with_config(OptimizerConfig {
        num_segments: SEGMENTS,
        ..OptimizerConfig::default()
    });
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: rows,
            s_rows: 1,
            r_parts: Some(parts),
            s_parts: None,
            // Wide enough that even 1024 partitions get a non-empty range.
            b_domain: 4096,
            a_domain: 200,
            seed: 2014,
        },
    )
    .unwrap();
    db
}

/// Run one prepared pipeline on one engine, returning the row count so
/// the work cannot be optimized away.
fn run(db: &MppDb, q: &mppart::PreparedQuery, mode: ExecMode, engine: ExecEngine) -> usize {
    q.prepared_plan()
        .execute_engine(db.storage(), &[], mode, engine)
        .unwrap()
        .rows
        .len()
}

/// A table where one partition holds ~92% of the rows, hash-distributed
/// on the group column `b` so a group-by-`b` aggregate runs co-located:
/// the whole scan → filter → agg pipeline is one fused slice the morsel
/// scheduler can cut up, while the per-segment baseline serializes the
/// hot partition onto one task.
fn mk_skew_db(rows: usize) -> MppDb {
    let db = MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        ..OptimizerConfig::default()
    })
    .with_exec_mode(ExecMode::Parallel)
    .with_exec_engine(ExecEngine::Batch);
    setup_skewed(
        db.storage(),
        "skew",
        &SynthConfig {
            r_rows: rows,
            s_rows: 0,
            r_parts: Some(16),
            s_parts: None,
            b_domain: 4096,
            a_domain: 200,
            seed: 2014,
        },
        92,
        1,
    )
    .unwrap();
    db
}

/// One batch-engine execution under an explicit scheduler config.
fn run_sched(db: &MppDb, q: &mppart::PreparedQuery, sched: &SchedConfig) -> usize {
    q.prepared_plan()
        .execute_engine_sched(
            db.storage(),
            &[],
            ExecMode::Parallel,
            ExecEngine::Batch,
            sched,
        )
        .unwrap()
        .rows
        .len()
}

/// Morsel-driven work stealing vs the per-segment-thread baseline on the
/// skewed table. Returns the measured speedup (None in smoke mode, which
/// only checks result equality).
fn skew_bench(smoke: bool) -> Option<f64> {
    let rows = scaled(if smoke { 20_000 } else { 400_000 });
    let db = mk_skew_db(rows);
    let sql = "SELECT b, COUNT(*), SUM(a) FROM skew WHERE a < 150 GROUP BY b";
    let q = db.prepare(sql).unwrap();
    let morsel = SchedConfig {
        workers: Some(4),
        policy: SchedPolicy::Morsel,
        morsel_rows: 4096,
    };
    let baseline = SchedConfig {
        workers: None,
        policy: SchedPolicy::PerSegment,
        morsel_rows: 4096,
    };

    // Both schedules must agree exactly before any timing means a thing.
    let m = q
        .prepared_plan()
        .execute_engine_sched(
            db.storage(),
            &[],
            ExecMode::Parallel,
            ExecEngine::Batch,
            &morsel,
        )
        .unwrap();
    let b = q
        .prepared_plan()
        .execute_engine_sched(
            db.storage(),
            &[],
            ExecMode::Parallel,
            ExecEngine::Batch,
            &baseline,
        )
        .unwrap();
    assert_eq!(
        sorted(m.rows),
        sorted(b.rows),
        "schedulers disagree on {sql}"
    );

    if smoke {
        println!(
            "{rows:>9} rows  skew (hot part ~92%)  agg: morsel == per-segment rows ok (smoke)"
        );
        return None;
    }

    let (t_base, t_morsel) = time_median_pair(
        9,
        || black_box(run_sched(&db, &q, &baseline)),
        || black_box(run_sched(&db, &q, &morsel)),
    );
    let speedup = t_base.as_secs_f64() / t_morsel.as_secs_f64().max(1e-9);
    println!(
        "{rows:>9} rows  skew (hot part ~92%)  agg Parallel: per-segment {:>9.3?}  \
         morsel {:>9.3?}  speedup {speedup:>5.2}x",
        t_base, t_morsel
    );
    write_result(
        "BENCH_batch",
        &serde_json::json!({
            "bench": "skew_pipeline",
            "rows": rows,
            "parts": 16,
            "hot_pct": 92,
            "query": "agg",
            "mode": "Parallel",
            "segments": 4,
            "per_segment_ms": t_base.as_secs_f64() * 1e3,
            "morsel_ms": t_morsel.as_secs_f64() * 1e3,
            "speedup": speedup,
            "smoke": smoke,
        }),
    );
    Some(speedup)
}

/// The null-fraction axis: scan+filter and agg pipelines over a table
/// whose filtered column `v` carries 0/10/50% NULLs, comparing the
/// validity-bitmap representation against the same data force-degraded
/// to `Any` per-datum columns (the engine's pre-bitmap behavior, where
/// one NULL knocked the whole column off every typed kernel). Returns
/// the filter speedup at 10% NULLs for the acceptance gate (None in
/// smoke mode).
fn null_bench(smoke: bool) -> Option<f64> {
    let rows = scaled(if smoke { 10_000 } else { 1_000_000 });
    let iters = if smoke {
        2
    } else if rows >= 1_000_000 {
        3
    } else {
        9
    };
    let mk = |null_pct: u32, degrade: bool| {
        let db = MppDb::with_config(OptimizerConfig {
            num_segments: SEGMENTS,
            ..OptimizerConfig::default()
        })
        .with_exec_engine(ExecEngine::Batch);
        setup_nullable(
            db.storage(),
            "rn",
            &SynthConfig {
                r_rows: rows,
                s_rows: 0,
                r_parts: Some(64),
                s_parts: None,
                b_domain: 4096,
                a_domain: 200,
                seed: 2014,
            },
            null_pct,
        )
        .unwrap();
        if degrade {
            db.storage().degrade_blocks();
        }
        db
    };
    let queries: &[(&str, &str)] = &[
        ("filter", "SELECT * FROM rn WHERE v < 20"),
        (
            "agg",
            "SELECT b, COUNT(v), SUM(v) FROM rn WHERE v < 150 GROUP BY b",
        ),
    ];
    let mut acceptance: Option<f64> = None;
    println!();
    for &null_pct in &[0u32, 10, 50] {
        // Identical data (same seed), two representations.
        let typed = mk(null_pct, false);
        let degraded = mk(null_pct, true);
        for (label, sql) in queries {
            let qt = typed.prepare(sql).unwrap();
            let qd = degraded.prepare(sql).unwrap();
            // Representation must be invisible in the results.
            let rt = run(&typed, &qt, ExecMode::Sequential, ExecEngine::Batch);
            let rd = run(&degraded, &qd, ExecMode::Sequential, ExecEngine::Batch);
            assert_eq!(rt, rd, "representations disagree on {sql}");
            if smoke {
                println!(
                    "{rows:>9} rows  {null_pct:>3}% nulls  {label:<6}: \
                     typed == degraded rows ok (smoke)"
                );
                continue;
            }
            let (t_any, t_typed) = time_median_pair(
                iters,
                || black_box(run(&degraded, &qd, ExecMode::Sequential, ExecEngine::Batch)),
                || black_box(run(&typed, &qt, ExecMode::Sequential, ExecEngine::Batch)),
            );
            let speedup = t_any.as_secs_f64() / t_typed.as_secs_f64().max(1e-9);
            println!(
                "{rows:>9} rows  {null_pct:>3}% nulls  {label:<6} Sequential: \
                 degraded {:>9.3?}  typed {:>9.3?}  speedup {speedup:>5.2}x",
                t_any, t_typed
            );
            write_result(
                "BENCH_batch",
                &serde_json::json!({
                    "bench": "null_pipeline",
                    "rows": rows,
                    "parts": 64,
                    "null_pct": null_pct,
                    "query": *label,
                    "mode": "Sequential",
                    "segments": SEGMENTS,
                    "degraded_ms": t_any.as_secs_f64() * 1e3,
                    "typed_ms": t_typed.as_secs_f64() * 1e3,
                    "speedup": speedup,
                    "smoke": smoke,
                }),
            );
            if null_pct == 10 && *label == "filter" {
                acceptance = Some(speedup);
            }
        }
    }
    acceptance
}

fn main() {
    // Anchor at the workspace root so `results/` is shared with the
    // figure binaries.
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");

    let grid_rows: &[usize] = if smoke {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let grid_parts: &[usize] = if smoke { &[4, 64] } else { &[4, 64, 1024] };
    let queries: &[(&str, &str)] = &[
        ("filter", "SELECT * FROM r WHERE a < 20"),
        (
            "agg",
            "SELECT b, COUNT(*), SUM(a) FROM r WHERE a < 150 GROUP BY b",
        ),
    ];

    println!("== batch_pipeline: block engine vs row engine (scan+filter+agg) ==\n");
    let mut speedup_100k_filter: Option<f64> = None;
    for &rows in grid_rows {
        let rows = scaled(rows);
        let iters = if smoke {
            2
        } else if rows >= 1_000_000 {
            3
        } else {
            9
        };
        for &parts in grid_parts {
            let db = mk_db(rows, parts);
            for (label, sql) in queries {
                let q = db.prepare(sql).unwrap();
                for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                    let (t_row, t_batch) = time_median_pair(
                        iters,
                        || black_box(run(&db, &q, mode, ExecEngine::Row)),
                        || black_box(run(&db, &q, mode, ExecEngine::Batch)),
                    );
                    let speedup = t_row.as_secs_f64() / t_batch.as_secs_f64().max(1e-9);
                    println!(
                        "{rows:>9} rows  {parts:>5} parts  {label:<6} {mode:?}: \
                         row {:>9.3?}  batch {:>9.3?}  speedup {speedup:>5.2}x",
                        t_row, t_batch
                    );
                    write_result(
                        "BENCH_batch",
                        &serde_json::json!({
                            "bench": "batch_pipeline",
                            "rows": rows,
                            "parts": parts,
                            "query": *label,
                            "mode": format!("{mode:?}"),
                            "segments": SEGMENTS,
                            "row_engine_ms": t_row.as_secs_f64() * 1e3,
                            "batch_engine_ms": t_batch.as_secs_f64() * 1e3,
                            "speedup": speedup,
                            "smoke": smoke,
                        }),
                    );
                    if !smoke
                        && rows == 100_000
                        && parts == 64
                        && *label == "filter"
                        && mode == ExecMode::Sequential
                    {
                        speedup_100k_filter = Some(speedup);
                    }
                }
            }
        }
    }

    // A small criterion group on the mid-size cell, for `cargo bench`
    // comparability with the other benches.
    let db = mk_db(scaled(if smoke { 10_000 } else { 100_000 }), 64);
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("batch_pipeline");
    group.sample_size(10);
    for (label, sql) in queries {
        let q = db.prepare(sql).unwrap();
        for engine in [ExecEngine::Row, ExecEngine::Batch] {
            group.bench_function(format!("{label}/{engine:?}"), |bench| {
                bench.iter(|| black_box(run(&db, &q, ExecMode::Sequential, engine)))
            });
        }
    }
    group.finish();

    let null_speedup = null_bench(smoke);
    let skew_speedup = skew_bench(smoke);

    if let Some(speedup) = null_speedup {
        assert!(
            speedup >= 2.0,
            "acceptance: validity-bitmap columns must be >= 2x the Any-degraded \
             path on the 1M-row scan+filter with 10% NULLs, measured {speedup:.2}x"
        );
        println!("\nacceptance: 1M nullable scan+filter speedup {speedup:.2}x (>= 2x) ok");
    }
    if let Some(speedup) = speedup_100k_filter {
        assert!(
            speedup >= 2.0,
            "acceptance: block engine must be >= 2x the row engine on the \
             100k scan+filter pipeline, measured {speedup:.2}x"
        );
        println!("\nacceptance: 100k scan+filter speedup {speedup:.2}x (>= 2x) ok");
    }
    if let Some(speedup) = skew_speedup {
        assert!(
            speedup >= 2.0,
            "acceptance: morsel work-stealing must be >= 2x the per-segment \
             baseline on the skewed aggregate, measured {speedup:.2}x"
        );
        println!("acceptance: skewed-partition morsel speedup {speedup:.2}x (>= 2x) ok");
    }
}
