//! Microbenchmarks for the block kernels themselves — no planner, no
//! storage, no motion: one resident [`RowBlock`] and the compiled
//! expression API.
//!
//! Three kernel families, each across null fractions 0/10/50%:
//!
//! * `filter` — `v < 100` as a word-packed comparison mask;
//! * `and_or` — `(v < 120 AND w > 40) OR v IS NULL` as dual-bitmap 3VL
//!   word combinators;
//! * `hash` — columnar distribution hashing (`RowBlock::hash_columns`)
//!   of the nullable key column.
//!
//! Every cell times the validity-bitmap representation against the same
//! block force-degraded to `Any` per-datum columns (the pre-bitmap
//! behavior), interleaved so the recorded number is a fair ratio. In
//! `--test` smoke mode only the equivalence checks run (identical
//! selections and identical hashes across representations).

use criterion::{black_box, Criterion};
use mpp_bench::{scaled, time_median_pair, write_result};
use mppart::common::{Datum, Row, RowBlock};
use mppart::expr::{compile, ColRef, CompiledExpr, EvalContext, Expr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-column block `(v, w)` of Int32 with `null_pct`% NULLs in each
/// column (independently drawn). The NULLs keep both columns typed with
/// validity bitmaps; `degraded()` yields the `Any` counterpart.
fn mk_block(n: usize, null_pct: u32, seed: u64) -> RowBlock {
    let mut rng = StdRng::seed_from_u64(seed);
    let cell = |rng: &mut StdRng| {
        if rng.gen_range(0..100u32) < null_pct {
            Datum::Null
        } else {
            Datum::Int32(rng.gen_range(0..200))
        }
    };
    let rows: Vec<Row> = (0..n)
        .map(|_| {
            let v = cell(&mut rng);
            let w = cell(&mut rng);
            Row::new(vec![v, w])
        })
        .collect();
    RowBlock::from_rows(&rows, 2)
}

fn ctx() -> EvalContext<'static> {
    EvalContext::from_columns(&[ColRef::new(1, "v"), ColRef::new(2, "w")])
}

fn col(id: u32) -> Expr {
    Expr::col(ColRef::new(id, if id == 1 { "v" } else { "w" }))
}

fn predicates() -> Vec<(&'static str, CompiledExpr)> {
    let c = ctx();
    vec![
        ("filter", compile(&Expr::lt(col(1), Expr::lit(100i32)), &c)),
        (
            "and_or",
            compile(
                &Expr::or(vec![
                    Expr::and(vec![
                        Expr::lt(col(1), Expr::lit(120i32)),
                        Expr::gt(col(2), Expr::lit(40i32)),
                    ]),
                    Expr::IsNull(Box::new(col(1))),
                ]),
                &c,
            ),
        ),
    ]
}

fn main() {
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let smoke = std::env::args().any(|a| a == "--test");
    let n = scaled(if smoke { 20_000 } else { 1 << 20 });
    let iters = if smoke { 2 } else { 15 };

    println!("== kernels: validity-bitmap typed columns vs Any-degraded ({n} rows) ==\n");
    for &null_pct in &[0u32, 10, 50] {
        let typed = mk_block(n, null_pct, 2014 + null_pct as u64);
        let degraded = typed.degraded();

        for (label, pred) in predicates() {
            // The representations must select identical rows (and the
            // typed path must not have fallen back to the row loop).
            let (sel_t, fell_back) = pred.eval_predicate_block(&typed).unwrap();
            let (sel_d, _) = pred.eval_predicate_block(&degraded).unwrap();
            assert_eq!(sel_t, sel_d, "selection mismatch: {label} @ {null_pct}%");
            assert!(!fell_back, "typed path fell back: {label} @ {null_pct}%");
            if smoke {
                println!(
                    "{n:>9} rows  {null_pct:>3}% nulls  {label:<7}: typed == degraded ok (smoke)"
                );
                continue;
            }
            let (t_any, t_typed) = time_median_pair(
                iters,
                || black_box(pred.eval_predicate_block(&degraded).unwrap().0.len()),
                || black_box(pred.eval_predicate_block(&typed).unwrap().0.len()),
            );
            let speedup = t_any.as_secs_f64() / t_typed.as_secs_f64().max(1e-9);
            println!(
                "{n:>9} rows  {null_pct:>3}% nulls  {label:<7}: degraded {:>9.3?}  \
                 typed {:>9.3?}  speedup {speedup:>5.2}x",
                t_any, t_typed
            );
            write_result(
                "BENCH_kernels",
                &serde_json::json!({
                    "bench": "kernels",
                    "kernel": label,
                    "rows": n,
                    "null_pct": null_pct,
                    "degraded_ms": t_any.as_secs_f64() * 1e3,
                    "typed_ms": t_typed.as_secs_f64() * 1e3,
                    "speedup": speedup,
                    "smoke": smoke,
                }),
            );
        }

        // Columnar distribution hashing: bit-identical lanes, NULLs
        // hashed through the validity bitmap.
        let h_t = typed.hash_columns(&[0]);
        let h_d = degraded.hash_columns(&[0]);
        assert_eq!(h_t, h_d, "hash mismatch @ {null_pct}%");
        if smoke {
            println!("{n:>9} rows  {null_pct:>3}% nulls  hash   : typed == degraded ok (smoke)");
            continue;
        }
        let (t_any, t_typed) = time_median_pair(
            iters,
            || black_box(degraded.hash_columns(&[0]).len()),
            || black_box(typed.hash_columns(&[0]).len()),
        );
        let speedup = t_any.as_secs_f64() / t_typed.as_secs_f64().max(1e-9);
        println!(
            "{n:>9} rows  {null_pct:>3}% nulls  hash   : degraded {:>9.3?}  \
             typed {:>9.3?}  speedup {speedup:>5.2}x",
            t_any, t_typed
        );
        write_result(
            "BENCH_kernels",
            &serde_json::json!({
                "bench": "kernels",
                "kernel": "hash",
                "rows": n,
                "null_pct": null_pct,
                "degraded_ms": t_any.as_secs_f64() * 1e3,
                "typed_ms": t_typed.as_secs_f64() * 1e3,
                "speedup": speedup,
                "smoke": smoke,
            }),
        );
    }

    // A small criterion group for `cargo bench` comparability.
    let bn = scaled(if smoke { 20_000 } else { 1 << 18 });
    let typed = mk_block(bn, 10, 7);
    let degraded = typed.degraded();
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("kernels");
    group.sample_size(10);
    for (label, pred) in predicates() {
        group.bench_function(format!("{label}/typed_10pct"), |b| {
            b.iter(|| black_box(pred.eval_predicate_block(&typed).unwrap().0.len()))
        });
        group.bench_function(format!("{label}/degraded_10pct"), |b| {
            b.iter(|| black_box(pred.eval_predicate_block(&degraded).unwrap().0.len()))
        });
    }
    group.bench_function("hash/typed_10pct", |b| {
        b.iter(|| black_box(typed.hash_columns(&[0]).len()))
    });
    group.bench_function("hash/degraded_10pct", |b| {
        b.iter(|| black_box(degraded.hash_columns(&[0]).len()))
    });
    group.finish();
}
