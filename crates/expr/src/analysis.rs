//! Predicate analysis: deriving interval sets from predicates and the
//! helper functions used by the PartitionSelector placement algorithms
//! (paper §2.3): `FindPredOnKey`, `Conj`, conjunct splitting.
//!
//! [`derive_interval_set`] is the analytical core of the partition
//! selection function `f*_T` (paper §2.1): given a predicate `φ` over a
//! partitioning key, it computes a set `S` of key values such that any
//! tuple satisfying `φ` has its key in `S` (or has a NULL key, reported
//! separately). The derivation is *conservative*: when a sub-expression
//! cannot be analyzed, it widens to "all values", never dropping a
//! partition that could contain matches — the soundness requirement of
//! `f*_T`.

use crate::ast::{CmpOp, Expr};
use crate::colref::ColRef;
use crate::eval::{eval, EvalContext};
use crate::interval::IntervalSet;
use mpp_common::{Datum, Row};
use std::collections::{BTreeSet, HashMap};

/// Result of interval derivation for a key column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedSet {
    /// Non-null key values that may satisfy the predicate.
    pub set: IntervalSet,
    /// True if the set is exactly the satisfying values (enables
    /// complement-based reasoning); false means "conservative superset".
    pub exact: bool,
    /// True if a tuple whose key is NULL might satisfy the predicate.
    pub null_possible: bool,
}

impl DerivedSet {
    pub fn full() -> DerivedSet {
        DerivedSet {
            set: IntervalSet::full(),
            exact: false,
            null_possible: true,
        }
    }

    pub fn empty_exact() -> DerivedSet {
        DerivedSet {
            set: IntervalSet::empty(),
            exact: true,
            null_possible: false,
        }
    }
}

/// Try to evaluate a constant sub-expression (literals, arithmetic over
/// literals, and parameters when `params` is provided).
pub fn eval_const(expr: &Expr, params: Option<&[Datum]>) -> Option<Datum> {
    if !expr.is_constant_given_params(params.is_some()) {
        return None;
    }
    let empty = Row::empty();
    let ctx = match params {
        Some(p) => EvalContext::new().with_params(p),
        None => EvalContext::new(),
    };
    eval(expr, &empty, &ctx).ok()
}

/// Derive the interval set of values of `key` that may satisfy `expr`.
///
/// `params` supplies prepared-statement parameter values when they are
/// known (at run time); without them any predicate mentioning a parameter
/// widens conservatively.
pub fn derive_interval_set(expr: &Expr, key: &ColRef, params: Option<&[Datum]>) -> DerivedSet {
    match expr {
        Expr::Lit(Datum::Bool(true)) => DerivedSet {
            set: IntervalSet::full(),
            exact: true,
            null_possible: true,
        },
        Expr::Lit(Datum::Bool(false)) | Expr::Lit(Datum::Null) => DerivedSet::empty_exact(),
        Expr::Cmp { op, left, right } => derive_cmp(*op, left, right, key, params),
        Expr::And(v) => {
            let mut acc = DerivedSet {
                set: IntervalSet::full(),
                exact: true,
                null_possible: true,
            };
            for e in v {
                let d = derive_interval_set(e, key, params);
                acc.set = acc.set.intersect(&d.set);
                acc.exact &= d.exact;
                acc.null_possible &= d.null_possible;
            }
            acc
        }
        Expr::Or(v) => {
            let mut acc = DerivedSet::empty_exact();
            for e in v {
                let d = derive_interval_set(e, key, params);
                acc.set = acc.set.union(&d.set);
                acc.exact &= d.exact;
                acc.null_possible |= d.null_possible;
            }
            acc
        }
        Expr::Not(inner) => derive_not(inner, key, params),
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Col(c) if c == key => DerivedSet {
                set: IntervalSet::empty(),
                exact: true,
                null_possible: true,
            },
            _ => DerivedSet::full(),
        },
        Expr::Between { expr: e, low, high } => match e.as_ref() {
            Expr::Col(c) if c == key => {
                let lo = eval_const(low, params);
                let hi = eval_const(high, params);
                match (lo, hi) {
                    (Some(lo), Some(hi)) => {
                        if lo.is_null() || hi.is_null() {
                            // BETWEEN with a NULL endpoint is never true.
                            return DerivedSet::empty_exact();
                        }
                        DerivedSet {
                            set: IntervalSet::from_cmp(CmpOp::Ge, lo)
                                .intersect(&IntervalSet::from_cmp(CmpOp::Le, hi)),
                            exact: true,
                            null_possible: false,
                        }
                    }
                    _ => DerivedSet::full(),
                }
            }
            _ => DerivedSet::full(),
        },
        Expr::InList {
            expr: e,
            list,
            negated,
        } => match e.as_ref() {
            Expr::Col(c) if c == key => {
                let mut vals = Vec::with_capacity(list.len());
                let mut has_null = false;
                for item in list {
                    match eval_const(item, params) {
                        Some(Datum::Null) => has_null = true,
                        Some(v) => vals.push(v),
                        None => return DerivedSet::full(),
                    }
                }
                if !negated {
                    DerivedSet {
                        set: IntervalSet::points(vals),
                        exact: !has_null, // with NULL in the list, a superset
                        null_possible: false,
                    }
                } else if has_null {
                    // key NOT IN (…, NULL, …) is never true.
                    DerivedSet::empty_exact()
                } else {
                    DerivedSet {
                        set: IntervalSet::points(vals).complement(),
                        exact: true,
                        null_possible: false,
                    }
                }
            }
            _ => DerivedSet::full(),
        },
        // Anything else gives no information about the key.
        _ => DerivedSet::full(),
    }
}

fn derive_cmp(
    op: CmpOp,
    left: &Expr,
    right: &Expr,
    key: &ColRef,
    params: Option<&[Datum]>,
) -> DerivedSet {
    // Normalize to `key OP const`.
    let (op, other) = match (left, right) {
        (Expr::Col(c), other) if c == key => (op, other),
        (other, Expr::Col(c)) if c == key => (op.flip(), other),
        _ => return DerivedSet::full(),
    };
    match eval_const(other, params) {
        Some(v) => {
            if v.is_null() {
                return DerivedSet::empty_exact();
            }
            DerivedSet {
                set: IntervalSet::from_cmp(op, v),
                exact: true,
                null_possible: false,
            }
        }
        None => DerivedSet::full(),
    }
}

fn derive_not(inner: &Expr, key: &ColRef, params: Option<&[Datum]>) -> DerivedSet {
    match inner {
        // NOT (key OP c) = key negate(OP) c for non-null keys; a NULL key
        // leaves the comparison unknown, so NOT also never holds.
        Expr::Cmp { op, left, right } => {
            let d = derive_cmp(op.negate(), left, right, key, params);
            if d.exact {
                d
            } else {
                DerivedSet::full()
            }
        }
        Expr::Not(e) => derive_interval_set(e, key, params),
        // De Morgan.
        Expr::And(v) => derive_interval_set(
            &Expr::or(v.iter().cloned().map(Expr::not).collect()),
            key,
            params,
        ),
        Expr::Or(v) => derive_interval_set(
            &Expr::and(v.iter().cloned().map(Expr::not).collect()),
            key,
            params,
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => derive_interval_set(
            &Expr::InList {
                expr: expr.clone(),
                list: list.clone(),
                negated: !negated,
            },
            key,
            params,
        ),
        Expr::IsNull(e) => match e.as_ref() {
            Expr::Col(c) if c == key => DerivedSet {
                set: IntervalSet::full(),
                exact: true,
                null_possible: false,
            },
            _ => DerivedSet::full(),
        },
        Expr::Between { expr, low, high } => {
            // NOT (k BETWEEN a AND b) = k < a OR k > b (for non-null k, a, b).
            let rewritten = Expr::or(vec![
                Expr::lt(expr.as_ref().clone(), low.as_ref().clone()),
                Expr::gt(expr.as_ref().clone(), high.as_ref().clone()),
            ]);
            let d = derive_interval_set(&rewritten, key, params);
            if d.exact {
                d
            } else {
                DerivedSet::full()
            }
        }
        _ => DerivedSet::full(),
    }
}

/// Split a predicate into its top-level conjuncts, flattening nested ANDs.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn rec(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::And(v) => {
                for c in v {
                    rec(c, out);
                }
            }
            other => out.push(other.clone()),
        }
    }
    rec(expr, &mut out);
    out
}

/// The paper's `Conj` helper: conjunction of an optional accumulated
/// predicate with a new one.
pub fn conj(a: Option<Expr>, b: Expr) -> Expr {
    match a {
        None => b,
        Some(a) => {
            let mut parts = split_conjuncts(&a);
            parts.extend(split_conjuncts(&b));
            Expr::and(parts)
        }
    }
}

/// All column references appearing in an expression.
pub fn collect_columns(expr: &Expr) -> BTreeSet<ColRef> {
    let mut out = BTreeSet::new();
    expr.visit(&mut |e| {
        if let Expr::Col(c) = e {
            out.insert(c.clone());
        }
    });
    out
}

/// Does the expression reference only columns in `allowed`?
pub fn references_only(expr: &Expr, allowed: &BTreeSet<ColRef>) -> bool {
    collect_columns(expr).iter().all(|c| allowed.contains(c))
}

/// The paper's `FindPredOnKey`: extract from `expr` the conjunction of
/// top-level conjuncts that mention `key`. Returns `None` when no conjunct
/// mentions the key.
pub fn find_pred_on_key(expr: &Expr, key: &ColRef) -> Option<Expr> {
    let matching: Vec<Expr> = split_conjuncts(expr)
        .into_iter()
        .filter(|c| collect_columns(c).contains(key))
        .collect();
    if matching.is_empty() {
        None
    } else {
        Some(Expr::and(matching))
    }
}

/// Multi-level variant (paper §2.4): one optional predicate per key.
/// Returns `None` if no key has a filtering predicate.
pub fn find_preds_on_keys(expr: &Expr, keys: &[ColRef]) -> Option<Vec<Option<Expr>>> {
    let per_key: Vec<Option<Expr>> = keys.iter().map(|k| find_pred_on_key(expr, k)).collect();
    if per_key.iter().all(Option::is_none) {
        None
    } else {
        Some(per_key)
    }
}

/// Replace column references according to `map` (colref id → expression).
pub fn substitute_columns(expr: &Expr, map: &HashMap<u32, Expr>) -> Expr {
    expr.transform(&|e| match &e {
        Expr::Col(c) => map.get(&c.id).cloned().unwrap_or(e),
        _ => e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ColRef {
        ColRef::new(1, "pk")
    }

    fn other() -> ColRef {
        ColRef::new(2, "x")
    }

    fn kc() -> Expr {
        Expr::col(key())
    }

    #[test]
    fn derive_simple_comparisons() {
        let d = derive_interval_set(&Expr::eq(kc(), Expr::lit(5i32)), &key(), None);
        assert!(d.exact);
        assert!(!d.null_possible);
        assert!(d.set.contains(&Datum::Int32(5)));
        assert!(!d.set.contains(&Datum::Int32(6)));

        // Flipped side: 5 > pk  ⇔  pk < 5
        let d = derive_interval_set(&Expr::gt(Expr::lit(5i32), kc()), &key(), None);
        assert!(d.set.contains(&Datum::Int32(4)));
        assert!(!d.set.contains(&Datum::Int32(5)));
    }

    #[test]
    fn derive_between_and_in() {
        let d = derive_interval_set(
            &Expr::between(kc(), Expr::lit(10i32), Expr::lit(12i32)),
            &key(),
            None,
        );
        assert!(d.exact);
        assert!(d.set.contains(&Datum::Int32(10)));
        assert!(d.set.contains(&Datum::Int32(12)));
        assert!(!d.set.contains(&Datum::Int32(13)));

        let d = derive_interval_set(
            &Expr::in_list(kc(), vec![Expr::lit(1i32), Expr::lit(3i32)]),
            &key(),
            None,
        );
        assert!(d.set.contains(&Datum::Int32(3)));
        assert!(!d.set.contains(&Datum::Int32(2)));
    }

    #[test]
    fn derive_and_or_not() {
        let e = Expr::and(vec![
            Expr::ge(kc(), Expr::lit(10i32)),
            Expr::le(kc(), Expr::lit(20i32)),
        ]);
        let d = derive_interval_set(&e, &key(), None);
        assert!(d.exact);
        assert!(d.set.contains(&Datum::Int32(15)));
        assert!(!d.set.contains(&Datum::Int32(25)));

        let e = Expr::or(vec![
            Expr::lt(kc(), Expr::lit(0i32)),
            Expr::gt(kc(), Expr::lit(100i32)),
        ]);
        let d = derive_interval_set(&e, &key(), None);
        assert!(d.set.contains(&Datum::Int32(-5)));
        assert!(!d.set.contains(&Datum::Int32(50)));

        let e = Expr::not(Expr::eq(kc(), Expr::lit(5i32)));
        let d = derive_interval_set(&e, &key(), None);
        assert!(d.exact);
        assert!(!d.set.contains(&Datum::Int32(5)));
        assert!(d.set.contains(&Datum::Int32(6)));
        assert!(!d.null_possible);
    }

    #[test]
    fn derive_is_conservative_for_join_predicates() {
        // pk = x references another column: no static info.
        let e = Expr::eq(kc(), Expr::col(other()));
        let d = derive_interval_set(&e, &key(), None);
        assert!(d.set.is_full());
        assert!(!d.exact);
    }

    #[test]
    fn params_widen_until_bound() {
        let e = Expr::eq(kc(), Expr::Param(1));
        let unbound = derive_interval_set(&e, &key(), None);
        assert!(unbound.set.is_full());
        let params = [Datum::Int32(9)];
        let bound = derive_interval_set(&e, &key(), Some(&params));
        assert!(bound.exact);
        assert!(bound.set.contains(&Datum::Int32(9)));
        assert!(!bound.set.contains(&Datum::Int32(8)));
    }

    #[test]
    fn null_semantics() {
        // pk = NULL never matches.
        let d = derive_interval_set(&Expr::eq(kc(), Expr::Lit(Datum::Null)), &key(), None);
        assert!(d.set.is_empty());
        assert!(d.exact);
        // pk IS NULL: no non-null values, but null rows qualify.
        let d = derive_interval_set(&Expr::IsNull(Box::new(kc())), &key(), None);
        assert!(d.set.is_empty());
        assert!(d.null_possible);
        // pk NOT IN (1, NULL) is never true.
        let d = derive_interval_set(
            &Expr::InList {
                expr: Box::new(kc()),
                list: vec![Expr::lit(1i32), Expr::Lit(Datum::Null)],
                negated: true,
            },
            &key(),
            None,
        );
        assert!(d.set.is_empty());
        assert!(d.exact);
    }

    #[test]
    fn split_and_conj() {
        let e = Expr::and(vec![
            Expr::eq(kc(), Expr::lit(1i32)),
            Expr::and(vec![
                Expr::gt(Expr::col(other()), Expr::lit(2i32)),
                Expr::lt(Expr::col(other()), Expr::lit(9i32)),
            ]),
        ]);
        assert_eq!(split_conjuncts(&e).len(), 3);
        let c = conj(Some(Expr::lit(true)), Expr::eq(kc(), Expr::lit(1i32)));
        assert_eq!(split_conjuncts(&c).len(), 2);
        let c = conj(None, Expr::eq(kc(), Expr::lit(1i32)));
        assert_eq!(split_conjuncts(&c).len(), 1);
    }

    #[test]
    fn find_pred_on_key_extracts_only_key_conjuncts() {
        let e = Expr::and(vec![
            Expr::ge(kc(), Expr::lit(10i32)),
            Expr::eq(Expr::col(other()), Expr::lit("CA")),
            Expr::le(kc(), Expr::lit(12i32)),
        ]);
        let p = find_pred_on_key(&e, &key()).unwrap();
        let conjs = split_conjuncts(&p);
        assert_eq!(conjs.len(), 2);
        assert!(find_pred_on_key(&e, &ColRef::new(99, "zz")).is_none());
        // Join predicate mentioning the key is found too.
        let j = Expr::eq(kc(), Expr::col(other()));
        assert!(find_pred_on_key(&j, &key()).is_some());
    }

    #[test]
    fn find_preds_on_keys_multi_level() {
        let date = ColRef::new(10, "date");
        let region = ColRef::new(11, "region");
        let e = Expr::eq(Expr::col(region.clone()), Expr::lit("Region 1"));
        let preds = find_preds_on_keys(&e, &[date.clone(), region.clone()]).unwrap();
        assert!(preds[0].is_none());
        assert!(preds[1].is_some());
        assert!(find_preds_on_keys(&e, &[date]).is_none());
    }

    #[test]
    fn substitution() {
        let e = Expr::eq(kc(), Expr::col(other()));
        let mut map = HashMap::new();
        map.insert(other().id, Expr::lit(7i32));
        let s = substitute_columns(&e, &map);
        assert_eq!(s, Expr::eq(kc(), Expr::lit(7i32)));
    }

    #[test]
    fn collect_and_references_only() {
        let e = Expr::and(vec![
            Expr::eq(kc(), Expr::col(other())),
            Expr::gt(kc(), Expr::lit(0i32)),
        ]);
        let cols = collect_columns(&e);
        assert_eq!(cols.len(), 2);
        let mut allowed = BTreeSet::new();
        allowed.insert(key());
        assert!(!references_only(&e, &allowed));
        allowed.insert(other());
        assert!(references_only(&e, &allowed));
    }

    #[test]
    fn eval_const_folds_arithmetic() {
        use mpp_common::value::ArithOp;
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::lit(2i32)),
            right: Box::new(Expr::lit(3i32)),
        };
        assert_eq!(eval_const(&e, None), Some(Datum::Int64(5)));
        assert_eq!(eval_const(&kc(), None), None);
    }
}
