//! Column references.
//!
//! Like ORCA's `CColRef`, a [`ColRef`] is a *globally unique* column
//! identity minted by the binder/optimizer, not a positional index. This is
//! what lets the PartitionSelector placement algorithms reason about "the
//! partitioning key of DynamicScan 2" while walking operators far above the
//! scan: identity survives joins, projections and motion boundaries.
//! Executors translate colrefs to positions only at the last moment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A globally unique column identity. Equality and hashing use only the
/// numeric id; the name rides along for display.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColRef {
    pub id: u32,
    pub name: Arc<str>,
}

impl ColRef {
    pub fn new(id: u32, name: impl Into<Arc<str>>) -> ColRef {
        ColRef {
            id,
            name: name.into(),
        }
    }
}

impl PartialEq for ColRef {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for ColRef {}

impl PartialOrd for ColRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ColRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl Hash for ColRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name, self.id)
    }
}

/// Mints fresh [`ColRef`]s. One generator per optimization session.
#[derive(Debug, Default)]
pub struct ColRefGenerator {
    next: AtomicU32,
}

impl ColRefGenerator {
    pub fn new() -> ColRefGenerator {
        ColRefGenerator {
            next: AtomicU32::new(1),
        }
    }

    /// Start ids at `first` (used when grafting onto an existing plan).
    pub fn starting_at(first: u32) -> ColRefGenerator {
        ColRefGenerator {
            next: AtomicU32::new(first),
        }
    }

    pub fn fresh(&self, name: impl Into<Arc<str>>) -> ColRef {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        ColRef::new(id, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_ignores_name() {
        let a = ColRef::new(3, "x");
        let b = ColRef::new(3, "renamed");
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn generator_mints_unique_ids() {
        let g = ColRefGenerator::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        assert_ne!(a, b);
        assert_eq!(a.id + 1, b.id);
    }

    #[test]
    fn display_shows_name_and_id() {
        assert_eq!(ColRef::new(7, "pk").to_string(), "pk#7");
    }
}
