//! Interval sets over [`Datum`].
//!
//! GPDB represents every partition's check constraint as
//! `pk ∈ ∪ᵢ(aᵢ, bᵢ)` where each `(aᵢ, bᵢ)` is an open, closed or
//! half-open interval, possibly unbounded (paper §3.2). Categorical (list)
//! partitions are the degenerate case where an interval's endpoints
//! coincide. [`IntervalSet`] is that representation, with the algebra
//! (intersection, union, complement) that partition selection needs.
//!
//! Intervals range over *non-null* values only; `NULL` routing is handled
//! by the catalog's default-partition logic.

use mpp_common::Datum;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Lower endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LowBound {
    NegInf,
    Incl(Datum),
    Excl(Datum),
}

/// Upper endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HighBound {
    PosInf,
    Incl(Datum),
    Excl(Datum),
}

/// A contiguous, possibly unbounded interval of datum values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    pub low: LowBound,
    pub high: HighBound,
}

/// Where does low bound `a` start relative to low bound `b`?
pub fn cmp_low(a: &LowBound, b: &LowBound) -> Ordering {
    use LowBound::*;
    match (a, b) {
        (NegInf, NegInf) => Ordering::Equal,
        (NegInf, _) => Ordering::Less,
        (_, NegInf) => Ordering::Greater,
        (Incl(x), Incl(y)) | (Excl(x), Excl(y)) => x.cmp(y),
        (Incl(x), Excl(y)) => x.cmp(y).then(Ordering::Less),
        (Excl(x), Incl(y)) => x.cmp(y).then(Ordering::Greater),
    }
}

/// Where does high bound `a` end relative to high bound `b`?
pub fn cmp_high(a: &HighBound, b: &HighBound) -> Ordering {
    use HighBound::*;
    match (a, b) {
        (PosInf, PosInf) => Ordering::Equal,
        (PosInf, _) => Ordering::Greater,
        (_, PosInf) => Ordering::Less,
        (Incl(x), Incl(y)) | (Excl(x), Excl(y)) => x.cmp(y),
        (Incl(x), Excl(y)) => x.cmp(y).then(Ordering::Greater),
        (Excl(x), Incl(y)) => x.cmp(y).then(Ordering::Less),
    }
}

/// True when an interval `(low, high)` contains no value.
fn is_void(low: &LowBound, high: &HighBound) -> bool {
    let (lv, li) = match low {
        LowBound::NegInf => return false,
        LowBound::Incl(v) => (v, true),
        LowBound::Excl(v) => (v, false),
    };
    let (hv, hi) = match high {
        HighBound::PosInf => return false,
        HighBound::Incl(v) => (v, true),
        HighBound::Excl(v) => (v, false),
    };
    match lv.cmp(hv) {
        Ordering::Greater => true,
        Ordering::Equal => !(li && hi),
        Ordering::Less => false,
    }
}

/// Is there a gap between a high bound and the following low bound (i.e.
/// they can NOT be merged into one contiguous interval)?
fn gap_between(high: &HighBound, low: &LowBound) -> bool {
    let (hv, hi) = match high {
        HighBound::PosInf => return false,
        HighBound::Incl(v) => (v, true),
        HighBound::Excl(v) => (v, false),
    };
    let (lv, li) = match low {
        LowBound::NegInf => return false,
        LowBound::Incl(v) => (v, true),
        LowBound::Excl(v) => (v, false),
    };
    match hv.cmp(lv) {
        Ordering::Less => true,
        Ordering::Equal => !hi && !li,
        Ordering::Greater => false,
    }
}

impl Interval {
    pub fn new(low: LowBound, high: HighBound) -> Interval {
        Interval { low, high }
    }

    /// The single point `{v}`.
    pub fn point(v: Datum) -> Interval {
        Interval::new(LowBound::Incl(v.clone()), HighBound::Incl(v))
    }

    /// `(-∞, +∞)`.
    pub fn unbounded() -> Interval {
        Interval::new(LowBound::NegInf, HighBound::PosInf)
    }

    /// `[low, high)` — the standard range-partition shape.
    pub fn half_open(low: Datum, high: Datum) -> Interval {
        Interval::new(LowBound::Incl(low), HighBound::Excl(high))
    }

    pub fn is_empty(&self) -> bool {
        is_void(&self.low, &self.high)
    }

    /// Is `v` at or above the low endpoint? Monotone along `cmp_low` order,
    /// which makes it usable as a binary-search predicate over intervals
    /// sorted by low bound.
    pub fn low_admits(&self, v: &Datum) -> bool {
        match &self.low {
            LowBound::NegInf => true,
            LowBound::Incl(b) => v >= b,
            LowBound::Excl(b) => v > b,
        }
    }

    /// Is `v` at or below the high endpoint?
    pub fn high_admits(&self, v: &Datum) -> bool {
        match &self.high {
            HighBound::PosInf => true,
            HighBound::Incl(b) => v <= b,
            HighBound::Excl(b) => v < b,
        }
    }

    /// Does this interval contain the (non-null) value?
    pub fn contains(&self, v: &Datum) -> bool {
        if v.is_null() {
            return false;
        }
        self.low_admits(v) && self.high_admits(v)
    }

    /// Intersection of two intervals (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let low = if cmp_low(&self.low, &other.low) == Ordering::Greater {
            self.low.clone()
        } else {
            other.low.clone()
        };
        let high = if cmp_high(&self.high, &other.high) == Ordering::Less {
            self.high.clone()
        } else {
            other.high.clone()
        };
        Interval::new(low, high)
    }

    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.low {
            LowBound::NegInf => write!(f, "(-inf")?,
            LowBound::Incl(v) => write!(f, "[{v}")?,
            LowBound::Excl(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.high {
            HighBound::PosInf => write!(f, "+inf)"),
            HighBound::Incl(v) => write!(f, "{v}]"),
            HighBound::Excl(v) => write!(f, "{v})"),
        }
    }
}

/// A union of disjoint, sorted intervals. The canonical form merges
/// overlapping and adjacent intervals, so equality is semantic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    pub fn empty() -> IntervalSet {
        IntervalSet { intervals: vec![] }
    }

    pub fn full() -> IntervalSet {
        IntervalSet {
            intervals: vec![Interval::unbounded()],
        }
    }

    pub fn point(v: Datum) -> IntervalSet {
        IntervalSet::from_intervals(vec![Interval::point(v)])
    }

    pub fn points(vs: impl IntoIterator<Item = Datum>) -> IntervalSet {
        IntervalSet::from_intervals(vs.into_iter().map(Interval::point).collect())
    }

    pub fn interval(i: Interval) -> IntervalSet {
        IntervalSet::from_intervals(vec![i])
    }

    /// Normalize an arbitrary list of intervals: drop empties, sort, merge.
    pub fn from_intervals(mut intervals: Vec<Interval>) -> IntervalSet {
        intervals.retain(|i| !i.is_empty());
        intervals.sort_by(|a, b| cmp_low(&a.low, &b.low).then_with(|| cmp_high(&a.high, &b.high)));
        let mut merged: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if !gap_between(&last.high, &iv.low) => {
                    if cmp_high(&iv.high, &last.high) == Ordering::Greater {
                        last.high = iv.high;
                    }
                }
                _ => merged.push(iv),
            }
        }
        IntervalSet { intervals: merged }
    }

    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.intervals.len() == 1
            && self.intervals[0].low == LowBound::NegInf
            && self.intervals[0].high == HighBound::PosInf
    }

    pub fn contains(&self, v: &Datum) -> bool {
        self.intervals.iter().any(|i| i.contains(v))
    }

    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.intervals.clone();
        all.extend(other.intervals.iter().cloned());
        IntervalSet::from_intervals(all)
    }

    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        // Both lists are sorted and disjoint; a merge-walk is O(n+m).
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = &self.intervals[i];
            let b = &other.intervals[j];
            let x = a.intersect(b);
            if !x.is_empty() {
                out.push(x);
            }
            // Advance whichever ends first.
            if cmp_high(&a.high, &b.high) == Ordering::Less {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Complement within the full (non-null) value space.
    pub fn complement(&self) -> IntervalSet {
        if self.intervals.is_empty() {
            return IntervalSet::full();
        }
        let mut out = Vec::new();
        let mut cursor = LowBound::NegInf;
        for iv in &self.intervals {
            // Gap before iv: [cursor, flip(iv.low))
            let gap_high = match &iv.low {
                LowBound::NegInf => None,
                LowBound::Incl(v) => Some(HighBound::Excl(v.clone())),
                LowBound::Excl(v) => Some(HighBound::Incl(v.clone())),
            };
            if let Some(h) = gap_high {
                let candidate = Interval::new(cursor.clone(), h);
                if !candidate.is_empty() {
                    out.push(candidate);
                }
            }
            cursor = match &iv.high {
                HighBound::PosInf => return IntervalSet::from_intervals(out),
                HighBound::Incl(v) => LowBound::Excl(v.clone()),
                HighBound::Excl(v) => LowBound::Incl(v.clone()),
            };
        }
        out.push(Interval::new(cursor, HighBound::PosInf));
        IntervalSet::from_intervals(out)
    }

    pub fn overlaps(&self, other: &IntervalSet) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Interval set for `col OP value`.
    pub fn from_cmp(op: crate::ast::CmpOp, v: Datum) -> IntervalSet {
        use crate::ast::CmpOp::*;
        if v.is_null() {
            // col OP NULL never holds.
            return IntervalSet::empty();
        }
        match op {
            Eq => IntervalSet::point(v),
            Ne => IntervalSet::point(v).complement(),
            Lt => IntervalSet::interval(Interval::new(LowBound::NegInf, HighBound::Excl(v))),
            Le => IntervalSet::interval(Interval::new(LowBound::NegInf, HighBound::Incl(v))),
            Gt => IntervalSet::interval(Interval::new(LowBound::Excl(v), HighBound::PosInf)),
            Ge => IntervalSet::interval(Interval::new(LowBound::Incl(v), HighBound::PosInf)),
        }
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return f.write_str("{}");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                f.write_str(" u ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn d(v: i32) -> Datum {
        Datum::Int32(v)
    }

    #[test]
    fn point_and_range_contains() {
        let p = Interval::point(d(5));
        assert!(p.contains(&d(5)));
        assert!(!p.contains(&d(6)));
        let r = Interval::half_open(d(0), d(10));
        assert!(r.contains(&d(0)));
        assert!(r.contains(&d(9)));
        assert!(!r.contains(&d(10)));
        assert!(!r.contains(&Datum::Null));
    }

    #[test]
    fn empty_detection() {
        assert!(Interval::new(LowBound::Incl(d(5)), HighBound::Excl(d(5))).is_empty());
        assert!(Interval::new(LowBound::Excl(d(5)), HighBound::Incl(d(5))).is_empty());
        assert!(!Interval::point(d(5)).is_empty());
        assert!(Interval::new(LowBound::Incl(d(6)), HighBound::Incl(d(5))).is_empty());
    }

    #[test]
    fn normalization_merges_overlap_and_adjacency() {
        let s = IntervalSet::from_intervals(vec![
            Interval::half_open(d(0), d(10)),
            Interval::half_open(d(10), d(20)),
            Interval::half_open(d(30), d(40)),
        ]);
        assert_eq!(s.intervals().len(), 2);
        assert!(s.contains(&d(10)));
        assert!(!s.contains(&d(25)));
        // (.., 5) and (5, ..) must NOT merge: 5 is excluded by both.
        let s2 = IntervalSet::from_intervals(vec![
            Interval::new(LowBound::NegInf, HighBound::Excl(d(5))),
            Interval::new(LowBound::Excl(d(5)), HighBound::PosInf),
        ]);
        assert_eq!(s2.intervals().len(), 2);
        assert!(!s2.contains(&d(5)));
    }

    #[test]
    fn union_intersect() {
        let a = IntervalSet::interval(Interval::half_open(d(0), d(10)));
        let b = IntervalSet::interval(Interval::half_open(d(5), d(15)));
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 1);
        assert!(u.contains(&d(12)));
        let i = a.intersect(&b);
        assert!(i.contains(&d(7)));
        assert!(!i.contains(&d(2)));
        assert!(!i.contains(&d(12)));
    }

    #[test]
    fn intersect_multi_interval_sets() {
        let a = IntervalSet::from_intervals(vec![
            Interval::half_open(d(0), d(10)),
            Interval::half_open(d(20), d(30)),
            Interval::half_open(d(40), d(50)),
        ]);
        let b = IntervalSet::from_intervals(vec![
            Interval::half_open(d(5), d(25)),
            Interval::half_open(d(45), d(100)),
        ]);
        let x = a.intersect(&b);
        assert!(x.contains(&d(7)));
        assert!(x.contains(&d(22)));
        assert!(x.contains(&d(47)));
        assert!(!x.contains(&d(15)));
        assert!(!x.contains(&d(35)));
    }

    #[test]
    fn complement_roundtrip() {
        let a = IntervalSet::from_intervals(vec![
            Interval::half_open(d(0), d(10)),
            Interval::point(d(20)),
        ]);
        let c = a.complement();
        assert!(!c.contains(&d(5)));
        assert!(!c.contains(&d(20)));
        assert!(c.contains(&d(-1)));
        assert!(c.contains(&d(10)));
        assert!(c.contains(&d(15)));
        assert_eq!(c.complement(), a);
        assert_eq!(IntervalSet::empty().complement(), IntervalSet::full());
        assert_eq!(IntervalSet::full().complement(), IntervalSet::empty());
    }

    #[test]
    fn from_cmp_shapes() {
        assert!(IntervalSet::from_cmp(CmpOp::Eq, d(5)).contains(&d(5)));
        let ne = IntervalSet::from_cmp(CmpOp::Ne, d(5));
        assert!(!ne.contains(&d(5)));
        assert!(ne.contains(&d(4)));
        let lt = IntervalSet::from_cmp(CmpOp::Lt, d(5));
        assert!(lt.contains(&d(4)));
        assert!(!lt.contains(&d(5)));
        let ge = IntervalSet::from_cmp(CmpOp::Ge, d(5));
        assert!(ge.contains(&d(5)));
        assert!(!ge.contains(&d(4)));
        // Comparisons with NULL match nothing.
        assert!(IntervalSet::from_cmp(CmpOp::Eq, Datum::Null).is_empty());
    }

    #[test]
    fn display_forms() {
        let s = IntervalSet::from_intervals(vec![
            Interval::half_open(d(0), d(10)),
            Interval::point(d(20)),
        ]);
        assert_eq!(s.to_string(), "[0, 10) u [20, 20]");
        assert_eq!(IntervalSet::empty().to_string(), "{}");
    }

    #[test]
    fn mixed_type_points_order_totally() {
        // Strings and ints don't compare SQL-wise, but the set must stay
        // well-formed (total fallback order by type rank).
        let s = IntervalSet::points([Datum::str("a"), d(1), Datum::str("b"), d(2)]);
        assert!(s.contains(&d(1)));
        assert!(s.contains(&Datum::str("b")));
        assert!(!s.contains(&Datum::str("c")));
    }
}
