//! The scalar expression AST.

use crate::colref::ColRef;
use mpp_common::value::ArithOp;
use mpp_common::Datum;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Operator with sides swapped: `a < b` ⇔ `b > a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation: `NOT (a < b)` ⇔ `a >= b` (for non-null operands).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column by global identity.
    Col(ColRef),
    /// Literal constant.
    Lit(Datum),
    /// Prepared-statement parameter `$n` (1-based), bound at execution time.
    /// This is what makes *static* pruning impossible and *dynamic* pruning
    /// necessary for prepared statements (paper §1).
    Param(u32),
    /// Binary comparison.
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// N-ary conjunction.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// Binary arithmetic.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr BETWEEN low AND high` (inclusive both ends).
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
}

impl Expr {
    pub fn col(c: ColRef) -> Expr {
        Expr::Col(c)
    }

    pub fn lit(d: impl Into<Datum>) -> Expr {
        Expr::Lit(d.into())
    }

    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, left, right)
    }

    pub fn lt(left: Expr, right: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, left, right)
    }

    pub fn le(left: Expr, right: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, left, right)
    }

    pub fn gt(left: Expr, right: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, left, right)
    }

    pub fn ge(left: Expr, right: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, left, right)
    }

    pub fn and(exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::lit(true),
            1 => exprs.into_iter().next().unwrap(),
            _ => Expr::And(exprs),
        }
    }

    pub fn or(exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::lit(false),
            1 => exprs.into_iter().next().unwrap(),
            _ => Expr::Or(exprs),
        }
    }

    // An `Expr -> Expr` constructor, not a `&self` negation — `ops::Not`
    // does not fit.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    pub fn between(expr: Expr, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(expr),
            low: Box::new(low),
            high: Box::new(high),
        }
    }

    pub fn in_list(expr: Expr, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(expr),
            list,
            negated: false,
        }
    }

    /// True when the expression contains no column references or params —
    /// i.e. it folds to a constant.
    pub fn is_constant(&self) -> bool {
        self.is_constant_given_params(false)
    }

    /// Like [`Expr::is_constant`], but optionally treat parameters as bound
    /// (they are, at run time).
    pub fn is_constant_given_params(&self, params_bound: bool) -> bool {
        match self {
            Expr::Col(_) => false,
            Expr::Lit(_) => true,
            Expr::Param(_) => params_bound,
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.is_constant_given_params(params_bound)
                    && right.is_constant_given_params(params_bound)
            }
            Expr::And(v) | Expr::Or(v) => {
                v.iter().all(|e| e.is_constant_given_params(params_bound))
            }
            Expr::Not(e) | Expr::IsNull(e) => e.is_constant_given_params(params_bound),
            Expr::Between { expr, low, high } => {
                expr.is_constant_given_params(params_bound)
                    && low.is_constant_given_params(params_bound)
                    && high.is_constant_given_params(params_bound)
            }
            Expr::InList { expr, list, .. } => {
                expr.is_constant_given_params(params_bound)
                    && list
                        .iter()
                        .all(|e| e.is_constant_given_params(params_bound))
            }
        }
    }

    /// Visit every sub-expression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Col(_) | Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.visit(f);
                }
            }
            Expr::Not(e) | Expr::IsNull(e) => e.visit(f),
            Expr::Between { expr, low, high } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
        }
    }

    /// Rebuild the expression, transforming leaves bottom-up.
    pub fn transform(&self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Col(_) | Expr::Lit(_) | Expr::Param(_) => self.clone(),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::And(v) => Expr::And(v.iter().map(|e| e.transform(f)).collect()),
            Expr::Or(v) => Expr::Or(v.iter().map(|e| e.transform(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.transform(f))),
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
        };
        f(rebuilt)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(d) => write!(f, "{d}"),
            Expr::Param(n) => write!(f, "${n}"),
            Expr::Cmp { op, left, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::And(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::Arith { op, left, right } => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                    ArithOp::Mod => "%",
                };
                write!(f, "({left} {sym} {right})")
            }
            Expr::Between { expr, low, high } => {
                write!(f, "{expr} BETWEEN {low} AND {high}")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    #[test]
    fn builders_collapse_trivial_connectives() {
        assert_eq!(Expr::and(vec![]), Expr::lit(true));
        assert_eq!(Expr::or(vec![]), Expr::lit(false));
        let e = Expr::eq(Expr::col(c(1, "a")), Expr::lit(5i32));
        assert_eq!(Expr::and(vec![e.clone()]), e);
    }

    #[test]
    fn flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn is_constant() {
        assert!(Expr::lit(1i32).is_constant());
        assert!(!Expr::col(c(1, "a")).is_constant());
        assert!(!Expr::Param(1).is_constant());
        assert!(Expr::Param(1).is_constant_given_params(true));
        let e = Expr::between(Expr::lit(1i32), Expr::lit(0i32), Expr::Param(1));
        assert!(!e.is_constant());
        assert!(e.is_constant_given_params(true));
    }

    #[test]
    fn display_readable() {
        let e = Expr::and(vec![
            Expr::ge(Expr::col(c(1, "month")), Expr::lit(10i32)),
            Expr::le(Expr::col(c(1, "month")), Expr::lit(12i32)),
        ]);
        assert_eq!(e.to_string(), "((month#1 >= 10) AND (month#1 <= 12))");
    }

    #[test]
    fn visit_counts_nodes() {
        let e = Expr::between(
            Expr::col(c(1, "a")),
            Expr::lit(1i32),
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(Expr::lit(2i32)),
                right: Box::new(Expr::lit(3i32)),
            },
        );
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6);
    }

    #[test]
    fn transform_replaces_params() {
        let e = Expr::eq(Expr::col(c(1, "a")), Expr::Param(1));
        let bound = e.transform(&|x| match x {
            Expr::Param(1) => Expr::lit(42i32),
            other => other,
        });
        assert_eq!(bound, Expr::eq(Expr::col(c(1, "a")), Expr::lit(42i32)));
    }
}
