//! Expression evaluation with SQL three-valued logic.

use crate::ast::{CmpOp, Expr};
use crate::colref::ColRef;
use mpp_common::{Datum, Error, Result, Row};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Binds column identities to positions in a row, and parameters to values.
#[derive(Debug, Default, Clone)]
pub struct EvalContext<'a> {
    /// ColRef id → index into the row.
    positions: HashMap<u32, usize>,
    /// Prepared-statement parameter values, 1-based (`params[0]` is `$1`).
    params: &'a [Datum],
}

impl<'a> EvalContext<'a> {
    pub fn new() -> EvalContext<'a> {
        EvalContext {
            positions: HashMap::new(),
            params: &[],
        }
    }

    /// Build a context from the output column list of an operator: the i-th
    /// colref maps to position i.
    pub fn from_columns(cols: &[ColRef]) -> EvalContext<'a> {
        let positions = cols.iter().enumerate().map(|(i, c)| (c.id, i)).collect();
        EvalContext {
            positions,
            params: &[],
        }
    }

    pub fn with_params(mut self, params: &'a [Datum]) -> EvalContext<'a> {
        self.params = params;
        self
    }

    pub fn bind(&mut self, col: &ColRef, pos: usize) {
        self.positions.insert(col.id, pos);
    }

    pub fn position_of(&self, col: &ColRef) -> Result<usize> {
        self.positions
            .get(&col.id)
            .copied()
            .ok_or_else(|| Error::Execution(format!("unbound column {col}")))
    }

    pub fn param(&self, n: u32) -> Result<&Datum> {
        if n == 0 {
            return Err(Error::Execution("parameter numbers are 1-based".into()));
        }
        self.params
            .get((n - 1) as usize)
            .ok_or_else(|| Error::Execution(format!("unbound parameter ${n}")))
    }
}

/// Evaluate an expression against a row. Boolean-valued expressions use
/// three-valued logic: `Datum::Null` encodes `unknown`.
pub fn eval(expr: &Expr, row: &Row, ctx: &EvalContext<'_>) -> Result<Datum> {
    match expr {
        Expr::Col(c) => {
            let pos = ctx.position_of(c)?;
            row.get(pos)
                .cloned()
                .ok_or_else(|| Error::Execution(format!("row too short for {c} at {pos}")))
        }
        Expr::Lit(d) => Ok(d.clone()),
        Expr::Param(n) => Ok(ctx.param(*n)?.clone()),
        Expr::Cmp { op, left, right } => {
            let l = eval(left, row, ctx)?;
            let r = eval(right, row, ctx)?;
            Ok(match l.sql_cmp(&r)? {
                None => Datum::Null,
                Some(ord) => Datum::Bool(cmp_holds(*op, ord)),
            })
        }
        Expr::And(exprs) => {
            // 3VL AND: false dominates, then unknown.
            let mut saw_null = false;
            for e in exprs {
                match eval(e, row, ctx)?.as_bool()? {
                    Some(false) => return Ok(Datum::Bool(false)),
                    Some(true) => {}
                    None => saw_null = true,
                }
            }
            Ok(if saw_null {
                Datum::Null
            } else {
                Datum::Bool(true)
            })
        }
        Expr::Or(exprs) => {
            let mut saw_null = false;
            for e in exprs {
                match eval(e, row, ctx)?.as_bool()? {
                    Some(true) => return Ok(Datum::Bool(true)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(if saw_null {
                Datum::Null
            } else {
                Datum::Bool(false)
            })
        }
        Expr::Not(e) => Ok(match eval(e, row, ctx)?.as_bool()? {
            None => Datum::Null,
            Some(b) => Datum::Bool(!b),
        }),
        Expr::IsNull(e) => Ok(Datum::Bool(eval(e, row, ctx)?.is_null())),
        Expr::Arith { op, left, right } => {
            let l = eval(left, row, ctx)?;
            let r = eval(right, row, ctx)?;
            l.arith(*op, &r)
        }
        Expr::Between { expr, low, high } => {
            let v = eval(expr, row, ctx)?;
            let lo = eval(low, row, ctx)?;
            let hi = eval(high, row, ctx)?;
            let ge_low = v.sql_cmp(&lo)?.map(|ord| ord != Ordering::Less);
            let le_high = v.sql_cmp(&hi)?.map(|ord| ord != Ordering::Greater);
            Ok(match (ge_low, le_high) {
                (Some(false), _) | (_, Some(false)) => Datum::Bool(false),
                (Some(true), Some(true)) => Datum::Bool(true),
                _ => Datum::Null,
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            // All-literal lists (the common case) compare by reference with
            // no recursion — same walk the compiled form uses as fallback.
            if let Some(d) = crate::compile::in_list_literals(&v, list, *negated)? {
                return Ok(d);
            }
            let mut saw_null = false;
            let mut found = false;
            for item in list {
                let iv = eval(item, row, ctx)?;
                match v.sql_cmp(&iv)? {
                    None => saw_null = true,
                    Some(Ordering::Equal) => {
                        found = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            Ok(if found {
                Datum::Bool(!negated)
            } else if saw_null {
                Datum::Null
            } else {
                Datum::Bool(*negated)
            })
        }
    }
}

pub(crate) fn cmp_holds(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Evaluate a predicate as a filter condition: `unknown` counts as not
/// passing, per SQL WHERE semantics.
pub fn eval_predicate(expr: &Expr, row: &Row, ctx: &EvalContext<'_>) -> Result<bool> {
    Ok(eval(expr, row, ctx)?.as_bool()?.unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::row;

    fn ctx2() -> EvalContext<'static> {
        EvalContext::from_columns(&[ColRef::new(1, "a"), ColRef::new(2, "b")])
    }

    fn col(id: u32) -> Expr {
        Expr::col(ColRef::new(id, "c"))
    }

    #[test]
    fn comparison_and_nulls() {
        let ctx = ctx2();
        let r = row![5i32, 10i32];
        let e = Expr::lt(col(1), col(2));
        assert_eq!(eval(&e, &r, &ctx).unwrap(), Datum::Bool(true));
        let rn = Row::new(vec![Datum::Null, Datum::Int32(10)]);
        assert_eq!(eval(&e, &rn, &ctx).unwrap(), Datum::Null);
        assert!(!eval_predicate(&e, &rn, &ctx).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let ctx = ctx2();
        let rn = Row::new(vec![Datum::Null, Datum::Int32(10)]);
        // null AND false = false
        let e = Expr::and(vec![
            Expr::eq(col(1), Expr::lit(1i32)),
            Expr::eq(col(2), Expr::lit(0i32)),
        ]);
        assert_eq!(eval(&e, &rn, &ctx).unwrap(), Datum::Bool(false));
        // null OR true = true
        let e = Expr::or(vec![
            Expr::eq(col(1), Expr::lit(1i32)),
            Expr::eq(col(2), Expr::lit(10i32)),
        ]);
        assert_eq!(eval(&e, &rn, &ctx).unwrap(), Datum::Bool(true));
        // null AND true = null
        let e = Expr::and(vec![
            Expr::eq(col(1), Expr::lit(1i32)),
            Expr::eq(col(2), Expr::lit(10i32)),
        ]);
        assert_eq!(eval(&e, &rn, &ctx).unwrap(), Datum::Null);
    }

    #[test]
    fn between_evaluation() {
        let ctx = ctx2();
        let e = Expr::between(col(1), Expr::lit(1i32), Expr::lit(9i32));
        assert_eq!(
            eval(&e, &row![5i32, 0i32], &ctx).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(
            eval(&e, &row![10i32, 0i32], &ctx).unwrap(),
            Datum::Bool(false)
        );
        // NULL BETWEEN 1 AND 9 = unknown
        assert_eq!(
            eval(&e, &Row::new(vec![Datum::Null, Datum::Int32(0)]), &ctx).unwrap(),
            Datum::Null
        );
    }

    #[test]
    fn in_list_with_nulls() {
        let ctx = ctx2();
        let e = Expr::in_list(col(1), vec![Expr::lit(1i32), Expr::Lit(Datum::Null)]);
        assert_eq!(
            eval(&e, &row![1i32, 0i32], &ctx).unwrap(),
            Datum::Bool(true)
        );
        // 2 IN (1, NULL) = unknown
        assert_eq!(eval(&e, &row![2i32, 0i32], &ctx).unwrap(), Datum::Null);
    }

    #[test]
    fn params_bind() {
        let params = vec![Datum::Int32(7)];
        let ctx = ctx2().with_params(&params);
        let e = Expr::eq(col(1), Expr::Param(1));
        assert_eq!(
            eval(&e, &row![7i32, 0i32], &ctx).unwrap(),
            Datum::Bool(true)
        );
        assert!(eval(&Expr::Param(2), &row![7i32, 0i32], &ctx).is_err());
    }

    #[test]
    fn is_null_and_not() {
        let ctx = ctx2();
        let rn = Row::new(vec![Datum::Null, Datum::Int32(10)]);
        assert_eq!(
            eval(&Expr::IsNull(Box::new(col(1))), &rn, &ctx).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(
            eval(&Expr::not(Expr::IsNull(Box::new(col(1)))), &rn, &ctx).unwrap(),
            Datum::Bool(false)
        );
    }

    #[test]
    fn unbound_column_is_error() {
        let ctx = ctx2();
        assert!(eval(&col(99), &row![1i32, 2i32], &ctx).is_err());
    }
}
