//! # mpp-expr
//!
//! Scalar expressions and the analysis machinery the partitioned-table
//! optimizer is built on:
//!
//! * [`Expr`] — the expression AST (comparisons, boolean connectives,
//!   arithmetic, `BETWEEN`, `IN`, prepared-statement parameters),
//! * [`eval()`] — SQL three-valued-logic evaluation,
//! * [`interval`] — interval sets over [`mpp_common::Datum`], the
//!   representation of partition check constraints
//!   (`pk ∈ ∪ᵢ(aᵢ, bᵢ)`, paper §3.2),
//! * [`analysis`] — deriving interval sets from predicates (the heart of
//!   the partition-selection function `f*_T`, paper §2.1) plus the
//!   predicate utilities the placement algorithms use (`FindPredOnKey`,
//!   `Conj`, conjunct splitting, column collection and remapping),
//! * [`simplify()`] — constant folding and boolean normalization.
//! * [`compile()`] — the prepared-evaluation layer: lowers an expression
//!   against a fixed context into a [`CompiledExpr`] with columns resolved
//!   to row offsets, params/constants folded, and fast paths for the hot
//!   predicate shapes. Compile once per slice, evaluate per row.

pub mod analysis;
pub mod ast;
pub mod batch;
pub mod colref;
pub mod compile;
pub mod eval;
pub mod interval;
pub mod simplify;

pub use analysis::{
    collect_columns, conj, derive_interval_set, find_pred_on_key, references_only, split_conjuncts,
    substitute_columns, DerivedSet,
};
pub use ast::{CmpOp, Expr};
pub use colref::{ColRef, ColRefGenerator};
pub use compile::{compile, CompiledExpr, ConstSet, TypeClass};
pub use eval::{eval, eval_predicate, EvalContext};
pub use interval::{Interval, IntervalSet};
pub use simplify::simplify;
