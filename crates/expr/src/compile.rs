//! Compile-once, evaluate-per-row expressions.
//!
//! [`eval()`](crate::eval()) is the reference interpreter: it resolves every
//! column through the [`EvalContext`] `HashMap` per row, recurses through
//! boxed [`Expr`] nodes and clones a [`Datum`] at every step. That is fine
//! at plan time (partition selection, constant folding) but it is the inner
//! loop of every Filter/Join/Agg at run time. [`compile()`] lowers an
//! `Expr` + `EvalContext` into a [`CompiledExpr`] once per slice execution:
//!
//! * column references become direct row offsets (no per-row map lookup),
//! * prepared-statement parameters and constant subtrees are folded at
//!   prepare time,
//! * the dominant predicate shapes get dedicated fast paths that evaluate
//!   by reference without cloning: `col OP const`, `col BETWEEN const AND
//!   const`, and `col IN (const, …)` via a hash set ([`ConstSet`]) instead
//!   of a linear list walk.
//!
//! Compilation is **infallible** and **semantics-preserving**: whatever the
//! interpreter returns for (expr, row, ctx) — value or error, in the same
//! evaluation order — the compiled form returns too. That forces three
//! rules, each of which matches a short-circuit in the interpreter:
//!
//! 1. Unbound columns/parameters compile to error-*at-eval* nodes, not
//!    compile errors: `false AND $99` must still evaluate to `false`.
//! 2. A constant subtree is replaced by its value only when evaluation
//!    *succeeds*; erroring subtrees (`1/0`) stay unfolded so the error
//!    surfaces exactly where the interpreter would raise it.
//! 3. The `IN` hash set is only used for non-null, all-literal lists of a
//!    single comparability class; anything else keeps the ordered walk,
//!    whose error/NULL behaviour is position-dependent.

use crate::ast::{CmpOp, Expr};
use crate::colref::ColRef;
use crate::eval::{cmp_holds, EvalContext};
use mpp_common::value::ArithOp;
use mpp_common::{Datum, Error, Result, Row};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashSet;

/// Comparability class of a non-null [`Datum`]: SQL comparison
/// ([`Datum::sql_cmp`]) succeeds exactly between values of the same class
/// (numerics coerce through `DataType::common_super_type`; dates count as
/// numeric there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    Numeric,
    Text,
    Bool,
}

impl TypeClass {
    /// `None` for NULL, which belongs to no class.
    pub fn of(v: &Datum) -> Option<TypeClass> {
        match v {
            Datum::Null => None,
            Datum::Bool(_) => Some(TypeClass::Bool),
            Datum::Int32(_) | Datum::Int64(_) | Datum::Float64(_) | Datum::Date(_) => {
                Some(TypeClass::Numeric)
            }
            Datum::Str(_) => Some(TypeClass::Text),
        }
    }
}

/// A prepared `IN`-list: non-null literals of one comparability class,
/// probed through a hash set. `Datum`'s `Hash` is normalized across the
/// numeric types (`distribution_hash`), so set membership agrees with
/// `sql_cmp` equality within a class.
#[derive(Debug, Clone)]
pub struct ConstSet {
    set: HashSet<Datum>,
    class: TypeClass,
    /// A representative list element, used to reproduce the interpreter's
    /// comparison error for probes outside `class`.
    witness: Datum,
    negated: bool,
}

impl ConstSet {
    /// Build from literal list values; `None` when the list is empty,
    /// contains NULL, or spans more than one comparability class (those
    /// keep the ordered walk).
    pub fn try_new(values: &[Datum], negated: bool) -> Option<ConstSet> {
        let witness = values.first()?.clone();
        let class = TypeClass::of(&witness)?;
        let mut set = HashSet::with_capacity(values.len());
        for v in values {
            if TypeClass::of(v) != Some(class) {
                return None;
            }
            set.insert(v.clone());
        }
        Some(ConstSet {
            set,
            class,
            witness,
            negated,
        })
    }

    /// `probe IN set` under SQL semantics: NULL probe → NULL, class
    /// mismatch → the same comparison error the interpreted walk raises.
    pub fn probe(&self, v: &Datum) -> Result<Datum> {
        match TypeClass::of(v) {
            None => Ok(Datum::Null),
            Some(c) if c == self.class => Ok(Datum::Bool(self.set.contains(v) != self.negated)),
            Some(_) => {
                // Cross-class probes cannot compare; the interpreter errors
                // on the first list element.
                v.sql_cmp(&self.witness)?;
                Err(Error::TypeMismatch(format!(
                    "cannot probe {v:?} against IN-list of different type"
                )))
            }
        }
    }
}

/// An [`Expr`] lowered against a fixed [`EvalContext`]: columns are row
/// offsets, parameters and constant subtrees are [`CompiledExpr::Const`],
/// and the hot predicate shapes have dedicated variants.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    Const(Datum),
    /// Bound column: direct row offset. The [`ColRef`] is kept for error
    /// messages only.
    Col {
        pos: usize,
        col: ColRef,
    },
    /// Column the context could not resolve: errors when (and only when)
    /// evaluated, like the interpreter.
    UnboundCol(ColRef),
    /// Parameter with no binding (or `$0`): errors when evaluated.
    UnboundParam(u32),
    /// Fast path: `col OP const`, compared by reference.
    CmpColConst {
        op: CmpOp,
        pos: usize,
        col: ColRef,
        val: Datum,
    },
    Cmp {
        op: CmpOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    And(Vec<CompiledExpr>),
    Or(Vec<CompiledExpr>),
    Not(Box<CompiledExpr>),
    IsNull(Box<CompiledExpr>),
    Arith {
        op: ArithOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    /// Fast path: `col BETWEEN const AND const`, compared by reference.
    BetweenColConst {
        pos: usize,
        col: ColRef,
        low: Datum,
        high: Datum,
    },
    Between {
        expr: Box<CompiledExpr>,
        low: Box<CompiledExpr>,
        high: Box<CompiledExpr>,
    },
    /// Fast path: `input [NOT] IN (const, …)` through a hash set.
    InConstSet {
        input: Box<CompiledExpr>,
        set: ConstSet,
    },
    InList {
        expr: Box<CompiledExpr>,
        list: Vec<CompiledExpr>,
        negated: bool,
    },
}

/// Lower `expr` against `ctx`. Infallible: resolution failures become
/// error-at-eval nodes so short-circuit semantics survive compilation.
pub fn compile(expr: &Expr, ctx: &EvalContext<'_>) -> CompiledExpr {
    match expr {
        Expr::Col(c) => match ctx.position_of(c) {
            Ok(pos) => CompiledExpr::Col {
                pos,
                col: c.clone(),
            },
            Err(_) => CompiledExpr::UnboundCol(c.clone()),
        },
        Expr::Lit(d) => CompiledExpr::Const(d.clone()),
        Expr::Param(n) => match ctx.param(*n) {
            Ok(v) => CompiledExpr::Const(v.clone()),
            Err(_) => CompiledExpr::UnboundParam(*n),
        },
        Expr::Cmp { op, left, right } => {
            let left = compile(left, ctx);
            let right = compile(right, ctx);
            // Only the col-op-const orientation is specialized: flipping
            // const-op-col would swap the operands of `sql_cmp` and change
            // error messages.
            fold(match (left, right) {
                (CompiledExpr::Col { pos, col }, CompiledExpr::Const(val)) => {
                    CompiledExpr::CmpColConst {
                        op: *op,
                        pos,
                        col,
                        val,
                    }
                }
                (left, right) => CompiledExpr::Cmp {
                    op: *op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            })
        }
        Expr::And(exprs) => fold(CompiledExpr::And(
            exprs.iter().map(|e| compile(e, ctx)).collect(),
        )),
        Expr::Or(exprs) => fold(CompiledExpr::Or(
            exprs.iter().map(|e| compile(e, ctx)).collect(),
        )),
        Expr::Not(e) => fold(CompiledExpr::Not(Box::new(compile(e, ctx)))),
        Expr::IsNull(e) => fold(CompiledExpr::IsNull(Box::new(compile(e, ctx)))),
        Expr::Arith { op, left, right } => fold(CompiledExpr::Arith {
            op: *op,
            left: Box::new(compile(left, ctx)),
            right: Box::new(compile(right, ctx)),
        }),
        Expr::Between { expr, low, high } => {
            let expr = compile(expr, ctx);
            let low = compile(low, ctx);
            let high = compile(high, ctx);
            fold(match (expr, low, high) {
                (
                    CompiledExpr::Col { pos, col },
                    CompiledExpr::Const(low),
                    CompiledExpr::Const(high),
                ) => CompiledExpr::BetweenColConst {
                    pos,
                    col,
                    low,
                    high,
                },
                (expr, low, high) => CompiledExpr::Between {
                    expr: Box::new(expr),
                    low: Box::new(low),
                    high: Box::new(high),
                },
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let input = compile(expr, ctx);
            let list: Vec<CompiledExpr> = list.iter().map(|e| compile(e, ctx)).collect();
            let values: Option<Vec<Datum>> = list
                .iter()
                .map(|e| match e {
                    CompiledExpr::Const(d) => Some(d.clone()),
                    _ => None,
                })
                .collect();
            fold(
                match values.and_then(|vs| ConstSet::try_new(&vs, *negated)) {
                    Some(set) => CompiledExpr::InConstSet {
                        input: Box::new(input),
                        set,
                    },
                    None => CompiledExpr::InList {
                        expr: Box::new(input),
                        list,
                        negated: *negated,
                    },
                },
            )
        }
    }
}

/// Replace an all-constant node by its value — but only when evaluation
/// succeeds. Erroring constants (`1/0`) stay unfolded so the error keeps
/// its place in the evaluation order.
fn fold(node: CompiledExpr) -> CompiledExpr {
    if !node.is_const() {
        return node;
    }
    match node.eval(&Row::new(Vec::new())) {
        Ok(d) => CompiledExpr::Const(d),
        Err(_) => node,
    }
}

impl CompiledExpr {
    /// Row-independent? Children are already folded, so one level of
    /// `Const` checks suffices.
    fn is_const(&self) -> bool {
        use CompiledExpr::*;
        let c = |e: &CompiledExpr| matches!(e, Const(_));
        match self {
            Const(_) => true,
            Col { .. }
            | UnboundCol(_)
            | UnboundParam(_)
            | CmpColConst { .. }
            | BetweenColConst { .. } => false,
            Cmp { left, right, .. } | Arith { left, right, .. } => c(left) && c(right),
            And(es) | Or(es) => es.iter().all(c),
            Not(e) | IsNull(e) => c(e),
            Between { expr, low, high } => c(expr) && c(low) && c(high),
            InConstSet { input, .. } => c(input),
            InList { expr, list, .. } => c(expr) && list.iter().all(c),
        }
    }

    /// Does this tree reference any bindable (`$1`-based) parameter?
    /// Templates without parameters evaluate identically under every
    /// binding, so a caller caching compiled forms can share them as-is;
    /// `UnboundParam(0)` errors regardless of bindings and does not count.
    pub fn has_params(&self) -> bool {
        use CompiledExpr::*;
        match self {
            UnboundParam(n) => *n >= 1,
            Const(_) | Col { .. } | UnboundCol(_) | CmpColConst { .. } | BetweenColConst { .. } => {
                false
            }
            Cmp { left, right, .. } | Arith { left, right, .. } => {
                left.has_params() || right.has_params()
            }
            And(es) | Or(es) => es.iter().any(|e| e.has_params()),
            Not(e) | IsNull(e) => e.has_params(),
            Between { expr, low, high } => {
                expr.has_params() || low.has_params() || high.has_params()
            }
            InConstSet { input, .. } => input.has_params(),
            InList { expr, list, .. } => expr.has_params() || list.iter().any(|e| e.has_params()),
        }
    }

    /// Bind prepared-statement parameters into a *template* — a tree
    /// compiled against a context **without** parameter values, so every
    /// `$n` lowered to [`CompiledExpr::UnboundParam`]. Substituting the
    /// bindings re-enables exactly the specializations [`compile`] would
    /// have applied had the parameters been known at compile time
    /// (col-op-const, BETWEEN, `IN` hash sets, constant folding), so
    /// `compile(e, ctx_without_params).bind_params(p)` evaluates
    /// identically to `compile(e, ctx.with_params(p))` — values and
    /// errors alike. Parameters outside `params` (and the invalid `$0`)
    /// stay unbound and keep their error-at-eval behaviour.
    pub fn bind_params(&self, params: &[Datum]) -> CompiledExpr {
        match self {
            CompiledExpr::UnboundParam(n) if *n >= 1 && (*n as usize) <= params.len() => {
                CompiledExpr::Const(params[*n as usize - 1].clone())
            }
            CompiledExpr::Const(_)
            | CompiledExpr::Col { .. }
            | CompiledExpr::UnboundCol(_)
            | CompiledExpr::UnboundParam(_)
            | CompiledExpr::CmpColConst { .. }
            | CompiledExpr::BetweenColConst { .. } => self.clone(),
            CompiledExpr::Cmp { op, left, right } => {
                let left = left.bind_params(params);
                let right = right.bind_params(params);
                fold(match (left, right) {
                    (CompiledExpr::Col { pos, col }, CompiledExpr::Const(val)) => {
                        CompiledExpr::CmpColConst {
                            op: *op,
                            pos,
                            col,
                            val,
                        }
                    }
                    (left, right) => CompiledExpr::Cmp {
                        op: *op,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                })
            }
            CompiledExpr::And(es) => fold(CompiledExpr::And(
                es.iter().map(|e| e.bind_params(params)).collect(),
            )),
            CompiledExpr::Or(es) => fold(CompiledExpr::Or(
                es.iter().map(|e| e.bind_params(params)).collect(),
            )),
            CompiledExpr::Not(e) => fold(CompiledExpr::Not(Box::new(e.bind_params(params)))),
            CompiledExpr::IsNull(e) => fold(CompiledExpr::IsNull(Box::new(e.bind_params(params)))),
            CompiledExpr::Arith { op, left, right } => fold(CompiledExpr::Arith {
                op: *op,
                left: Box::new(left.bind_params(params)),
                right: Box::new(right.bind_params(params)),
            }),
            CompiledExpr::Between { expr, low, high } => {
                let expr = expr.bind_params(params);
                let low = low.bind_params(params);
                let high = high.bind_params(params);
                fold(match (expr, low, high) {
                    (
                        CompiledExpr::Col { pos, col },
                        CompiledExpr::Const(low),
                        CompiledExpr::Const(high),
                    ) => CompiledExpr::BetweenColConst {
                        pos,
                        col,
                        low,
                        high,
                    },
                    (expr, low, high) => CompiledExpr::Between {
                        expr: Box::new(expr),
                        low: Box::new(low),
                        high: Box::new(high),
                    },
                })
            }
            CompiledExpr::InConstSet { input, set } => fold(CompiledExpr::InConstSet {
                input: Box::new(input.bind_params(params)),
                set: set.clone(),
            }),
            CompiledExpr::InList {
                expr,
                list,
                negated,
            } => {
                let input = expr.bind_params(params);
                let list: Vec<CompiledExpr> = list.iter().map(|e| e.bind_params(params)).collect();
                let values: Option<Vec<Datum>> = list
                    .iter()
                    .map(|e| match e {
                        CompiledExpr::Const(d) => Some(d.clone()),
                        _ => None,
                    })
                    .collect();
                fold(
                    match values.and_then(|vs| ConstSet::try_new(&vs, *negated)) {
                        Some(set) => CompiledExpr::InConstSet {
                            input: Box::new(input),
                            set,
                        },
                        None => CompiledExpr::InList {
                            expr: Box::new(input),
                            list,
                            negated: *negated,
                        },
                    },
                )
            }
        }
    }

    /// Evaluate against a row. Mirrors [`crate::eval()`] exactly, including
    /// three-valued logic, short circuits and evaluation-order-dependent
    /// errors.
    pub fn eval(&self, row: &Row) -> Result<Datum> {
        Ok(self.eval_cow(row)?.into_owned())
    }

    /// Evaluate as a WHERE condition: `unknown` does not pass.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(self.eval_cow(row)?.as_bool()?.unwrap_or(false))
    }

    fn eval_cow<'a>(&'a self, row: &'a Row) -> Result<Cow<'a, Datum>> {
        match self {
            CompiledExpr::Const(d) => Ok(Cow::Borrowed(d)),
            CompiledExpr::Col { pos, col } => row
                .get(*pos)
                .map(Cow::Borrowed)
                .ok_or_else(|| Error::Execution(format!("row too short for {col} at {pos}"))),
            CompiledExpr::UnboundCol(c) => Err(Error::Execution(format!("unbound column {c}"))),
            CompiledExpr::UnboundParam(0) => {
                Err(Error::Execution("parameter numbers are 1-based".into()))
            }
            CompiledExpr::UnboundParam(n) => {
                Err(Error::Execution(format!("unbound parameter ${n}")))
            }
            CompiledExpr::CmpColConst { op, pos, col, val } => {
                let v = row
                    .get(*pos)
                    .ok_or_else(|| Error::Execution(format!("row too short for {col} at {pos}")))?;
                Ok(Cow::Owned(match v.sql_cmp(val)? {
                    None => Datum::Null,
                    Some(ord) => Datum::Bool(cmp_holds(*op, ord)),
                }))
            }
            CompiledExpr::Cmp { op, left, right } => {
                let l = left.eval_cow(row)?;
                let r = right.eval_cow(row)?;
                Ok(Cow::Owned(match l.sql_cmp(&r)? {
                    None => Datum::Null,
                    Some(ord) => Datum::Bool(cmp_holds(*op, ord)),
                }))
            }
            CompiledExpr::And(exprs) => {
                let mut saw_null = false;
                for e in exprs {
                    match e.eval_cow(row)?.as_bool()? {
                        Some(false) => return Ok(Cow::Owned(Datum::Bool(false))),
                        Some(true) => {}
                        None => saw_null = true,
                    }
                }
                Ok(Cow::Owned(if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(true)
                }))
            }
            CompiledExpr::Or(exprs) => {
                let mut saw_null = false;
                for e in exprs {
                    match e.eval_cow(row)?.as_bool()? {
                        Some(true) => return Ok(Cow::Owned(Datum::Bool(true))),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(Cow::Owned(if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(false)
                }))
            }
            CompiledExpr::Not(e) => Ok(Cow::Owned(match e.eval_cow(row)?.as_bool()? {
                None => Datum::Null,
                Some(b) => Datum::Bool(!b),
            })),
            CompiledExpr::IsNull(e) => Ok(Cow::Owned(Datum::Bool(e.eval_cow(row)?.is_null()))),
            CompiledExpr::Arith { op, left, right } => {
                let l = left.eval_cow(row)?;
                let r = right.eval_cow(row)?;
                Ok(Cow::Owned(l.arith(*op, &r)?))
            }
            CompiledExpr::BetweenColConst {
                pos,
                col,
                low,
                high,
            } => {
                let v = row
                    .get(*pos)
                    .ok_or_else(|| Error::Execution(format!("row too short for {col} at {pos}")))?;
                Ok(Cow::Owned(between_result(v, low, high)?))
            }
            CompiledExpr::Between { expr, low, high } => {
                let v = expr.eval_cow(row)?;
                let lo = low.eval_cow(row)?;
                let hi = high.eval_cow(row)?;
                Ok(Cow::Owned(between_result(&v, &lo, &hi)?))
            }
            CompiledExpr::InConstSet { input, set } => {
                let v = input.eval_cow(row)?;
                Ok(Cow::Owned(set.probe(&v)?))
            }
            CompiledExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_cow(row)?;
                let mut saw_null = false;
                let mut found = false;
                for item in list {
                    let iv = item.eval_cow(row)?;
                    match v.sql_cmp(&iv)? {
                        None => saw_null = true,
                        Some(Ordering::Equal) => {
                            found = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                Ok(Cow::Owned(if found {
                    Datum::Bool(!negated)
                } else if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(*negated)
                }))
            }
        }
    }
}

/// Shared BETWEEN combination: `v >= low AND v <= high` under 3VL.
pub(crate) fn between_result(v: &Datum, low: &Datum, high: &Datum) -> Result<Datum> {
    let ge_low = v.sql_cmp(low)?.map(|ord| ord != Ordering::Less);
    let le_high = v.sql_cmp(high)?.map(|ord| ord != Ordering::Greater);
    Ok(match (ge_low, le_high) {
        (Some(false), _) | (_, Some(false)) => Datum::Bool(false),
        (Some(true), Some(true)) => Datum::Bool(true),
        _ => Datum::Null,
    })
}

/// One-shot `v IN list` over an all-literal list, shared with the
/// interpreter ([`crate::eval()`]): same ordered-walk semantics (lazy
/// errors, positional NULL handling) but compares by reference with no
/// recursion or cloning. Returns `None` when any element is not a literal,
/// telling the caller to take the general path.
pub(crate) fn in_list_literals(v: &Datum, list: &[Expr], negated: bool) -> Result<Option<Datum>> {
    let mut saw_null = false;
    let mut found = false;
    for item in list {
        let Expr::Lit(iv) = item else {
            return Ok(None);
        };
        match v.sql_cmp(iv)? {
            None => saw_null = true,
            Some(Ordering::Equal) => {
                found = true;
                break;
            }
            Some(_) => {}
        }
    }
    Ok(Some(if found {
        Datum::Bool(!negated)
    } else if saw_null {
        Datum::Null
    } else {
        Datum::Bool(negated)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::row;

    fn ctx2() -> EvalContext<'static> {
        EvalContext::from_columns(&[ColRef::new(1, "a"), ColRef::new(2, "b")])
    }

    fn col(id: u32) -> Expr {
        Expr::col(ColRef::new(id, "c"))
    }

    #[test]
    fn col_refs_become_offsets() {
        let c = compile(&Expr::lt(col(1), col(2)), &ctx2());
        assert!(matches!(c, CompiledExpr::Cmp { op: CmpOp::Lt, .. }));
        assert_eq!(c.eval(&row![5i32, 10i32]).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn col_op_const_fast_path() {
        let c = compile(&Expr::lt(col(1), Expr::lit(7i32)), &ctx2());
        assert!(matches!(c, CompiledExpr::CmpColConst { .. }));
        assert_eq!(c.eval(&row![5i32, 0i32]).unwrap(), Datum::Bool(true));
        assert_eq!(c.eval(&row![9i32, 0i32]).unwrap(), Datum::Bool(false));
        assert_eq!(
            c.eval(&Row::new(vec![Datum::Null, Datum::Int32(0)]))
                .unwrap(),
            Datum::Null
        );
    }

    #[test]
    fn params_fold_to_consts() {
        let params = vec![Datum::Int32(7)];
        let ctx = ctx2().with_params(&params);
        let c = compile(&Expr::eq(col(1), Expr::Param(1)), &ctx);
        assert!(matches!(c, CompiledExpr::CmpColConst { .. }));
        assert_eq!(c.eval(&row![7i32, 0i32]).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn constant_subtrees_fold() {
        // (1 + 2) < b   →   3 < b
        let e = Expr::lt(
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(Expr::lit(1i32)),
                right: Box::new(Expr::lit(2i32)),
            },
            col(2),
        );
        let c = compile(&e, &ctx2());
        assert!(matches!(
            &c,
            CompiledExpr::Cmp { left, .. } if matches!(**left, CompiledExpr::Const(_))
        ));
        assert_eq!(c.eval(&row![0i32, 10i32]).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn erroring_constants_stay_lazy() {
        // false AND (1/0 = 1): the interpreter short-circuits before the
        // division; folding must not hoist the error to compile time.
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::lit(1i32)),
            right: Box::new(Expr::lit(0i32)),
        };
        let e = Expr::and(vec![
            Expr::lit(false),
            Expr::eq(div.clone(), Expr::lit(1i32)),
        ]);
        let c = compile(&e, &ctx2());
        assert_eq!(c.eval(&row![0i32, 0i32]).unwrap(), Datum::Bool(false));
        // Standalone, the error still surfaces at eval.
        let c = compile(&Expr::eq(div, Expr::lit(1i32)), &ctx2());
        assert!(c.eval(&row![0i32, 0i32]).is_err());
    }

    #[test]
    fn unbound_refs_error_only_when_reached() {
        let e = Expr::and(vec![Expr::lit(false), Expr::eq(col(99), Expr::lit(1i32))]);
        let c = compile(&e, &ctx2());
        assert_eq!(c.eval(&row![0i32, 0i32]).unwrap(), Datum::Bool(false));
        let e = Expr::and(vec![Expr::eq(col(99), Expr::lit(1i32)), Expr::lit(false)]);
        let c = compile(&e, &ctx2());
        assert!(c.eval(&row![0i32, 0i32]).is_err());
        // Same for parameters.
        let e = Expr::or(vec![Expr::lit(true), Expr::eq(col(1), Expr::Param(3))]);
        let c = compile(&e, &ctx2());
        assert_eq!(c.eval(&row![0i32, 0i32]).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn in_const_set_fast_path() {
        let e = Expr::in_list(
            col(1),
            vec![Expr::lit(1i32), Expr::lit(3i32), Expr::lit(5i32)],
        );
        let c = compile(&e, &ctx2());
        assert!(matches!(c, CompiledExpr::InConstSet { .. }));
        assert_eq!(c.eval(&row![3i32, 0i32]).unwrap(), Datum::Bool(true));
        assert_eq!(c.eval(&row![4i32, 0i32]).unwrap(), Datum::Bool(false));
        // NULL probe → unknown.
        assert_eq!(
            c.eval(&Row::new(vec![Datum::Null, Datum::Int32(0)]))
                .unwrap(),
            Datum::Null
        );
        // Coerced equality: Int64 probe against Int32 literals.
        assert_eq!(
            c.eval(&Row::new(vec![Datum::Int64(5), Datum::Int32(0)]))
                .unwrap(),
            Datum::Bool(true)
        );
        // Cross-class probe errors like the interpreter.
        assert!(c
            .eval(&Row::new(vec![Datum::str("x"), Datum::Int32(0)]))
            .is_err());
    }

    #[test]
    fn in_list_with_null_keeps_ordered_walk() {
        let e = Expr::in_list(col(1), vec![Expr::lit(1i32), Expr::Lit(Datum::Null)]);
        let c = compile(&e, &ctx2());
        assert!(matches!(c, CompiledExpr::InList { .. }));
        assert_eq!(c.eval(&row![1i32, 0i32]).unwrap(), Datum::Bool(true));
        assert_eq!(c.eval(&row![2i32, 0i32]).unwrap(), Datum::Null);
    }

    #[test]
    fn between_col_const_fast_path() {
        let e = Expr::between(col(1), Expr::lit(1i32), Expr::lit(9i32));
        let c = compile(&e, &ctx2());
        assert!(matches!(c, CompiledExpr::BetweenColConst { .. }));
        assert_eq!(c.eval(&row![5i32, 0i32]).unwrap(), Datum::Bool(true));
        assert_eq!(c.eval(&row![10i32, 0i32]).unwrap(), Datum::Bool(false));
        assert_eq!(
            c.eval(&Row::new(vec![Datum::Null, Datum::Int32(0)]))
                .unwrap(),
            Datum::Null
        );
    }

    #[test]
    fn template_bind_matches_direct_compile() {
        // Every parameterized shape: template (no params at compile time)
        // + bind_params must reach the same specialized form and the same
        // results as compiling with the params in the context.
        let params = vec![Datum::Int32(7), Datum::Int32(40)];
        let shapes = vec![
            Expr::eq(col(1), Expr::Param(1)),
            Expr::between(col(1), Expr::Param(1), Expr::Param(2)),
            Expr::in_list(
                col(1),
                vec![Expr::Param(1), Expr::Param(2), Expr::lit(9i32)],
            ),
            Expr::and(vec![
                Expr::lt(col(1), Expr::Param(2)),
                Expr::gt(col(2), Expr::Param(1)),
            ]),
            // Constant subtree enabled by binding: $1 + 1.
            Expr::eq(
                col(1),
                Expr::Arith {
                    op: ArithOp::Add,
                    left: Box::new(Expr::Param(1)),
                    right: Box::new(Expr::lit(1i32)),
                },
            ),
        ];
        for e in shapes {
            let template = compile(&e, &ctx2());
            assert!(template.has_params());
            let bound = template.bind_params(&params);
            assert!(!bound.has_params());
            let direct = compile(&e, &ctx2().with_params(&params));
            for a in [0i32, 7, 8, 39, 40, 41, 9] {
                for b in [0i32, 7, 100] {
                    let r = row![a, b];
                    assert_eq!(
                        bound.eval(&r).ok(),
                        direct.eval(&r).ok(),
                        "divergence on {e:?} at ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn bind_params_respecializes_fast_paths() {
        let params = vec![Datum::Int32(7), Datum::Int32(40)];
        let t = compile(&Expr::eq(col(1), Expr::Param(1)), &ctx2());
        assert!(matches!(t, CompiledExpr::Cmp { .. }));
        assert!(matches!(
            t.bind_params(&params),
            CompiledExpr::CmpColConst { .. }
        ));
        let t = compile(
            &Expr::between(col(1), Expr::Param(1), Expr::Param(2)),
            &ctx2(),
        );
        assert!(matches!(
            t.bind_params(&params),
            CompiledExpr::BetweenColConst { .. }
        ));
        let t = compile(
            &Expr::in_list(col(1), vec![Expr::Param(1), Expr::Param(2)]),
            &ctx2(),
        );
        assert!(matches!(
            t.bind_params(&params),
            CompiledExpr::InConstSet { .. }
        ));
    }

    #[test]
    fn bind_params_leaves_out_of_range_params_unbound() {
        let t = compile(&Expr::eq(col(1), Expr::Param(5)), &ctx2());
        let bound = t.bind_params(&[Datum::Int32(1)]);
        assert!(bound.has_params());
        assert!(bound.eval(&row![1i32, 2i32]).is_err());
        // $0 never binds: its 1-based error is part of the semantics.
        let t = compile(&Expr::eq(col(1), Expr::Param(0)), &ctx2());
        assert!(!t.has_params());
        assert!(t
            .bind_params(&[Datum::Int32(1)])
            .eval(&row![1i32, 2i32])
            .is_err());
    }

    #[test]
    fn fully_constant_predicate_folds_to_const() {
        let e = Expr::and(vec![
            Expr::lt(Expr::lit(1i32), Expr::lit(2i32)),
            Expr::in_list(Expr::lit(3i32), vec![Expr::lit(3i32), Expr::lit(4i32)]),
        ]);
        let c = compile(&e, &ctx2());
        assert!(matches!(c, CompiledExpr::Const(Datum::Bool(true))));
    }
}
