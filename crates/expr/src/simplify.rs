//! Constant folding and boolean normalization.
//!
//! The optimizer runs predicates through [`simplify`] before interval
//! derivation so that e.g. `BETWEEN` with folded endpoints, nested ANDs and
//! double negations all land in the shapes `derive_interval_set` analyzes
//! exactly.

use crate::analysis::{eval_const, split_conjuncts};
use crate::ast::Expr;
use mpp_common::Datum;

/// Simplify an expression: fold constants, flatten/prune AND and OR,
/// eliminate double negation.
pub fn simplify(expr: &Expr) -> Expr {
    expr.transform(&simplify_node)
}

fn simplify_node(e: Expr) -> Expr {
    // Fold any fully constant subtree (but keep literals as they are).
    if !matches!(e, Expr::Lit(_)) && e.is_constant() {
        if let Some(v) = eval_const(&e, None) {
            return Expr::Lit(v);
        }
    }
    match e {
        Expr::And(v) => {
            let mut flat = Vec::new();
            for c in v.iter().flat_map(split_conjuncts) {
                match c {
                    Expr::Lit(Datum::Bool(true)) => {}
                    Expr::Lit(Datum::Bool(false)) => return Expr::lit(false),
                    other => {
                        if !flat.contains(&other) {
                            flat.push(other);
                        }
                    }
                }
            }
            Expr::and(flat)
        }
        Expr::Or(v) => {
            let mut flat = Vec::new();
            for c in v {
                match c {
                    Expr::Or(inner) => {
                        for x in inner {
                            if !flat.contains(&x) {
                                flat.push(x);
                            }
                        }
                    }
                    Expr::Lit(Datum::Bool(false)) => {}
                    Expr::Lit(Datum::Bool(true)) => return Expr::lit(true),
                    other => {
                        if !flat.contains(&other) {
                            flat.push(other);
                        }
                    }
                }
            }
            Expr::or(flat)
        }
        Expr::Not(inner) => match *inner {
            Expr::Not(e2) => *e2,
            Expr::Lit(Datum::Bool(b)) => Expr::lit(!b),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: op.negate(),
                left,
                right,
            },
            other => Expr::not(other),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colref::ColRef;

    fn c() -> Expr {
        Expr::col(ColRef::new(1, "a"))
    }

    #[test]
    fn folds_constant_subtrees() {
        use mpp_common::value::ArithOp;
        let e = Expr::lt(
            c(),
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(Expr::lit(10i32)),
                right: Box::new(Expr::lit(5i32)),
            },
        );
        assert_eq!(simplify(&e), Expr::lt(c(), Expr::lit(15i64)));
    }

    #[test]
    fn and_or_identities() {
        let e = Expr::And(vec![Expr::lit(true), Expr::gt(c(), Expr::lit(0i32))]);
        assert_eq!(simplify(&e), Expr::gt(c(), Expr::lit(0i32)));
        let e = Expr::And(vec![Expr::lit(false), Expr::gt(c(), Expr::lit(0i32))]);
        assert_eq!(simplify(&e), Expr::lit(false));
        let e = Expr::Or(vec![Expr::lit(true), Expr::gt(c(), Expr::lit(0i32))]);
        assert_eq!(simplify(&e), Expr::lit(true));
        let e = Expr::Or(vec![Expr::lit(false), Expr::gt(c(), Expr::lit(0i32))]);
        assert_eq!(simplify(&e), Expr::gt(c(), Expr::lit(0i32)));
    }

    #[test]
    fn flattens_nested_connectives() {
        let e = Expr::And(vec![
            Expr::And(vec![
                Expr::gt(c(), Expr::lit(0i32)),
                Expr::lt(c(), Expr::lit(9i32)),
            ]),
            Expr::gt(c(), Expr::lit(0i32)), // duplicate
        ]);
        match simplify(&e) {
            Expr::And(v) => assert_eq!(v.len(), 2),
            other => panic!("expected AND, got {other}"),
        }
    }

    #[test]
    fn double_negation_and_cmp_negation() {
        let e = Expr::not(Expr::not(Expr::eq(c(), Expr::lit(1i32))));
        assert_eq!(simplify(&e), Expr::eq(c(), Expr::lit(1i32)));
        let e = Expr::not(Expr::lt(c(), Expr::lit(1i32)));
        assert_eq!(simplify(&e), Expr::ge(c(), Expr::lit(1i32)));
    }

    #[test]
    fn folds_constant_comparison() {
        let e = Expr::lt(Expr::lit(1i32), Expr::lit(2i32));
        assert_eq!(simplify(&e), Expr::lit(true));
    }
}
