//! Batch (vectorized) evaluation of [`CompiledExpr`] over [`RowBlock`]s.
//!
//! Two public entry points extend the per-row API of `compile`:
//!
//! * [`CompiledExpr::eval_predicate_block`] — evaluate a WHERE predicate
//!   over a block and return the **refined selection vector** (physical
//!   indices of rows where the predicate is `true`), plus a flag telling
//!   whether the row-at-a-time fallback ran.
//! * [`CompiledExpr::eval_column`] — evaluate a scalar expression over a
//!   block into a [`ColumnVec`] with one value per selected row (projection
//!   targets, join keys, aggregate arguments, group keys).
//!
//! # Semantics: exactly the row path, or fall back to it
//!
//! SQL three-valued logic and evaluation-order-dependent errors make naive
//! column-at-a-time evaluation subtly wrong: `AND` only short-circuits on
//! `false` (a NULL conjunct keeps evaluating later conjuncts, which may
//! error), and evaluating a whole column of a subexpression visits rows the
//! row-at-a-time path may never reach. The batch evaluator therefore:
//!
//! 1. evaluates *provably error-free* predicate trees as word-packed
//!    **dual bitmaps** ([`Mask3`]): a value mask and a valid mask encode
//!    the three truth values, leaves run branch-free typed loops over all
//!    physical rows (NULL slots hold dummy values and are masked by the
//!    column's validity bitmap), and `AND`/`OR`/`NOT`/`IS NULL` compose
//!    with Kleene word formulas — 64 rows per op, order-independent
//!    because no covered leaf can error;
//! 2. for everything else tracks **alive sets** through `AND`/`OR` —
//!    conjunct *k* is evaluated only on rows not yet decided `false`
//!    (resp. `true`), which is exactly the set of rows the row path
//!    evaluates it on;
//! 3. treats *any* internal error as "this block needs row semantics" and
//!    re-runs the expression row-at-a-time over the block's selection. The
//!    fallback reproduces the row path bit for bit — including *which* row
//!    errors first and whether an error is masked by a short circuit that
//!    the column-major order missed. Arithmetic kernels use the same
//!    mechanism as a **deferred error mask**: overflow and division by
//!    zero on non-NULL slots are accumulated branch-free, and one set bit
//!    aborts the whole block to the row path.
//!
//! The net effect: `eval_predicate_block` ≡ filtering with
//! [`CompiledExpr::eval_predicate`] per row, and `eval_column` ≡ mapping
//! [`CompiledExpr::eval`] per row — values *and* errors — while the common
//! shapes (col-op-const, BETWEEN, IN-set, IS NULL, AND/OR of those) run as
//! word-mask kernels with no `Datum` construction, NULLs included.

use crate::ast::CmpOp;
use crate::compile::{between_result, CompiledExpr};
use crate::eval::cmp_holds;
use mpp_common::value::ArithOp;
use mpp_common::{
    bitmap_get, bitmap_ones, bitmap_zero_tail, ColumnData, ColumnVec, Datum, Error, Result,
    RowBlock,
};

/// Three-valued logic as a byte: `1` true, `0` false, `-1` null/unknown.
pub type Trool = i8;
pub const T_TRUE: Trool = 1;
pub const T_FALSE: Trool = 0;
pub const T_NULL: Trool = -1;

#[inline]
fn datum_to_trool(d: &Datum) -> Result<Trool> {
    Ok(match d.as_bool()? {
        None => T_NULL,
        Some(true) => T_TRUE,
        Some(false) => T_FALSE,
    })
}

/// Build a boolean result column from trools: typed `Bool` values with a
/// validity bitmap marking the NULL slots (dummy `false` underneath).
fn trools_to_column(tr: &[Trool]) -> ColumnVec {
    let n = tr.len();
    let mut vals = Vec::with_capacity(n);
    let mut valid = vec![0u64; n.div_ceil(64)];
    let mut any_null = false;
    for (i, &t) in tr.iter().enumerate() {
        vals.push(t == T_TRUE);
        if t == T_NULL {
            any_null = true;
        } else {
            valid[i >> 6] |= 1 << (i & 63);
        }
    }
    ColumnVec::from_parts(ColumnData::Bool(vals), any_null.then_some(valid))
}

/// Integer-class view of a constant (Int32/Int64/Date — the combinations
/// `sql_cmp` compares through `as_i64`).
#[inline]
fn const_i64(d: &Datum) -> Option<i64> {
    match d {
        Datum::Int32(v) => Some(*v as i64),
        Datum::Int64(v) => Some(*v),
        Datum::Date(v) => Some(*v as i64),
        _ => None,
    }
}

/// Numeric-class view of a constant (used when either side is Float64).
#[inline]
fn const_f64(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int32(v) => Some(*v as f64),
        Datum::Int64(v) => Some(*v as f64),
        Datum::Float64(v) => Some(*v),
        Datum::Date(v) => Some(*v as f64),
        _ => None,
    }
}

/// `col OP const` over a selection: typed loops for the class-compatible
/// combinations (NULL slots yield three-valued NULL via the validity
/// bitmap), per-row `sql_cmp` otherwise (same values, same errors).
fn cmp_const_trools(col: &ColumnVec, sel: &[u32], op: CmpOp, val: &Datum) -> Result<Vec<Trool>> {
    // NULL constant: sql_cmp returns None before any type check.
    if val.is_null() {
        return Ok(vec![T_NULL; sel.len()]);
    }
    let tr = |b: bool| if b { T_TRUE } else { T_FALSE };
    macro_rules! int_loop {
        ($v:expr, $c:expr) => {{
            let c = $c;
            Ok(sel
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if !col.is_valid(i) {
                        T_NULL
                    } else {
                        tr(cmp_holds(op, ($v[i] as i64).cmp(&c)))
                    }
                })
                .collect())
        }};
    }
    macro_rules! f64_loop {
        ($v:expr, $c:expr) => {{
            let c = $c;
            Ok(sel
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if !col.is_valid(i) {
                        T_NULL
                    } else {
                        tr(cmp_holds(op, ($v[i] as f64).total_cmp(&c)))
                    }
                })
                .collect())
        }};
    }
    match (col.data(), const_i64(val), const_f64(val)) {
        (ColumnData::Int32(v), Some(c), _) => int_loop!(v, c),
        (ColumnData::Int64(v), Some(c), _) => int_loop!(v, c),
        (ColumnData::Date(v), Some(c), _) => int_loop!(v, c),
        (ColumnData::Int32(v), None, Some(c)) => f64_loop!(v, c),
        (ColumnData::Int64(v), None, Some(c)) => f64_loop!(v, c),
        (ColumnData::Date(v), None, Some(c)) => f64_loop!(v, c),
        (ColumnData::Float64(v), _, Some(c)) => f64_loop!(v, c),
        (ColumnData::Str(v), _, _) if matches!(val, Datum::Str(_)) => {
            let Datum::Str(c) = val else { unreachable!() };
            Ok(sel
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if !col.is_valid(i) {
                        T_NULL
                    } else {
                        tr(cmp_holds(op, v[i].as_ref().cmp(c.as_ref())))
                    }
                })
                .collect())
        }
        (ColumnData::Bool(v), _, _) if matches!(val, Datum::Bool(_)) => {
            let Datum::Bool(c) = val else { unreachable!() };
            Ok(sel
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if !col.is_valid(i) {
                        T_NULL
                    } else {
                        tr(cmp_holds(op, v[i].cmp(c)))
                    }
                })
                .collect())
        }
        // Mixed classes or an `Any` column: per-row semantics by reference
        // (`get` materializes NULL slots as `Datum::Null`).
        _ => sel
            .iter()
            .map(|&i| {
                Ok(match col.get(i as usize).sql_cmp(val)? {
                    None => T_NULL,
                    Some(ord) => {
                        if cmp_holds(op, ord) {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    }
                })
            })
            .collect(),
    }
}

/// `col BETWEEN low AND high` over a selection with typed loops when the
/// column and both bounds share a comparability class.
fn between_const_trools(
    col: &ColumnVec,
    sel: &[u32],
    low: &Datum,
    high: &Datum,
) -> Result<Vec<Trool>> {
    let tr = |b: bool| if b { T_TRUE } else { T_FALSE };
    macro_rules! typed_loop {
        ($f:expr) => {{
            let f = $f;
            return Ok(sel
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if !col.is_valid(i) {
                        T_NULL
                    } else {
                        tr(f(i))
                    }
                })
                .collect());
        }};
    }
    match (col.data(), const_i64(low), const_i64(high)) {
        (ColumnData::Int32(v), Some(lo), Some(hi)) => {
            typed_loop!(|i: usize| {
                let x = v[i] as i64;
                x >= lo && x <= hi
            })
        }
        (ColumnData::Int64(v), Some(lo), Some(hi)) => {
            typed_loop!(|i: usize| {
                let x = v[i];
                x >= lo && x <= hi
            })
        }
        (ColumnData::Date(v), Some(lo), Some(hi)) => {
            typed_loop!(|i: usize| {
                let x = v[i] as i64;
                x >= lo && x <= hi
            })
        }
        _ => {}
    }
    if let (ColumnData::Float64(v), Some(lo), Some(hi)) =
        (col.data(), const_f64(low), const_f64(high))
    {
        typed_loop!(|i: usize| {
            let x = v[i];
            x.total_cmp(&lo) != std::cmp::Ordering::Less
                && x.total_cmp(&hi) != std::cmp::Ordering::Greater
        });
    }
    if let (ColumnData::Str(v), Datum::Str(lo), Datum::Str(hi)) = (col.data(), low, high) {
        typed_loop!(|i: usize| {
            let x = v[i].as_ref();
            x >= lo.as_ref() && x <= hi.as_ref()
        });
    }
    // NULL bounds, mixed classes, or `Any` columns: per-row 3VL.
    sel.iter()
        .map(|&i| datum_to_trool(&between_result(&col.get(i as usize), low, high)?))
        .collect()
}

// ---------------------------------------------------------------------
// Word-packed three-valued predicate masks.
//
// A predicate tree whose every leaf compares a *typed* column against a
// class-compatible constant cannot error on any row: NULL slots flow
// through the validity bitmap and Kleene logic is evaluation-order
// independent, so the alive-set bookkeeping below is unnecessary. Those
// trees evaluate here as **dual bitmaps**, one bit per physical row
// packed into `u64` words:
//
// * `value` — bit set iff the predicate is definitely TRUE;
// * `valid` — bit set iff the truth value is known (not NULL);
// * canonical form: `value ⊆ valid` (a TRUE row is always known), and
//   tail bits past the block's row count are zero in both.
//
// Leaves run branch-free store loops over all slots (dummy values in
// NULL slots make this safe) and intersect with the column's validity;
// combinators run word-at-a-time:
//
//   AND: value = a.value & b.value
//        valid = value | (a.valid & !a.value) | (b.valid & !b.value)
//   OR:  value = a.value | b.value
//        valid = value | (a.valid & !a.value & b.valid & !b.value)
//   NOT: value = valid & !value          (valid unchanged)
//
// Anything outside the shape (mixed-class comparisons, `Any` columns,
// arithmetic, `InList` walks) returns `None` and takes the exact trools
// path below.

/// Set bit `i` of the mask for every row where `f` holds — branch-free,
/// one shift/or per element.
#[inline]
fn fill_mask<T: Copy>(vals: &[T], mask: &mut [u64], f: impl Fn(T) -> bool) {
    for (i, &x) in vals.iter().enumerate() {
        mask[i >> 6] |= (f(x) as u64) << (i & 63);
    }
}

/// Integer-class `col OP const` kernels, one monomorphized loop per op.
#[inline]
fn cmp_mask_int<T: Copy>(v: &[T], to: impl Fn(T) -> i64 + Copy, op: CmpOp, c: i64, m: &mut [u64]) {
    match op {
        CmpOp::Eq => fill_mask(v, m, |x| to(x) == c),
        CmpOp::Ne => fill_mask(v, m, |x| to(x) != c),
        CmpOp::Lt => fill_mask(v, m, |x| to(x) < c),
        CmpOp::Le => fill_mask(v, m, |x| to(x) <= c),
        CmpOp::Gt => fill_mask(v, m, |x| to(x) > c),
        CmpOp::Ge => fill_mask(v, m, |x| to(x) >= c),
    }
}

/// Float-class kernels — `total_cmp`, bit-identical to the trools loops.
#[inline]
fn cmp_mask_f64<T: Copy>(v: &[T], to: impl Fn(T) -> f64 + Copy, op: CmpOp, c: f64, m: &mut [u64]) {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => fill_mask(v, m, |x| to(x).total_cmp(&c) == Equal),
        CmpOp::Ne => fill_mask(v, m, |x| to(x).total_cmp(&c) != Equal),
        CmpOp::Lt => fill_mask(v, m, |x| to(x).total_cmp(&c) == Less),
        CmpOp::Le => fill_mask(v, m, |x| to(x).total_cmp(&c) != Greater),
        CmpOp::Gt => fill_mask(v, m, |x| to(x).total_cmp(&c) == Greater),
        CmpOp::Ge => fill_mask(v, m, |x| to(x).total_cmp(&c) != Less),
    }
}

/// `col OP const` as a physical-row *value* mask computed over all slots
/// (NULL slots hold dummies — the caller intersects with validity), for
/// typed columns in the same comparability class as the non-NULL constant.
fn cmp_const_mask(col: &ColumnData, op: CmpOp, val: &Datum, n: usize) -> Option<Vec<u64>> {
    let mut mask = vec![0u64; n.div_ceil(64)];
    match (col, const_i64(val), const_f64(val)) {
        (ColumnData::Int32(v), Some(c), _) => cmp_mask_int(v, |x| x as i64, op, c, &mut mask),
        (ColumnData::Int64(v), Some(c), _) => cmp_mask_int(v, |x| x, op, c, &mut mask),
        (ColumnData::Date(v), Some(c), _) => cmp_mask_int(v, |x| x as i64, op, c, &mut mask),
        (ColumnData::Int32(v), None, Some(c)) => cmp_mask_f64(v, |x| x as f64, op, c, &mut mask),
        (ColumnData::Int64(v), None, Some(c)) => cmp_mask_f64(v, |x| x as f64, op, c, &mut mask),
        (ColumnData::Date(v), None, Some(c)) => cmp_mask_f64(v, |x| x as f64, op, c, &mut mask),
        (ColumnData::Float64(v), _, Some(c)) => cmp_mask_f64(v, |x| x, op, c, &mut mask),
        (ColumnData::Str(v), _, _) if matches!(val, Datum::Str(_)) => {
            let Datum::Str(c) = val else { unreachable!() };
            for (i, s) in v.iter().enumerate() {
                mask[i >> 6] |= (cmp_holds(op, s.as_ref().cmp(c.as_ref())) as u64) << (i & 63);
            }
        }
        (ColumnData::Bool(v), _, _) if matches!(val, Datum::Bool(_)) => {
            let Datum::Bool(c) = val else { unreachable!() };
            let c = *c;
            fill_mask(v, &mut mask, |x| cmp_holds(op, x.cmp(&c)));
        }
        _ => return None,
    }
    Some(mask)
}

/// `col BETWEEN low AND high` as a physical-row value mask (the same
/// combinations `between_const_trools` runs typed; non-NULL bounds only).
fn between_const_mask(col: &ColumnData, low: &Datum, high: &Datum, n: usize) -> Option<Vec<u64>> {
    let mut mask = vec![0u64; n.div_ceil(64)];
    match (col, const_i64(low), const_i64(high)) {
        (ColumnData::Int32(v), Some(lo), Some(hi)) => {
            fill_mask(v, &mut mask, |x| (x as i64) >= lo && (x as i64) <= hi);
            return Some(mask);
        }
        (ColumnData::Int64(v), Some(lo), Some(hi)) => {
            fill_mask(v, &mut mask, |x| x >= lo && x <= hi);
            return Some(mask);
        }
        (ColumnData::Date(v), Some(lo), Some(hi)) => {
            fill_mask(v, &mut mask, |x| (x as i64) >= lo && (x as i64) <= hi);
            return Some(mask);
        }
        _ => {}
    }
    if let (ColumnData::Float64(v), Some(lo), Some(hi)) = (col, const_f64(low), const_f64(high)) {
        use std::cmp::Ordering::*;
        fill_mask(v, &mut mask, |x| {
            x.total_cmp(&lo) != Less && x.total_cmp(&hi) != Greater
        });
        return Some(mask);
    }
    if let (ColumnData::Str(v), Datum::Str(lo), Datum::Str(hi)) = (col, low, high) {
        for (i, s) in v.iter().enumerate() {
            let x = s.as_ref();
            mask[i >> 6] |= ((x >= lo.as_ref() && x <= hi.as_ref()) as u64) << (i & 63);
        }
        return Some(mask);
    }
    None
}

/// A word-packed three-valued predicate result over all physical rows:
/// TRUE where `value` is set, FALSE where known but not set, NULL where
/// `valid` is clear. Canonical: `value ⊆ valid`, tail bits zero.
struct Mask3 {
    value: Vec<u64>,
    valid: Vec<u64>,
}

impl Mask3 {
    /// A leaf over a typed column: `value` was computed branch-free over
    /// all slots (dummies included); intersect it with the column's
    /// validity so NULL slots become three-valued NULL.
    fn leaf(mut value: Vec<u64>, col: &ColumnVec, n: usize) -> Mask3 {
        let valid = match col.validity() {
            Some(w) => w.to_vec(),
            None => bitmap_ones(n),
        };
        for (v, &k) in value.iter_mut().zip(&valid) {
            *v &= k;
        }
        Mask3 { value, valid }
    }

    /// A mask that is NULL on every row.
    fn all_null(n: usize) -> Mask3 {
        let words = n.div_ceil(64);
        Mask3 {
            value: vec![0; words],
            valid: vec![0; words],
        }
    }
}

/// Intersect a physical-row mask with the block's selection. Dense blocks
/// walk set bits (`trailing_zeros`) into a popcount-sized vector;
/// filtered blocks compact the selection with a branch-free conditional
/// append.
fn mask_to_sel(mask: &[u64], block: &RowBlock) -> Vec<u32> {
    match block.sel() {
        None => {
            // Exact allocation: one slot per set bit, not per physical row.
            let mut out = Vec::with_capacity(mpp_common::bitmap_count(mask));
            for (w, &word) in mask.iter().enumerate() {
                let mut word = word;
                let base = (w as u32) << 6;
                while word != 0 {
                    out.push(base + word.trailing_zeros());
                    word &= word - 1;
                }
            }
            out
        }
        Some(sel) => {
            let mut out = vec![0u32; sel.len()];
            let mut k = 0usize;
            for &i in sel {
                out[k] = i;
                k += ((mask[(i >> 6) as usize] >> (i & 63)) & 1) as usize;
            }
            out.truncate(k);
            out
        }
    }
}

// ---------------------------------------------------------------------
// Typed arithmetic kernels with deferred error masks.
// ---------------------------------------------------------------------

/// AND of two optional validity bitmaps (NULL if either input is NULL).
fn and_valid(a: Option<&[u64]>, b: Option<&[u64]>) -> Option<Vec<u64>> {
    match (a, b) {
        (None, None) => None,
        (Some(w), None) | (None, Some(w)) => Some(w.to_vec()),
        (Some(x), Some(y)) => Some(x.iter().zip(y).map(|(p, q)| p & q).collect()),
    }
}

#[inline]
fn valid_bit(valid: &Option<Vec<u64>>, i: usize) -> bool {
    match valid {
        None => true,
        Some(w) => bitmap_get(w, i),
    }
}

/// The abort signal for a deferred batch error: the caller re-runs the
/// block row-at-a-time, reproducing the exact first error. Never surfaced.
fn needs_row_path() -> Error {
    Error::Execution("batch arithmetic needs row semantics".into())
}

/// Integer lanes (`Int32`/`Int64` operands, `Int64` result — the row
/// path's widening rule). Overflow and division by zero are collected as
/// deferred errors: any error on a non-NULL slot aborts to the row path.
fn int_arith(
    op: ArithOp,
    n: usize,
    a: impl Fn(usize) -> i64,
    b: impl Fn(usize) -> i64,
    valid: Option<Vec<u64>>,
) -> Result<ColumnVec> {
    let mut out = Vec::with_capacity(n);
    let mut err = false;
    match op {
        ArithOp::Add => {
            for i in 0..n {
                let (v, o) = a(i).overflowing_add(b(i));
                out.push(v);
                err |= o && valid_bit(&valid, i);
            }
        }
        ArithOp::Sub => {
            for i in 0..n {
                let (v, o) = a(i).overflowing_sub(b(i));
                out.push(v);
                err |= o && valid_bit(&valid, i);
            }
        }
        ArithOp::Mul => {
            for i in 0..n {
                let (v, o) = a(i).overflowing_mul(b(i));
                out.push(v);
                err |= o && valid_bit(&valid, i);
            }
        }
        ArithOp::Div => {
            for i in 0..n {
                let (x, y) = (a(i), b(i));
                let bad = y == 0 || (x == i64::MIN && y == -1);
                out.push(x.wrapping_div(if bad { 1 } else { y }));
                err |= bad && valid_bit(&valid, i);
            }
        }
        ArithOp::Mod => {
            for i in 0..n {
                let (x, y) = (a(i), b(i));
                let bad = y == 0 || (x == i64::MIN && y == -1);
                out.push(x.wrapping_rem(if bad { 1 } else { y }));
                err |= bad && valid_bit(&valid, i);
            }
        }
    }
    if err {
        return Err(needs_row_path());
    }
    Ok(ColumnVec::from_parts(ColumnData::Int64(out), valid))
}

/// Float lanes (either operand `Float64`): plain IEEE ops, bit-identical
/// to the row path's `as_f64` coercions. Division/modulo by zero errors
/// in the row path, so it defers the same way.
fn f64_arith(
    op: ArithOp,
    n: usize,
    a: impl Fn(usize) -> f64,
    b: impl Fn(usize) -> f64,
    valid: Option<Vec<u64>>,
) -> Result<ColumnVec> {
    let mut out = Vec::with_capacity(n);
    let mut err = false;
    match op {
        ArithOp::Add => {
            for i in 0..n {
                out.push(a(i) + b(i));
            }
        }
        ArithOp::Sub => {
            for i in 0..n {
                out.push(a(i) - b(i));
            }
        }
        ArithOp::Mul => {
            for i in 0..n {
                out.push(a(i) * b(i));
            }
        }
        ArithOp::Div => {
            for i in 0..n {
                let y = b(i);
                err |= y == 0.0 && valid_bit(&valid, i);
                out.push(a(i) / y);
            }
        }
        ArithOp::Mod => {
            for i in 0..n {
                let y = b(i);
                err |= y == 0.0 && valid_bit(&valid, i);
                out.push(a(i) % y);
            }
        }
    }
    if err {
        return Err(needs_row_path());
    }
    Ok(ColumnVec::from_parts(ColumnData::Float64(out), valid))
}

/// Typed arithmetic over dense argument columns. `None` means the shape
/// is not covered (Date result-type rules, strings, `Any` columns) and
/// the caller should evaluate per row. NULL slots propagate through the
/// combined validity bitmap without branching the value loops.
fn arith_column(op: ArithOp, l: &ColumnVec, r: &ColumnVec) -> Option<Result<ColumnVec>> {
    use ColumnData::*;
    let n = l.len();
    let valid = and_valid(l.validity(), r.validity());
    macro_rules! ii {
        ($a:expr, $b:expr) => {
            Some(int_arith(op, n, $a, $b, valid))
        };
    }
    macro_rules! ff {
        ($a:expr, $b:expr) => {
            Some(f64_arith(op, n, $a, $b, valid))
        };
    }
    match (l.data(), r.data()) {
        (Int32(a), Int32(b)) => ii!(|i| a[i] as i64, |i| b[i] as i64),
        (Int32(a), Int64(b)) => ii!(|i| a[i] as i64, |i| b[i]),
        (Int64(a), Int32(b)) => ii!(|i| a[i], |i| b[i] as i64),
        (Int64(a), Int64(b)) => ii!(|i| a[i], |i| b[i]),
        (Float64(a), Float64(b)) => ff!(|i| a[i], |i| b[i]),
        (Float64(a), Int32(b)) => ff!(|i| a[i], |i| b[i] as f64),
        (Float64(a), Int64(b)) => ff!(|i| a[i], |i| b[i] as f64),
        (Float64(a), Date(b)) => ff!(|i| a[i], |i| b[i] as f64),
        (Int32(a), Float64(b)) => ff!(|i| a[i] as f64, |i| b[i]),
        (Int64(a), Float64(b)) => ff!(|i| a[i] as f64, |i| b[i]),
        (Date(a), Float64(b)) => ff!(|i| a[i] as f64, |i| b[i]),
        _ => None,
    }
}

impl CompiledExpr {
    /// Word-packed three-valued evaluation over **all physical rows** of
    /// `block`, when this predicate provably cannot error on any row.
    /// `None` means "shape not covered" — not a failure.
    fn try_mask3(&self, block: &RowBlock) -> Option<Mask3> {
        let n = block.phys_rows();
        let words = n.div_ceil(64);
        match self {
            CompiledExpr::Const(d) => match d {
                Datum::Bool(true) => Some(Mask3 {
                    value: bitmap_ones(n),
                    valid: bitmap_ones(n),
                }),
                Datum::Bool(false) => Some(Mask3 {
                    value: vec![0; words],
                    valid: bitmap_ones(n),
                }),
                Datum::Null => Some(Mask3::all_null(n)),
                _ => None,
            },
            CompiledExpr::Col { pos, .. } => {
                let col = block.columns().get(*pos)?;
                match col.data() {
                    ColumnData::Bool(v) => {
                        let mut value = vec![0u64; words];
                        fill_mask(v, &mut value, |x| x);
                        Some(Mask3::leaf(value, col, n))
                    }
                    _ => None,
                }
            }
            CompiledExpr::CmpColConst { op, pos, val, .. } => {
                let col = block.columns().get(*pos)?;
                if val.is_null() {
                    // `col op NULL` is NULL on every row, whatever the col.
                    return Some(Mask3::all_null(n));
                }
                let value = cmp_const_mask(col.data(), *op, val, n)?;
                Some(Mask3::leaf(value, col, n))
            }
            CompiledExpr::BetweenColConst { pos, low, high, .. } => {
                let col = block.columns().get(*pos)?;
                let value = between_const_mask(col.data(), low, high, n)?;
                Some(Mask3::leaf(value, col, n))
            }
            CompiledExpr::IsNull(e) => {
                let CompiledExpr::Col { pos, .. } = e.as_ref() else {
                    return None;
                };
                let col = block.columns().get(*pos)?;
                if matches!(col.data(), ColumnData::Any(_)) {
                    return None;
                }
                // The complement of the validity bitmap, in one word op
                // per 64 rows; the result itself is never NULL.
                let mut value = match col.validity() {
                    None => vec![0u64; words],
                    Some(w) => w.iter().map(|x| !x).collect(),
                };
                bitmap_zero_tail(&mut value, n);
                Some(Mask3 {
                    value,
                    valid: bitmap_ones(n),
                })
            }
            CompiledExpr::InConstSet { input, set } => {
                let CompiledExpr::Col { pos, .. } = input.as_ref() else {
                    return None;
                };
                let col = block.columns().get(*pos)?;
                if matches!(col.data(), ColumnData::Any(_)) {
                    return None;
                }
                let mut value = vec![0u64; words];
                let mut valid = vec![0u64; words];
                for i in 0..n {
                    if !col.is_valid(i) {
                        continue; // NULL probe → NULL: both bits stay 0.
                    }
                    match set.probe(&col.get(i)) {
                        Ok(Datum::Bool(b)) => {
                            valid[i >> 6] |= 1 << (i & 63);
                            value[i >> 6] |= (b as u64) << (i & 63);
                        }
                        Ok(_) => continue,
                        // Cross-class probe: the row path errors — take it.
                        Err(_) => return None,
                    }
                }
                Some(Mask3 { value, valid })
            }
            CompiledExpr::And(exprs) => {
                let (first, rest) = exprs.split_first()?;
                let mut acc = first.try_mask3(block)?;
                for e in rest {
                    let m = e.try_mask3(block)?;
                    for k in 0..acc.value.len() {
                        let value = acc.value[k] & m.value[k];
                        acc.valid[k] =
                            value | (acc.valid[k] & !acc.value[k]) | (m.valid[k] & !m.value[k]);
                        acc.value[k] = value;
                    }
                }
                Some(acc)
            }
            CompiledExpr::Or(exprs) => {
                let (first, rest) = exprs.split_first()?;
                let mut acc = first.try_mask3(block)?;
                for e in rest {
                    let m = e.try_mask3(block)?;
                    for k in 0..acc.value.len() {
                        let value = acc.value[k] | m.value[k];
                        acc.valid[k] =
                            value | (acc.valid[k] & !acc.value[k] & m.valid[k] & !m.value[k]);
                        acc.value[k] = value;
                    }
                }
                Some(acc)
            }
            CompiledExpr::Not(e) => {
                let mut m = e.try_mask3(block)?;
                for k in 0..m.value.len() {
                    m.value[k] = m.valid[k] & !m.value[k];
                }
                Some(m)
            }
            _ => None,
        }
    }

    /// Evaluate a WHERE predicate over `block` and return `(refined
    /// selection, fell_back)`: the physical indices (subset of the block's
    /// selection, in order) where the predicate is `true`. Errors are
    /// exactly the errors per-row filtering raises, at the same first row.
    pub fn eval_predicate_block(&self, block: &RowBlock) -> Result<(Vec<u32>, bool)> {
        // Error-free typed shapes (NULLs included) collapse to dual-bitmap
        // word masks: Kleene logic is order-independent, so the masks are
        // equivalence-preserving. The canonical form guarantees a set
        // `value` bit means definitely TRUE.
        if let Some(m) = self.try_mask3(block) {
            return Ok((mask_to_sel(&m.value, block), false));
        }
        let ident;
        let sel: &[u32] = match block.sel() {
            Some(s) => s,
            None => {
                ident = (0..block.phys_rows() as u32).collect::<Vec<u32>>();
                &ident
            }
        };
        match self.trools(block, sel) {
            Ok(tr) => Ok((
                sel.iter()
                    .zip(tr.iter())
                    .filter(|&(_, &t)| t == T_TRUE)
                    .map(|(&i, _)| i)
                    .collect(),
                false,
            )),
            // Any internal error: re-run with exact row-at-a-time
            // semantics (values, short circuits, and first-error row).
            Err(_) => {
                let mut out = Vec::new();
                for &i in sel {
                    if self.eval_predicate(&block.row_at_phys(i as usize))? {
                        out.push(i);
                    }
                }
                Ok((out, true))
            }
        }
    }

    /// Evaluate a scalar expression over `block` into a column with one
    /// value per selected row, plus a flag telling whether the row
    /// fallback ran. Equivalent to mapping [`CompiledExpr::eval`] over the
    /// selected rows — values and errors.
    pub fn eval_column(&self, block: &RowBlock) -> Result<(ColumnVec, bool)> {
        let ident;
        let sel: &[u32] = match block.sel() {
            Some(s) => s,
            None => {
                ident = (0..block.phys_rows() as u32).collect::<Vec<u32>>();
                &ident
            }
        };
        match self.values(block, sel) {
            Ok(col) => Ok((col, false)),
            Err(_) => {
                let mut out = Vec::with_capacity(sel.len());
                for &i in sel {
                    out.push(self.eval(&block.row_at_phys(i as usize))?);
                }
                Ok((ColumnVec::from_datums(out), true))
            }
        }
    }

    /// Strict batch evaluation: one value per selected row, with **no
    /// internal row fallback**. An `Err` means "this block needs the
    /// row-at-a-time path" — it is *not* the error per-row evaluation
    /// would raise and must never be surfaced. Callers evaluating
    /// several expressions over one block (projections, join keys,
    /// aggregate arguments) use this so a failure in *any* expression
    /// falls back jointly, preserving the row-major evaluation order
    /// across expressions that decides which error surfaces first.
    pub fn eval_column_strict(&self, block: &RowBlock) -> Result<ColumnVec> {
        let ident;
        let sel: &[u32] = match block.sel() {
            Some(s) => s,
            None => {
                ident = (0..block.phys_rows() as u32).collect::<Vec<u32>>();
                &ident
            }
        };
        self.values(block, sel)
    }

    /// Three-valued truth value per selected row. An `Err` means "this
    /// block needs the row-at-a-time path", not necessarily that the row
    /// path errors — callers must fall back, never propagate.
    fn trools(&self, block: &RowBlock, sel: &[u32]) -> Result<Vec<Trool>> {
        match self {
            CompiledExpr::Const(d) => Ok(vec![datum_to_trool(d)?; sel.len()]),
            CompiledExpr::Col { pos, col } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                let c = block.column(*pos);
                match c.data() {
                    ColumnData::Bool(v) => Ok(sel
                        .iter()
                        .map(|&i| {
                            let i = i as usize;
                            if !c.is_valid(i) {
                                T_NULL
                            } else if v[i] {
                                T_TRUE
                            } else {
                                T_FALSE
                            }
                        })
                        .collect()),
                    ColumnData::Any(v) => sel
                        .iter()
                        .map(|&i| datum_to_trool(&v[i as usize]))
                        .collect(),
                    // A non-bool typed column: NULL slots are three-valued
                    // NULL; the first non-NULL slot errors like the row
                    // path's `as_bool`.
                    _ => sel
                        .iter()
                        .map(|&i| datum_to_trool(&c.get(i as usize)))
                        .collect(),
                }
            }
            CompiledExpr::CmpColConst { op, pos, col, val } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                cmp_const_trools(block.column(*pos), sel, *op, val)
            }
            CompiledExpr::BetweenColConst {
                pos,
                col,
                low,
                high,
            } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                between_const_trools(block.column(*pos), sel, low, high)
            }
            CompiledExpr::And(exprs) => {
                // Alive tracking: conjunct k is evaluated only on rows not
                // yet `false` — the exact rows the row path evaluates it
                // on. A NULL row stays alive (later conjuncts still run and
                // may error or turn it false) but can never turn true.
                let mut result = vec![T_TRUE; sel.len()];
                let mut alive_sel: Vec<u32> = sel.to_vec();
                let mut alive_slots: Vec<u32> = (0..sel.len() as u32).collect();
                for e in exprs {
                    if alive_sel.is_empty() {
                        break;
                    }
                    let tr = e.trools(block, &alive_sel)?;
                    let mut keep = 0usize;
                    for k in 0..alive_sel.len() {
                        let slot = alive_slots[k] as usize;
                        match tr[k] {
                            T_FALSE => result[slot] = T_FALSE,
                            t => {
                                if t == T_NULL {
                                    result[slot] = T_NULL;
                                }
                                alive_sel[keep] = alive_sel[k];
                                alive_slots[keep] = alive_slots[k];
                                keep += 1;
                            }
                        }
                    }
                    alive_sel.truncate(keep);
                    alive_slots.truncate(keep);
                }
                Ok(result)
            }
            CompiledExpr::Or(exprs) => {
                // Mirror of AND: a row dies once `true`; a NULL row stays
                // alive and may still turn true later.
                let mut result = vec![T_FALSE; sel.len()];
                let mut alive_sel: Vec<u32> = sel.to_vec();
                let mut alive_slots: Vec<u32> = (0..sel.len() as u32).collect();
                for e in exprs {
                    if alive_sel.is_empty() {
                        break;
                    }
                    let tr = e.trools(block, &alive_sel)?;
                    let mut keep = 0usize;
                    for k in 0..alive_sel.len() {
                        let slot = alive_slots[k] as usize;
                        match tr[k] {
                            T_TRUE => result[slot] = T_TRUE,
                            t => {
                                if t == T_NULL {
                                    result[slot] = T_NULL;
                                }
                                alive_sel[keep] = alive_sel[k];
                                alive_slots[keep] = alive_slots[k];
                                keep += 1;
                            }
                        }
                    }
                    alive_sel.truncate(keep);
                    alive_slots.truncate(keep);
                }
                Ok(result)
            }
            CompiledExpr::Not(e) => Ok(e
                .trools(block, sel)?
                .into_iter()
                .map(|t| match t {
                    T_TRUE => T_FALSE,
                    T_FALSE => T_TRUE,
                    t => t,
                })
                .collect()),
            CompiledExpr::IsNull(e) => {
                // IS NULL of a typed column reads the validity bitmap
                // without touching values (uniformly false when
                // null-free).
                if let CompiledExpr::Col { pos, .. } = e.as_ref() {
                    if *pos < block.width() {
                        let c = block.column(*pos);
                        if !matches!(c.data(), ColumnData::Any(_)) {
                            return Ok(sel
                                .iter()
                                .map(|&i| {
                                    if c.is_valid(i as usize) {
                                        T_FALSE
                                    } else {
                                        T_TRUE
                                    }
                                })
                                .collect());
                        }
                    }
                }
                let vals = e.values(block, sel)?;
                Ok((0..sel.len())
                    .map(|k| {
                        if vals.get(k).is_null() {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    })
                    .collect())
            }
            CompiledExpr::Cmp { op, left, right } => {
                let l = left.values(block, sel)?;
                let r = right.values(block, sel)?;
                (0..sel.len())
                    .map(|k| {
                        Ok(match l.get(k).sql_cmp(&r.get(k))? {
                            None => T_NULL,
                            Some(ord) => {
                                if cmp_holds(*op, ord) {
                                    T_TRUE
                                } else {
                                    T_FALSE
                                }
                            }
                        })
                    })
                    .collect()
            }
            CompiledExpr::Between { expr, low, high } => {
                let v = expr.values(block, sel)?;
                let lo = low.values(block, sel)?;
                let hi = high.values(block, sel)?;
                (0..sel.len())
                    .map(|k| datum_to_trool(&between_result(&v.get(k), &lo.get(k), &hi.get(k))?))
                    .collect()
            }
            CompiledExpr::InConstSet { input, set } => {
                if let CompiledExpr::Col { pos, col } = input.as_ref() {
                    if *pos >= block.width() {
                        return Err(Error::Execution(format!(
                            "row too short for {col} at {pos}"
                        )));
                    }
                    let c = block.column(*pos);
                    return sel
                        .iter()
                        .map(|&i| datum_to_trool(&set.probe(&c.get(i as usize))?))
                        .collect();
                }
                let vals = input.values(block, sel)?;
                (0..sel.len())
                    .map(|k| datum_to_trool(&set.probe(&vals.get(k))?))
                    .collect()
            }
            // The ordered `IN`-walk short-circuits per row (break on match,
            // positional NULLs/errors); evaluate it with row semantics
            // directly rather than approximating column-wise.
            CompiledExpr::InList { .. } => sel
                .iter()
                .map(|&i| datum_to_trool(&self.eval(&block.row_at_phys(i as usize))?))
                .collect(),
            // Value-producing or always-erroring nodes used in predicate
            // position: evaluate as values, then convert (errors included).
            CompiledExpr::UnboundCol(_)
            | CompiledExpr::UnboundParam(_)
            | CompiledExpr::Arith { .. } => {
                let vals = self.values(block, sel)?;
                (0..sel.len())
                    .map(|k| datum_to_trool(&vals.get(k)))
                    .collect()
            }
        }
    }

    /// Value per selected row. Same error contract as [`Self::trools`].
    fn values(&self, block: &RowBlock, sel: &[u32]) -> Result<ColumnVec> {
        match self {
            CompiledExpr::Const(d) => Ok(ColumnVec::broadcast(d, sel.len())),
            CompiledExpr::Col { pos, col } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                Ok(block.column(*pos).gather(sel))
            }
            CompiledExpr::UnboundCol(c) => Err(Error::Execution(format!("unbound column {c}"))),
            CompiledExpr::UnboundParam(0) => {
                Err(Error::Execution("parameter numbers are 1-based".into()))
            }
            CompiledExpr::UnboundParam(n) => {
                Err(Error::Execution(format!("unbound parameter ${n}")))
            }
            CompiledExpr::Arith { op, left, right } => {
                let l = left.values(block, sel)?;
                let r = right.values(block, sel)?;
                // Typed lanes with deferred error masks; NULL slots ride
                // the combined validity bitmap.
                if let Some(res) = arith_column(*op, &l, &r) {
                    return res;
                }
                let mut out = Vec::with_capacity(sel.len());
                for k in 0..sel.len() {
                    out.push(l.get(k).arith(*op, &r.get(k))?);
                }
                Ok(ColumnVec::from_datums(out))
            }
            // Predicate-shaped nodes in value position produce a boolean
            // column through the trool path.
            CompiledExpr::CmpColConst { .. }
            | CompiledExpr::Cmp { .. }
            | CompiledExpr::And(_)
            | CompiledExpr::Or(_)
            | CompiledExpr::Not(_)
            | CompiledExpr::IsNull(_)
            | CompiledExpr::BetweenColConst { .. }
            | CompiledExpr::Between { .. }
            | CompiledExpr::InConstSet { .. }
            | CompiledExpr::InList { .. } => Ok(trools_to_column(&self.trools(block, sel)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::colref::ColRef;
    use crate::compile::compile;
    use crate::eval::EvalContext;
    use mpp_common::value::ArithOp;
    use mpp_common::{row, Row};

    fn ctx3() -> EvalContext<'static> {
        EvalContext::from_columns(&[
            ColRef::new(1, "a"),
            ColRef::new(2, "b"),
            ColRef::new(3, "c"),
        ])
    }

    fn col(id: u32) -> Expr {
        Expr::col(ColRef::new(id, "c"))
    }

    /// Rows covering typed columns, NULLs, and mixed types.
    fn mixed_rows() -> Vec<Row> {
        vec![
            row![1i32, 10i64, "x"],
            Row::new(vec![Datum::Int32(2), Datum::Null, Datum::str("y")]),
            row![3i32, 30i64, "z"],
            Row::new(vec![Datum::Int32(4), Datum::Int64(40), Datum::Null]),
            row![5i32, 50i64, "x"],
        ]
    }

    /// The reference: filter with the per-row API.
    fn row_filter(c: &CompiledExpr, rows: &[Row]) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            if c.eval_predicate(r)? {
                out.push(i as u32);
            }
        }
        Ok(out)
    }

    fn assert_block_matches_rows(e: &Expr, rows: &[Row]) {
        let c = compile(e, &ctx3());
        let block = RowBlock::from_rows(rows, 3);
        let batch = c.eval_predicate_block(&block);
        let byrow = row_filter(&c, rows);
        match (batch, byrow) {
            (Ok((bsel, _)), Ok(rsel)) => assert_eq!(bsel, rsel, "selection mismatch for {e:?}"),
            (Err(be), Err(re)) => {
                assert_eq!(be.to_string(), re.to_string(), "error mismatch for {e:?}")
            }
            (b, r) => panic!("outcome mismatch for {e:?}: batch={b:?} rows={r:?}"),
        }
    }

    #[test]
    fn typed_cmp_between_in_match_row_path() {
        let rows = mixed_rows();
        let shapes = vec![
            Expr::lt(col(1), Expr::lit(4i32)),
            Expr::gt(col(1), Expr::lit(2.5f64)),
            Expr::eq(col(3), Expr::lit("x")),
            Expr::between(col(1), Expr::lit(2i32), Expr::lit(4i32)),
            Expr::in_list(col(1), vec![Expr::lit(1i32), Expr::lit(5i32)]),
            Expr::in_list(col(3), vec![Expr::lit("x"), Expr::lit("q")]),
        ];
        for e in shapes {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn null_columns_and_consts_match_row_path() {
        let rows = mixed_rows();
        let shapes = vec![
            Expr::eq(col(2), Expr::lit(30i64)),       // nullable typed probe
            Expr::eq(col(1), Expr::Lit(Datum::Null)), // NULL const
            Expr::IsNull(Box::new(col(2))),
            Expr::Not(Box::new(Expr::IsNull(Box::new(col(3))))),
            Expr::between(col(2), Expr::lit(10i64), Expr::lit(40i64)),
            Expr::in_list(col(2), vec![Expr::lit(10i64), Expr::lit(40i64)]),
        ];
        for e in shapes {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn and_or_alive_tracking_matches_short_circuit() {
        let rows = mixed_rows();
        let shapes = vec![
            Expr::and(vec![
                Expr::lt(col(1), Expr::lit(4i32)),
                Expr::gt(col(2), Expr::lit(5i64)),
            ]),
            Expr::or(vec![
                Expr::eq(col(3), Expr::lit("x")),
                Expr::lt(col(1), Expr::lit(2i32)),
            ]),
            // NULL in the middle of an AND: rows stay alive, never true.
            Expr::and(vec![
                Expr::eq(col(2), Expr::lit(40i64)),
                Expr::gt(col(1), Expr::lit(0i32)),
            ]),
        ];
        for e in shapes {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn short_circuit_masks_batch_error() {
        // a != 0 AND 10/a > 1: the row path never divides where a == 0.
        // With a zero filtered out by the first conjunct the batch path
        // must agree (alive tracking skips the dead row).
        let rows = vec![
            row![2i32, 0i64, "x"],
            row![0i32, 0i64, "x"],
            row![10i32, 0i64, "x"],
        ];
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::lit(10i32)),
            right: Box::new(col(1)),
        };
        let e = Expr::and(vec![
            Expr::Not(Box::new(Expr::eq(col(1), Expr::lit(0i32)))),
            Expr::gt(div, Expr::lit(1i32)),
        ]);
        assert_block_matches_rows(&e, &rows);
    }

    #[test]
    fn genuine_errors_surface_identically() {
        let rows = vec![row![1i32, 1i64, "x"], row![0i32, 2i64, "y"]];
        // Division by zero reached on row 1.
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::lit(10i32)),
            right: Box::new(col(1)),
        };
        assert_block_matches_rows(&Expr::gt(div, Expr::lit(0i32)), &rows);
        // Cross-class comparison errors.
        assert_block_matches_rows(&Expr::eq(col(1), Expr::lit("nope")), &rows);
        // Unbound column.
        assert_block_matches_rows(&Expr::lt(col(99), Expr::lit(1i32)), &rows);
        // Cross-class IN probe.
        assert_block_matches_rows(
            &Expr::in_list(col(3), vec![Expr::lit(1i32), Expr::lit(2i32)]),
            &rows,
        );
    }

    #[test]
    fn eval_column_matches_row_eval() {
        let rows = mixed_rows();
        let exprs = vec![
            col(1),
            col(2),
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(col(1)),
                right: Box::new(Expr::lit(100i32)),
            },
            Expr::lt(col(1), Expr::lit(3i32)),
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(col(1)),
                right: Box::new(col(2)), // NULL row → NULL result
            },
        ];
        let block = RowBlock::from_rows(&rows, 3);
        for e in exprs {
            let c = compile(&e, &ctx3());
            let (vals, _) = c.eval_column(&block).unwrap();
            assert_eq!(vals.len(), rows.len());
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(vals.get(i), c.eval(r).unwrap(), "{e:?} row {i}");
            }
        }
    }

    #[test]
    fn arith_kernels_match_row_eval() {
        // Typed lanes across ops and operand classes, with NULLs: values
        // (and float bit patterns) must equal the per-row results.
        let rows: Vec<Row> = (0..150)
            .map(|i| {
                if i % 11 == 0 {
                    Row::new(vec![Datum::Null, Datum::Int64(i), Datum::str("s")])
                } else if i % 7 == 0 {
                    Row::new(vec![Datum::Int32(i as i32), Datum::Null, Datum::str("s")])
                } else {
                    row![i as i32, i * 3 + 1, "s"]
                }
            })
            .collect();
        let block = RowBlock::from_rows(&rows, 3);
        let mk = |op, l: Expr, r: Expr| Expr::Arith {
            op,
            left: Box::new(l),
            right: Box::new(r),
        };
        let exprs = vec![
            mk(ArithOp::Add, col(1), col(2)),
            mk(ArithOp::Sub, col(2), col(1)),
            mk(ArithOp::Mul, col(1), col(2)),
            mk(ArithOp::Div, col(2), Expr::lit(3i32)),
            mk(ArithOp::Mod, col(2), Expr::lit(7i64)),
            mk(ArithOp::Add, col(1), Expr::lit(0.5f64)),
            mk(ArithOp::Div, col(2), Expr::lit(2.5f64)),
            mk(ArithOp::Mod, col(2), Expr::lit(1.5f64)),
            mk(ArithOp::Mul, Expr::lit(1.25f64), col(1)),
        ];
        for e in exprs {
            let c = compile(&e, &ctx3());
            let (vals, _) = c.eval_column(&block).unwrap();
            for (i, r) in rows.iter().enumerate() {
                let want = c.eval(r).unwrap();
                let got = vals.get(i);
                // Bit-identity for floats (total_cmp distinguishes -0.0).
                match (&got, &want) {
                    (Datum::Float64(a), Datum::Float64(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "{e:?} row {i}")
                    }
                    _ => assert_eq!(got, want, "{e:?} row {i}"),
                }
            }
        }
    }

    #[test]
    fn arith_deferred_errors_match_row_eval() {
        // Division by zero mid-block, overflow, and date arithmetic all
        // leave the kernels and reproduce exact row-path errors.
        let rows = vec![
            row![4i32, 2i64, "x"],
            row![9i32, 0i64, "y"],
            row![16i32, 4i64, "z"],
        ];
        let mk = |op, l: Expr, r: Expr| Expr::Arith {
            op,
            left: Box::new(l),
            right: Box::new(r),
        };
        let shapes = vec![
            mk(ArithOp::Div, col(1), col(2)),
            mk(ArithOp::Mod, col(1), col(2)),
            mk(ArithOp::Mul, Expr::lit(i64::MAX), col(1)),
            mk(ArithOp::Div, Expr::lit(1.0f64), col(2)),
        ];
        for e in shapes {
            let c = compile(&e, &ctx3());
            let block = RowBlock::from_rows(&rows, 3);
            let batch = c.eval_column(&block);
            let mut byrow: Result<Vec<Datum>> = rows.iter().map(|r| c.eval(r)).collect();
            match (&batch, &mut byrow) {
                (Ok((vals, _)), Ok(want)) => {
                    for (i, w) in want.iter().enumerate() {
                        assert_eq!(&vals.get(i), w, "{e:?} row {i}");
                    }
                }
                (Err(be), Err(re)) => {
                    assert_eq!(be.to_string(), re.to_string(), "error mismatch for {e:?}")
                }
                (b, r) => panic!("outcome mismatch for {e:?}: batch={b:?} rows={r:?}"),
            }
        }
    }

    #[test]
    fn eval_column_under_selection() {
        let rows = mixed_rows();
        let block = RowBlock::from_rows(&rows, 3).with_sel(vec![0, 2, 4]);
        let c = compile(&col(1), &ctx3());
        let (vals, fell_back) = c.eval_column(&block).unwrap();
        assert!(!fell_back);
        assert_eq!(vals.len(), 3);
        assert_eq!(vals.get(1), Datum::Int32(3));
    }

    #[test]
    fn word_mask_matches_row_path_across_word_boundaries() {
        // 150 rows spans three mask words with a ragged tail; every op,
        // plus NOT (tail complement) and nested AND/OR, must agree with
        // the per-row reference bit for bit.
        let rows: Vec<Row> = (0..150)
            .map(|i| row![i % 13, (i * 7 % 29) as i64, "s"])
            .collect();
        let ops = [
            Expr::eq(col(1), Expr::lit(5i32)),
            Expr::cmp(CmpOp::Ne, col(1), Expr::lit(5i32)),
            Expr::lt(col(1), Expr::lit(6i32)),
            Expr::le(col(1), Expr::lit(6i32)),
            Expr::gt(col(2), Expr::lit(14i64)),
            Expr::ge(col(2), Expr::lit(14i64)),
            Expr::between(col(2), Expr::lit(3i64), Expr::lit(21i64)),
            Expr::Not(Box::new(Expr::lt(col(1), Expr::lit(6i32)))),
            Expr::and(vec![
                Expr::gt(col(1), Expr::lit(2i32)),
                Expr::Not(Box::new(Expr::eq(col(2), Expr::lit(0i64)))),
            ]),
            Expr::or(vec![
                Expr::lt(col(1), Expr::lit(1i32)),
                Expr::gt(col(2), Expr::lit(25i64)),
            ]),
            // Float constant against an integer column.
            Expr::gt(col(1), Expr::lit(5.5f64)),
        ];
        for e in ops {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn null_word_masks_match_row_path_across_word_boundaries() {
        // Nullable typed columns spanning three mask words: every leaf
        // shape, IS NULL, NOT, and nested AND/OR run as dual bitmaps and
        // must agree with per-row three-valued logic bit for bit.
        let rows: Vec<Row> = (0..150)
            .map(|i| {
                let a = if i % 5 == 0 {
                    Datum::Null
                } else {
                    Datum::Int32(i % 13)
                };
                let b = if i % 9 == 0 {
                    Datum::Null
                } else {
                    Datum::Int64((i * 7 % 29) as i64)
                };
                let s = if i % 4 == 0 {
                    Datum::Null
                } else {
                    Datum::str(if i % 2 == 0 { "x" } else { "y" })
                };
                Row::new(vec![a, b, s])
            })
            .collect();
        let ops = [
            Expr::eq(col(1), Expr::lit(5i32)),
            Expr::cmp(CmpOp::Ne, col(1), Expr::lit(5i32)),
            Expr::lt(col(1), Expr::lit(6i32)),
            Expr::gt(col(2), Expr::lit(14i64)),
            Expr::eq(col(3), Expr::lit("x")),
            Expr::between(col(2), Expr::lit(3i64), Expr::lit(21i64)),
            Expr::between(col(3), Expr::lit("x"), Expr::lit("y")),
            Expr::in_list(col(1), vec![Expr::lit(1i32), Expr::lit(5i32)]),
            Expr::IsNull(Box::new(col(1))),
            Expr::Not(Box::new(Expr::IsNull(Box::new(col(2))))),
            Expr::Not(Box::new(Expr::lt(col(1), Expr::lit(6i32)))),
            Expr::eq(col(1), Expr::Lit(Datum::Null)),
            Expr::and(vec![
                Expr::gt(col(1), Expr::lit(2i32)),
                Expr::lt(col(2), Expr::lit(20i64)),
            ]),
            Expr::or(vec![
                Expr::lt(col(1), Expr::lit(2i32)),
                Expr::gt(col(2), Expr::lit(25i64)),
                Expr::IsNull(Box::new(col(3))),
            ]),
            Expr::and(vec![
                Expr::or(vec![
                    Expr::eq(col(3), Expr::lit("x")),
                    Expr::IsNull(Box::new(col(1))),
                ]),
                Expr::Not(Box::new(Expr::eq(col(2), Expr::lit(0i64)))),
            ]),
        ];
        for e in ops {
            assert_block_matches_rows(&e, &rows);
        }
        // The dual-bitmap path really ran (no fallback) on a covered shape.
        let c = compile(
            &Expr::and(vec![
                Expr::gt(col(1), Expr::lit(2i32)),
                Expr::IsNull(Box::new(col(2))),
            ]),
            &ctx3(),
        );
        let block = RowBlock::from_rows(&rows, 3);
        let (_, fell_back) = c.eval_predicate_block(&block).unwrap();
        assert!(!fell_back);
    }

    #[test]
    fn word_mask_compacts_existing_selection() {
        let rows: Vec<Row> = (0..100).map(|i| row![i, 0i64, "s"]).collect();
        let sel: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        let block = RowBlock::from_rows(&rows, 3).with_sel(sel.clone());
        let c = compile(&Expr::lt(col(1), Expr::lit(50i32)), &ctx3());
        let (got, fell_back) = c.eval_predicate_block(&block).unwrap();
        assert!(!fell_back);
        let want: Vec<u32> = sel.into_iter().filter(|&i| i < 50).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn predicate_block_respects_existing_selection() {
        let rows = mixed_rows();
        let block = RowBlock::from_rows(&rows, 3).with_sel(vec![1, 2, 3, 4]);
        let c = compile(&Expr::lt(col(1), Expr::lit(4i32)), &ctx3());
        let (sel, fell_back) = c.eval_predicate_block(&block).unwrap();
        assert!(!fell_back);
        // Rows 1 (a=2) and 2 (a=3) pass; row 0 was pre-filtered out.
        assert_eq!(sel, vec![1, 2]);
    }
}
