//! Batch (vectorized) evaluation of [`CompiledExpr`] over [`RowBlock`]s.
//!
//! Two public entry points extend the per-row API of `compile`:
//!
//! * [`CompiledExpr::eval_predicate_block`] — evaluate a WHERE predicate
//!   over a block and return the **refined selection vector** (physical
//!   indices of rows where the predicate is `true`), plus a flag telling
//!   whether the row-at-a-time fallback ran.
//! * [`CompiledExpr::eval_column`] — evaluate a scalar expression over a
//!   block into a [`ColumnVec`] with one value per selected row (projection
//!   targets, join keys, aggregate arguments, group keys).
//!
//! # Semantics: exactly the row path, or fall back to it
//!
//! SQL three-valued logic and evaluation-order-dependent errors make naive
//! column-at-a-time evaluation subtly wrong: `AND` only short-circuits on
//! `false` (a NULL conjunct keeps evaluating later conjuncts, which may
//! error), and evaluating a whole column of a subexpression visits rows the
//! row-at-a-time path may never reach. The batch evaluator therefore:
//!
//! 1. tracks **alive sets** through `AND`/`OR` — conjunct *k* is evaluated
//!    only on rows not yet decided `false` (resp. `true`), which is exactly
//!    the set of rows the row path evaluates it on;
//! 2. treats *any* internal error as "this block needs row semantics" and
//!    re-runs the expression row-at-a-time over the block's selection. The
//!    fallback reproduces the row path bit for bit — including *which* row
//!    errors first and whether an error is masked by a short circuit that
//!    the column-major order missed (e.g. a `Cmp` whose left side errors on
//!    row 5 while its right side errors on row 2).
//!
//! The net effect: `eval_predicate_block` ≡ filtering with
//! [`CompiledExpr::eval_predicate`] per row, and `eval_column` ≡ mapping
//! [`CompiledExpr::eval`] per row — values *and* errors — while the common
//! shapes (col-op-const, BETWEEN, IN-set, AND of those) run as tight typed
//! loops with no `Datum` construction.

use crate::ast::CmpOp;
use crate::compile::{between_result, CompiledExpr};
use crate::eval::cmp_holds;
use mpp_common::{ColumnVec, Datum, Error, Result, RowBlock};

/// Three-valued logic as a byte: `1` true, `0` false, `-1` null/unknown.
pub type Trool = i8;
pub const T_TRUE: Trool = 1;
pub const T_FALSE: Trool = 0;
pub const T_NULL: Trool = -1;

#[inline]
fn datum_to_trool(d: &Datum) -> Result<Trool> {
    Ok(match d.as_bool()? {
        None => T_NULL,
        Some(true) => T_TRUE,
        Some(false) => T_FALSE,
    })
}

/// Build a boolean result column from trools (typed when null-free).
fn trools_to_column(tr: &[Trool]) -> ColumnVec {
    if tr.contains(&T_NULL) {
        ColumnVec::Any(
            tr.iter()
                .map(|&t| match t {
                    T_NULL => Datum::Null,
                    t => Datum::Bool(t == T_TRUE),
                })
                .collect(),
        )
    } else {
        ColumnVec::Bool(tr.iter().map(|&t| t == T_TRUE).collect())
    }
}

/// Integer-class view of a constant (Int32/Int64/Date — the combinations
/// `sql_cmp` compares through `as_i64`).
#[inline]
fn const_i64(d: &Datum) -> Option<i64> {
    match d {
        Datum::Int32(v) => Some(*v as i64),
        Datum::Int64(v) => Some(*v),
        Datum::Date(v) => Some(*v as i64),
        _ => None,
    }
}

/// Numeric-class view of a constant (used when either side is Float64).
#[inline]
fn const_f64(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int32(v) => Some(*v as f64),
        Datum::Int64(v) => Some(*v as f64),
        Datum::Float64(v) => Some(*v),
        Datum::Date(v) => Some(*v as f64),
        _ => None,
    }
}

/// `col OP const` over a selection: typed loops for the class-compatible
/// combinations, per-row `sql_cmp` otherwise (same values, same errors).
fn cmp_const_trools(col: &ColumnVec, sel: &[u32], op: CmpOp, val: &Datum) -> Result<Vec<Trool>> {
    // NULL constant: sql_cmp returns None before any type check.
    if val.is_null() {
        return Ok(vec![T_NULL; sel.len()]);
    }
    let tr = |b: bool| if b { T_TRUE } else { T_FALSE };
    macro_rules! int_loop {
        ($v:expr, $c:expr) => {{
            let c = $c;
            Ok(sel
                .iter()
                .map(|&i| tr(cmp_holds(op, ($v[i as usize] as i64).cmp(&c))))
                .collect())
        }};
    }
    macro_rules! f64_loop {
        ($v:expr, $c:expr) => {{
            let c = $c;
            Ok(sel
                .iter()
                .map(|&i| tr(cmp_holds(op, ($v[i as usize] as f64).total_cmp(&c))))
                .collect())
        }};
    }
    match (col, const_i64(val), const_f64(val)) {
        (ColumnVec::Int32(v), Some(c), _) => int_loop!(v, c),
        (ColumnVec::Int64(v), Some(c), _) => int_loop!(v, c),
        (ColumnVec::Date(v), Some(c), _) => int_loop!(v, c),
        (ColumnVec::Int32(v), None, Some(c)) => f64_loop!(v, c),
        (ColumnVec::Int64(v), None, Some(c)) => f64_loop!(v, c),
        (ColumnVec::Date(v), None, Some(c)) => f64_loop!(v, c),
        (ColumnVec::Float64(v), _, Some(c)) => f64_loop!(v, c),
        (ColumnVec::Str(v), _, _) if matches!(val, Datum::Str(_)) => {
            let Datum::Str(c) = val else { unreachable!() };
            Ok(sel
                .iter()
                .map(|&i| tr(cmp_holds(op, v[i as usize].as_ref().cmp(c.as_ref()))))
                .collect())
        }
        (ColumnVec::Bool(v), _, _) if matches!(val, Datum::Bool(_)) => {
            let Datum::Bool(c) = val else { unreachable!() };
            Ok(sel
                .iter()
                .map(|&i| tr(cmp_holds(op, v[i as usize].cmp(c))))
                .collect())
        }
        // Mixed classes or an `Any` column: per-row semantics by reference.
        _ => sel
            .iter()
            .map(|&i| {
                Ok(match col.get(i as usize).sql_cmp(val)? {
                    None => T_NULL,
                    Some(ord) => {
                        if cmp_holds(op, ord) {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    }
                })
            })
            .collect(),
    }
}

/// `col BETWEEN low AND high` over a selection with typed loops when the
/// column and both bounds share a comparability class.
fn between_const_trools(
    col: &ColumnVec,
    sel: &[u32],
    low: &Datum,
    high: &Datum,
) -> Result<Vec<Trool>> {
    let tr = |b: bool| if b { T_TRUE } else { T_FALSE };
    match (col, const_i64(low), const_i64(high)) {
        (ColumnVec::Int32(v), Some(lo), Some(hi)) => {
            return Ok(sel
                .iter()
                .map(|&i| {
                    let x = v[i as usize] as i64;
                    tr(x >= lo && x <= hi)
                })
                .collect())
        }
        (ColumnVec::Int64(v), Some(lo), Some(hi)) => {
            return Ok(sel
                .iter()
                .map(|&i| {
                    let x = v[i as usize];
                    tr(x >= lo && x <= hi)
                })
                .collect())
        }
        (ColumnVec::Date(v), Some(lo), Some(hi)) => {
            return Ok(sel
                .iter()
                .map(|&i| {
                    let x = v[i as usize] as i64;
                    tr(x >= lo && x <= hi)
                })
                .collect())
        }
        _ => {}
    }
    if let (ColumnVec::Float64(v), Some(lo), Some(hi)) = (col, const_f64(low), const_f64(high)) {
        return Ok(sel
            .iter()
            .map(|&i| {
                let x = v[i as usize];
                tr(x.total_cmp(&lo) != std::cmp::Ordering::Less
                    && x.total_cmp(&hi) != std::cmp::Ordering::Greater)
            })
            .collect());
    }
    if let (ColumnVec::Str(v), Datum::Str(lo), Datum::Str(hi)) = (col, low, high) {
        return Ok(sel
            .iter()
            .map(|&i| {
                let x = v[i as usize].as_ref();
                tr(x >= lo.as_ref() && x <= hi.as_ref())
            })
            .collect());
    }
    // NULL bounds, mixed classes, or `Any` columns: per-row 3VL.
    sel.iter()
        .map(|&i| datum_to_trool(&between_result(&col.get(i as usize), low, high)?))
        .collect()
}

// ---------------------------------------------------------------------
// Word-packed predicate masks.
//
// For predicate trees whose every leaf compares a *typed* (hence
// null-free) column against a class-compatible non-NULL constant, the
// three-valued logic above collapses to plain two-valued logic: no leaf
// can yield NULL or error, so `AND`/`OR` lose their alive-set bookkeeping
// and `NOT` is a pure complement. Those trees evaluate here as one bit
// per physical row packed into `u64` words — leaves run branch-free
// store loops the compiler autovectorizes, combinators run word-at-a-time
// (64 rows per op), and the final mask compacts into a selection vector
// without a branch per row. Anything outside the shape (NULL-able `Any`
// columns, NULL constants, strings, arithmetic) returns `None` and takes
// the exact trools path below.

/// Set bit `i` of the mask for every row where `f` holds — branch-free,
/// one shift/or per element.
#[inline]
fn fill_mask<T: Copy>(vals: &[T], mask: &mut [u64], f: impl Fn(T) -> bool) {
    for (i, &x) in vals.iter().enumerate() {
        mask[i >> 6] |= (f(x) as u64) << (i & 63);
    }
}

/// Integer-class `col OP const` kernels, one monomorphized loop per op.
#[inline]
fn cmp_mask_int<T: Copy>(v: &[T], to: impl Fn(T) -> i64 + Copy, op: CmpOp, c: i64, m: &mut [u64]) {
    match op {
        CmpOp::Eq => fill_mask(v, m, |x| to(x) == c),
        CmpOp::Ne => fill_mask(v, m, |x| to(x) != c),
        CmpOp::Lt => fill_mask(v, m, |x| to(x) < c),
        CmpOp::Le => fill_mask(v, m, |x| to(x) <= c),
        CmpOp::Gt => fill_mask(v, m, |x| to(x) > c),
        CmpOp::Ge => fill_mask(v, m, |x| to(x) >= c),
    }
}

/// Float-class kernels — `total_cmp`, bit-identical to the trools loops.
#[inline]
fn cmp_mask_f64<T: Copy>(v: &[T], to: impl Fn(T) -> f64 + Copy, op: CmpOp, c: f64, m: &mut [u64]) {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => fill_mask(v, m, |x| to(x).total_cmp(&c) == Equal),
        CmpOp::Ne => fill_mask(v, m, |x| to(x).total_cmp(&c) != Equal),
        CmpOp::Lt => fill_mask(v, m, |x| to(x).total_cmp(&c) == Less),
        CmpOp::Le => fill_mask(v, m, |x| to(x).total_cmp(&c) != Greater),
        CmpOp::Gt => fill_mask(v, m, |x| to(x).total_cmp(&c) == Greater),
        CmpOp::Ge => fill_mask(v, m, |x| to(x).total_cmp(&c) != Less),
    }
}

/// Clear the mask bits at and past `n` (the tail of the last word), so a
/// complement never invents rows beyond the block.
#[inline]
fn zero_tail(mask: &mut [u64], n: usize) {
    if n & 63 != 0 {
        if let Some(last) = mask.last_mut() {
            *last &= (1u64 << (n & 63)) - 1;
        }
    }
}

/// `col OP const` as a physical-row mask, for null-free typed columns in
/// the same comparability class as the constant.
fn cmp_const_mask(col: &ColumnVec, op: CmpOp, val: &Datum, n: usize) -> Option<Vec<u64>> {
    if val.is_null() {
        return None;
    }
    let mut mask = vec![0u64; n.div_ceil(64)];
    match (col, const_i64(val), const_f64(val)) {
        (ColumnVec::Int32(v), Some(c), _) => cmp_mask_int(v, |x| x as i64, op, c, &mut mask),
        (ColumnVec::Int64(v), Some(c), _) => cmp_mask_int(v, |x| x, op, c, &mut mask),
        (ColumnVec::Date(v), Some(c), _) => cmp_mask_int(v, |x| x as i64, op, c, &mut mask),
        (ColumnVec::Int32(v), None, Some(c)) => cmp_mask_f64(v, |x| x as f64, op, c, &mut mask),
        (ColumnVec::Int64(v), None, Some(c)) => cmp_mask_f64(v, |x| x as f64, op, c, &mut mask),
        (ColumnVec::Date(v), None, Some(c)) => cmp_mask_f64(v, |x| x as f64, op, c, &mut mask),
        (ColumnVec::Float64(v), _, Some(c)) => cmp_mask_f64(v, |x| x, op, c, &mut mask),
        _ => return None,
    }
    Some(mask)
}

/// `col BETWEEN low AND high` as a physical-row mask (numeric classes
/// only — the same combinations `between_const_trools` runs typed).
fn between_const_mask(col: &ColumnVec, low: &Datum, high: &Datum, n: usize) -> Option<Vec<u64>> {
    let mut mask = vec![0u64; n.div_ceil(64)];
    match (col, const_i64(low), const_i64(high)) {
        (ColumnVec::Int32(v), Some(lo), Some(hi)) => {
            fill_mask(v, &mut mask, |x| (x as i64) >= lo && (x as i64) <= hi);
            return Some(mask);
        }
        (ColumnVec::Int64(v), Some(lo), Some(hi)) => {
            fill_mask(v, &mut mask, |x| x >= lo && x <= hi);
            return Some(mask);
        }
        (ColumnVec::Date(v), Some(lo), Some(hi)) => {
            fill_mask(v, &mut mask, |x| (x as i64) >= lo && (x as i64) <= hi);
            return Some(mask);
        }
        _ => {}
    }
    if let (ColumnVec::Float64(v), Some(lo), Some(hi)) = (col, const_f64(low), const_f64(high)) {
        use std::cmp::Ordering::*;
        fill_mask(v, &mut mask, |x| {
            x.total_cmp(&lo) != Less && x.total_cmp(&hi) != Greater
        });
        return Some(mask);
    }
    None
}

/// Intersect a physical-row mask with the block's selection. Dense blocks
/// walk set bits (`trailing_zeros`); filtered blocks compact the selection
/// with a branch-free conditional append.
fn mask_to_sel(mask: &[u64], block: &RowBlock) -> Vec<u32> {
    match block.sel() {
        None => {
            let mut out = Vec::with_capacity(block.phys_rows());
            for (w, &word) in mask.iter().enumerate() {
                let mut word = word;
                let base = (w as u32) << 6;
                while word != 0 {
                    out.push(base + word.trailing_zeros());
                    word &= word - 1;
                }
            }
            out
        }
        Some(sel) => {
            let mut out = vec![0u32; sel.len()];
            let mut k = 0usize;
            for &i in sel {
                out[k] = i;
                k += ((mask[(i >> 6) as usize] >> (i & 63)) & 1) as usize;
            }
            out.truncate(k);
            out
        }
    }
}

impl CompiledExpr {
    /// Word-packed two-valued evaluation over **all physical rows** of
    /// `block`, when this predicate provably yields no NULL and no error
    /// on any row. `None` means "shape not covered" — not a failure.
    fn try_mask(&self, block: &RowBlock) -> Option<Vec<u64>> {
        let n = block.phys_rows();
        match self {
            CompiledExpr::Col { pos, .. } => match block.columns().get(*pos)?.as_ref() {
                ColumnVec::Bool(v) => {
                    let mut mask = vec![0u64; n.div_ceil(64)];
                    fill_mask(v, &mut mask, |x| x);
                    Some(mask)
                }
                _ => None,
            },
            CompiledExpr::CmpColConst { op, pos, val, .. } => {
                cmp_const_mask(block.columns().get(*pos)?.as_ref(), *op, val, n)
            }
            CompiledExpr::BetweenColConst { pos, low, high, .. } => {
                between_const_mask(block.columns().get(*pos)?.as_ref(), low, high, n)
            }
            CompiledExpr::And(exprs) => {
                let (first, rest) = exprs.split_first()?;
                let mut acc = first.try_mask(block)?;
                for e in rest {
                    let m = e.try_mask(block)?;
                    for (a, b) in acc.iter_mut().zip(&m) {
                        *a &= b;
                    }
                }
                Some(acc)
            }
            CompiledExpr::Or(exprs) => {
                let (first, rest) = exprs.split_first()?;
                let mut acc = first.try_mask(block)?;
                for e in rest {
                    let m = e.try_mask(block)?;
                    for (a, b) in acc.iter_mut().zip(&m) {
                        *a |= b;
                    }
                }
                Some(acc)
            }
            CompiledExpr::Not(e) => {
                let mut m = e.try_mask(block)?;
                for w in m.iter_mut() {
                    *w = !*w;
                }
                zero_tail(&mut m, n);
                Some(m)
            }
            _ => None,
        }
    }

    /// Evaluate a WHERE predicate over `block` and return `(refined
    /// selection, fell_back)`: the physical indices (subset of the block's
    /// selection, in order) where the predicate is `true`. Errors are
    /// exactly the errors per-row filtering raises, at the same first row.
    pub fn eval_predicate_block(&self, block: &RowBlock) -> Result<(Vec<u32>, bool)> {
        // Null-free typed shapes collapse to two-valued word masks: the
        // trools below would produce exactly T_TRUE/T_FALSE with the same
        // comparisons, so the mask path is equivalence-preserving.
        if let Some(mask) = self.try_mask(block) {
            return Ok((mask_to_sel(&mask, block), false));
        }
        let ident;
        let sel: &[u32] = match block.sel() {
            Some(s) => s,
            None => {
                ident = (0..block.phys_rows() as u32).collect::<Vec<u32>>();
                &ident
            }
        };
        match self.trools(block, sel) {
            Ok(tr) => Ok((
                sel.iter()
                    .zip(tr.iter())
                    .filter(|&(_, &t)| t == T_TRUE)
                    .map(|(&i, _)| i)
                    .collect(),
                false,
            )),
            // Any internal error: re-run with exact row-at-a-time
            // semantics (values, short circuits, and first-error row).
            Err(_) => {
                let mut out = Vec::new();
                for &i in sel {
                    if self.eval_predicate(&block.row_at_phys(i as usize))? {
                        out.push(i);
                    }
                }
                Ok((out, true))
            }
        }
    }

    /// Evaluate a scalar expression over `block` into a column with one
    /// value per selected row, plus a flag telling whether the row
    /// fallback ran. Equivalent to mapping [`CompiledExpr::eval`] over the
    /// selected rows — values and errors.
    pub fn eval_column(&self, block: &RowBlock) -> Result<(ColumnVec, bool)> {
        let ident;
        let sel: &[u32] = match block.sel() {
            Some(s) => s,
            None => {
                ident = (0..block.phys_rows() as u32).collect::<Vec<u32>>();
                &ident
            }
        };
        match self.values(block, sel) {
            Ok(col) => Ok((col, false)),
            Err(_) => {
                let mut out = Vec::with_capacity(sel.len());
                for &i in sel {
                    out.push(self.eval(&block.row_at_phys(i as usize))?);
                }
                Ok((ColumnVec::from_datums(out), true))
            }
        }
    }

    /// Strict batch evaluation: one value per selected row, with **no
    /// internal row fallback**. An `Err` means "this block needs the
    /// row-at-a-time path" — it is *not* the error per-row evaluation
    /// would raise and must never be surfaced. Callers evaluating
    /// several expressions over one block (projections, join keys,
    /// aggregate arguments) use this so a failure in *any* expression
    /// falls back jointly, preserving the row-major evaluation order
    /// across expressions that decides which error surfaces first.
    pub fn eval_column_strict(&self, block: &RowBlock) -> Result<ColumnVec> {
        let ident;
        let sel: &[u32] = match block.sel() {
            Some(s) => s,
            None => {
                ident = (0..block.phys_rows() as u32).collect::<Vec<u32>>();
                &ident
            }
        };
        self.values(block, sel)
    }

    /// Three-valued truth value per selected row. An `Err` means "this
    /// block needs the row-at-a-time path", not necessarily that the row
    /// path errors — callers must fall back, never propagate.
    fn trools(&self, block: &RowBlock, sel: &[u32]) -> Result<Vec<Trool>> {
        match self {
            CompiledExpr::Const(d) => Ok(vec![datum_to_trool(d)?; sel.len()]),
            CompiledExpr::Col { pos, col } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                match block.column(*pos) {
                    ColumnVec::Bool(v) => Ok(sel
                        .iter()
                        .map(|&i| if v[i as usize] { T_TRUE } else { T_FALSE })
                        .collect()),
                    ColumnVec::Any(v) => sel
                        .iter()
                        .map(|&i| datum_to_trool(&v[i as usize]))
                        .collect(),
                    // A null-free non-bool column fails `as_bool` on every
                    // row; surface the first selected row's error.
                    other => match sel.first() {
                        None => Ok(Vec::new()),
                        Some(&i) => {
                            datum_to_trool(&other.get(i as usize))?;
                            unreachable!("non-bool datum converted to trool")
                        }
                    },
                }
            }
            CompiledExpr::CmpColConst { op, pos, col, val } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                cmp_const_trools(block.column(*pos), sel, *op, val)
            }
            CompiledExpr::BetweenColConst {
                pos,
                col,
                low,
                high,
            } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                between_const_trools(block.column(*pos), sel, low, high)
            }
            CompiledExpr::And(exprs) => {
                // Alive tracking: conjunct k is evaluated only on rows not
                // yet `false` — the exact rows the row path evaluates it
                // on. A NULL row stays alive (later conjuncts still run and
                // may error or turn it false) but can never turn true.
                let mut result = vec![T_TRUE; sel.len()];
                let mut alive_sel: Vec<u32> = sel.to_vec();
                let mut alive_slots: Vec<u32> = (0..sel.len() as u32).collect();
                for e in exprs {
                    if alive_sel.is_empty() {
                        break;
                    }
                    let tr = e.trools(block, &alive_sel)?;
                    let mut keep = 0usize;
                    for k in 0..alive_sel.len() {
                        let slot = alive_slots[k] as usize;
                        match tr[k] {
                            T_FALSE => result[slot] = T_FALSE,
                            t => {
                                if t == T_NULL {
                                    result[slot] = T_NULL;
                                }
                                alive_sel[keep] = alive_sel[k];
                                alive_slots[keep] = alive_slots[k];
                                keep += 1;
                            }
                        }
                    }
                    alive_sel.truncate(keep);
                    alive_slots.truncate(keep);
                }
                Ok(result)
            }
            CompiledExpr::Or(exprs) => {
                // Mirror of AND: a row dies once `true`; a NULL row stays
                // alive and may still turn true later.
                let mut result = vec![T_FALSE; sel.len()];
                let mut alive_sel: Vec<u32> = sel.to_vec();
                let mut alive_slots: Vec<u32> = (0..sel.len() as u32).collect();
                for e in exprs {
                    if alive_sel.is_empty() {
                        break;
                    }
                    let tr = e.trools(block, &alive_sel)?;
                    let mut keep = 0usize;
                    for k in 0..alive_sel.len() {
                        let slot = alive_slots[k] as usize;
                        match tr[k] {
                            T_TRUE => result[slot] = T_TRUE,
                            t => {
                                if t == T_NULL {
                                    result[slot] = T_NULL;
                                }
                                alive_sel[keep] = alive_sel[k];
                                alive_slots[keep] = alive_slots[k];
                                keep += 1;
                            }
                        }
                    }
                    alive_sel.truncate(keep);
                    alive_slots.truncate(keep);
                }
                Ok(result)
            }
            CompiledExpr::Not(e) => Ok(e
                .trools(block, sel)?
                .into_iter()
                .map(|t| match t {
                    T_TRUE => T_FALSE,
                    T_FALSE => T_TRUE,
                    t => t,
                })
                .collect()),
            CompiledExpr::IsNull(e) => {
                // IS NULL of a typed (null-free) column is uniformly false
                // without touching values.
                if let CompiledExpr::Col { pos, .. } = e.as_ref() {
                    if *pos < block.width() && !matches!(block.column(*pos), ColumnVec::Any(_)) {
                        return Ok(vec![T_FALSE; sel.len()]);
                    }
                }
                let vals = e.values(block, sel)?;
                Ok((0..sel.len())
                    .map(|k| {
                        if vals.get(k).is_null() {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    })
                    .collect())
            }
            CompiledExpr::Cmp { op, left, right } => {
                let l = left.values(block, sel)?;
                let r = right.values(block, sel)?;
                (0..sel.len())
                    .map(|k| {
                        Ok(match l.get(k).sql_cmp(&r.get(k))? {
                            None => T_NULL,
                            Some(ord) => {
                                if cmp_holds(*op, ord) {
                                    T_TRUE
                                } else {
                                    T_FALSE
                                }
                            }
                        })
                    })
                    .collect()
            }
            CompiledExpr::Between { expr, low, high } => {
                let v = expr.values(block, sel)?;
                let lo = low.values(block, sel)?;
                let hi = high.values(block, sel)?;
                (0..sel.len())
                    .map(|k| datum_to_trool(&between_result(&v.get(k), &lo.get(k), &hi.get(k))?))
                    .collect()
            }
            CompiledExpr::InConstSet { input, set } => {
                if let CompiledExpr::Col { pos, col } = input.as_ref() {
                    if *pos >= block.width() {
                        return Err(Error::Execution(format!(
                            "row too short for {col} at {pos}"
                        )));
                    }
                    let c = block.column(*pos);
                    return sel
                        .iter()
                        .map(|&i| datum_to_trool(&set.probe(&c.get(i as usize))?))
                        .collect();
                }
                let vals = input.values(block, sel)?;
                (0..sel.len())
                    .map(|k| datum_to_trool(&set.probe(&vals.get(k))?))
                    .collect()
            }
            // The ordered `IN`-walk short-circuits per row (break on match,
            // positional NULLs/errors); evaluate it with row semantics
            // directly rather than approximating column-wise.
            CompiledExpr::InList { .. } => sel
                .iter()
                .map(|&i| datum_to_trool(&self.eval(&block.row_at_phys(i as usize))?))
                .collect(),
            // Value-producing or always-erroring nodes used in predicate
            // position: evaluate as values, then convert (errors included).
            CompiledExpr::UnboundCol(_)
            | CompiledExpr::UnboundParam(_)
            | CompiledExpr::Arith { .. } => {
                let vals = self.values(block, sel)?;
                (0..sel.len())
                    .map(|k| datum_to_trool(&vals.get(k)))
                    .collect()
            }
        }
    }

    /// Value per selected row. Same error contract as [`Self::trools`].
    fn values(&self, block: &RowBlock, sel: &[u32]) -> Result<ColumnVec> {
        match self {
            CompiledExpr::Const(d) => Ok(ColumnVec::broadcast(d, sel.len())),
            CompiledExpr::Col { pos, col } => {
                if *pos >= block.width() {
                    return Err(Error::Execution(format!(
                        "row too short for {col} at {pos}"
                    )));
                }
                Ok(block.column(*pos).gather(sel))
            }
            CompiledExpr::UnboundCol(c) => Err(Error::Execution(format!("unbound column {c}"))),
            CompiledExpr::UnboundParam(0) => {
                Err(Error::Execution("parameter numbers are 1-based".into()))
            }
            CompiledExpr::UnboundParam(n) => {
                Err(Error::Execution(format!("unbound parameter ${n}")))
            }
            CompiledExpr::Arith { op, left, right } => {
                let l = left.values(block, sel)?;
                let r = right.values(block, sel)?;
                let mut out = Vec::with_capacity(sel.len());
                for k in 0..sel.len() {
                    out.push(l.get(k).arith(*op, &r.get(k))?);
                }
                Ok(ColumnVec::from_datums(out))
            }
            // Predicate-shaped nodes in value position produce a boolean
            // column through the trool path.
            CompiledExpr::CmpColConst { .. }
            | CompiledExpr::Cmp { .. }
            | CompiledExpr::And(_)
            | CompiledExpr::Or(_)
            | CompiledExpr::Not(_)
            | CompiledExpr::IsNull(_)
            | CompiledExpr::BetweenColConst { .. }
            | CompiledExpr::Between { .. }
            | CompiledExpr::InConstSet { .. }
            | CompiledExpr::InList { .. } => Ok(trools_to_column(&self.trools(block, sel)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::colref::ColRef;
    use crate::compile::compile;
    use crate::eval::EvalContext;
    use mpp_common::value::ArithOp;
    use mpp_common::{row, Row};

    fn ctx3() -> EvalContext<'static> {
        EvalContext::from_columns(&[
            ColRef::new(1, "a"),
            ColRef::new(2, "b"),
            ColRef::new(3, "c"),
        ])
    }

    fn col(id: u32) -> Expr {
        Expr::col(ColRef::new(id, "c"))
    }

    /// Rows covering typed columns, NULLs, and mixed types.
    fn mixed_rows() -> Vec<Row> {
        vec![
            row![1i32, 10i64, "x"],
            Row::new(vec![Datum::Int32(2), Datum::Null, Datum::str("y")]),
            row![3i32, 30i64, "z"],
            Row::new(vec![Datum::Int32(4), Datum::Int64(40), Datum::Null]),
            row![5i32, 50i64, "x"],
        ]
    }

    /// The reference: filter with the per-row API.
    fn row_filter(c: &CompiledExpr, rows: &[Row]) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            if c.eval_predicate(r)? {
                out.push(i as u32);
            }
        }
        Ok(out)
    }

    fn assert_block_matches_rows(e: &Expr, rows: &[Row]) {
        let c = compile(e, &ctx3());
        let block = RowBlock::from_rows(rows, 3);
        let batch = c.eval_predicate_block(&block);
        let byrow = row_filter(&c, rows);
        match (batch, byrow) {
            (Ok((bsel, _)), Ok(rsel)) => assert_eq!(bsel, rsel, "selection mismatch for {e:?}"),
            (Err(be), Err(re)) => {
                assert_eq!(be.to_string(), re.to_string(), "error mismatch for {e:?}")
            }
            (b, r) => panic!("outcome mismatch for {e:?}: batch={b:?} rows={r:?}"),
        }
    }

    #[test]
    fn typed_cmp_between_in_match_row_path() {
        let rows = mixed_rows();
        let shapes = vec![
            Expr::lt(col(1), Expr::lit(4i32)),
            Expr::gt(col(1), Expr::lit(2.5f64)),
            Expr::eq(col(3), Expr::lit("x")),
            Expr::between(col(1), Expr::lit(2i32), Expr::lit(4i32)),
            Expr::in_list(col(1), vec![Expr::lit(1i32), Expr::lit(5i32)]),
            Expr::in_list(col(3), vec![Expr::lit("x"), Expr::lit("q")]),
        ];
        for e in shapes {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn null_columns_and_consts_match_row_path() {
        let rows = mixed_rows();
        let shapes = vec![
            Expr::eq(col(2), Expr::lit(30i64)),       // Any column probe
            Expr::eq(col(1), Expr::Lit(Datum::Null)), // NULL const
            Expr::IsNull(Box::new(col(2))),
            Expr::Not(Box::new(Expr::IsNull(Box::new(col(3))))),
            Expr::between(col(2), Expr::lit(10i64), Expr::lit(40i64)),
        ];
        for e in shapes {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn and_or_alive_tracking_matches_short_circuit() {
        let rows = mixed_rows();
        let shapes = vec![
            Expr::and(vec![
                Expr::lt(col(1), Expr::lit(4i32)),
                Expr::gt(col(2), Expr::lit(5i64)),
            ]),
            Expr::or(vec![
                Expr::eq(col(3), Expr::lit("x")),
                Expr::lt(col(1), Expr::lit(2i32)),
            ]),
            // NULL in the middle of an AND: rows stay alive, never true.
            Expr::and(vec![
                Expr::eq(col(2), Expr::lit(40i64)),
                Expr::gt(col(1), Expr::lit(0i32)),
            ]),
        ];
        for e in shapes {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn short_circuit_masks_batch_error() {
        // a != 0 AND 10/a > 1: the row path never divides where a == 0.
        // With a zero filtered out by the first conjunct the batch path
        // must agree (alive tracking skips the dead row).
        let rows = vec![
            row![2i32, 0i64, "x"],
            row![0i32, 0i64, "x"],
            row![10i32, 0i64, "x"],
        ];
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::lit(10i32)),
            right: Box::new(col(1)),
        };
        let e = Expr::and(vec![
            Expr::Not(Box::new(Expr::eq(col(1), Expr::lit(0i32)))),
            Expr::gt(div, Expr::lit(1i32)),
        ]);
        assert_block_matches_rows(&e, &rows);
    }

    #[test]
    fn genuine_errors_surface_identically() {
        let rows = vec![row![1i32, 1i64, "x"], row![0i32, 2i64, "y"]];
        // Division by zero reached on row 1.
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::lit(10i32)),
            right: Box::new(col(1)),
        };
        assert_block_matches_rows(&Expr::gt(div, Expr::lit(0i32)), &rows);
        // Cross-class comparison errors.
        assert_block_matches_rows(&Expr::eq(col(1), Expr::lit("nope")), &rows);
        // Unbound column.
        assert_block_matches_rows(&Expr::lt(col(99), Expr::lit(1i32)), &rows);
        // Cross-class IN probe.
        assert_block_matches_rows(
            &Expr::in_list(col(3), vec![Expr::lit(1i32), Expr::lit(2i32)]),
            &rows,
        );
    }

    #[test]
    fn eval_column_matches_row_eval() {
        let rows = mixed_rows();
        let exprs = vec![
            col(1),
            col(2),
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(col(1)),
                right: Box::new(Expr::lit(100i32)),
            },
            Expr::lt(col(1), Expr::lit(3i32)),
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(col(1)),
                right: Box::new(col(2)), // NULL row → NULL result
            },
        ];
        let block = RowBlock::from_rows(&rows, 3);
        for e in exprs {
            let c = compile(&e, &ctx3());
            let (vals, _) = c.eval_column(&block).unwrap();
            assert_eq!(vals.len(), rows.len());
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(vals.get(i), c.eval(r).unwrap(), "{e:?} row {i}");
            }
        }
    }

    #[test]
    fn eval_column_under_selection() {
        let rows = mixed_rows();
        let block = RowBlock::from_rows(&rows, 3).with_sel(vec![0, 2, 4]);
        let c = compile(&col(1), &ctx3());
        let (vals, fell_back) = c.eval_column(&block).unwrap();
        assert!(!fell_back);
        assert_eq!(vals.len(), 3);
        assert_eq!(vals.get(1), Datum::Int32(3));
    }

    #[test]
    fn word_mask_matches_row_path_across_word_boundaries() {
        // 150 rows spans three mask words with a ragged tail; every op,
        // plus NOT (tail complement) and nested AND/OR, must agree with
        // the per-row reference bit for bit.
        let rows: Vec<Row> = (0..150)
            .map(|i| row![i % 13, (i * 7 % 29) as i64, "s"])
            .collect();
        let ops = [
            Expr::eq(col(1), Expr::lit(5i32)),
            Expr::cmp(CmpOp::Ne, col(1), Expr::lit(5i32)),
            Expr::lt(col(1), Expr::lit(6i32)),
            Expr::le(col(1), Expr::lit(6i32)),
            Expr::gt(col(2), Expr::lit(14i64)),
            Expr::ge(col(2), Expr::lit(14i64)),
            Expr::between(col(2), Expr::lit(3i64), Expr::lit(21i64)),
            Expr::Not(Box::new(Expr::lt(col(1), Expr::lit(6i32)))),
            Expr::and(vec![
                Expr::gt(col(1), Expr::lit(2i32)),
                Expr::Not(Box::new(Expr::eq(col(2), Expr::lit(0i64)))),
            ]),
            Expr::or(vec![
                Expr::lt(col(1), Expr::lit(1i32)),
                Expr::gt(col(2), Expr::lit(25i64)),
            ]),
            // Float constant against an integer column.
            Expr::gt(col(1), Expr::lit(5.5f64)),
        ];
        for e in ops {
            assert_block_matches_rows(&e, &rows);
        }
    }

    #[test]
    fn word_mask_compacts_existing_selection() {
        let rows: Vec<Row> = (0..100).map(|i| row![i, 0i64, "s"]).collect();
        let sel: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        let block = RowBlock::from_rows(&rows, 3).with_sel(sel.clone());
        let c = compile(&Expr::lt(col(1), Expr::lit(50i32)), &ctx3());
        let (got, fell_back) = c.eval_predicate_block(&block).unwrap();
        assert!(!fell_back);
        let want: Vec<u32> = sel.into_iter().filter(|&i| i < 50).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn predicate_block_respects_existing_selection() {
        let rows = mixed_rows();
        let block = RowBlock::from_rows(&rows, 3).with_sel(vec![1, 2, 3, 4]);
        let c = compile(&Expr::lt(col(1), Expr::lit(4i32)), &ctx3());
        let (sel, fell_back) = c.eval_predicate_block(&block).unwrap();
        assert!(!fell_back);
        // Rows 1 (a=2) and 2 (a=3) pass; row 0 was pre-filtered out.
        assert_eq!(sel, vec![1, 2]);
    }
}
