//! Property tests for the interval-set algebra — the foundation of
//! partition constraints and the selection function `f*_T`.

use mpp_common::Datum;
use mpp_expr::interval::{HighBound, Interval, LowBound};
use mpp_expr::IntervalSet;
use proptest::prelude::*;

fn d(v: i32) -> Datum {
    Datum::Int32(v)
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-50i32..50, -50i32..50, any::<bool>(), any::<bool>(), 0u8..4).prop_map(
        |(a, b, li, hi, unbounded)| {
            let (lo, hi_v) = (a.min(b), a.max(b));
            let low = match unbounded {
                1 | 3 => LowBound::NegInf,
                _ if li => LowBound::Incl(d(lo)),
                _ => LowBound::Excl(d(lo)),
            };
            let high = match unbounded {
                2 | 3 => HighBound::PosInf,
                _ if hi => HighBound::Incl(d(hi_v)),
                _ => HighBound::Excl(d(hi_v)),
            };
            Interval::new(low, high)
        },
    )
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(), 0..5).prop_map(IntervalSet::from_intervals)
}

/// Probe values covering the full domain plus the boundaries.
fn probes() -> Vec<Datum> {
    (-55..=55).map(d).collect()
}

proptest! {
    /// Normalization is idempotent and membership-preserving.
    #[test]
    fn normalization_preserves_membership(ivs in prop::collection::vec(arb_interval(), 0..5)) {
        let set = IntervalSet::from_intervals(ivs.clone());
        for v in probes() {
            let direct = ivs.iter().any(|i| i.contains(&v));
            prop_assert_eq!(set.contains(&v), direct, "value {}", v);
        }
        let renorm = IntervalSet::from_intervals(set.intervals().to_vec());
        prop_assert_eq!(renorm, set);
    }

    /// Union membership is the disjunction of memberships.
    #[test]
    fn union_is_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        for v in probes() {
            prop_assert_eq!(u.contains(&v), a.contains(&v) || b.contains(&v));
        }
    }

    /// Intersection membership is the conjunction of memberships.
    #[test]
    fn intersect_is_pointwise_and(a in arb_set(), b in arb_set()) {
        let i = a.intersect(&b);
        for v in probes() {
            prop_assert_eq!(i.contains(&v), a.contains(&v) && b.contains(&v));
        }
    }

    /// Complement membership is the negation; double complement is
    /// identity.
    #[test]
    fn complement_is_pointwise_not(a in arb_set()) {
        let c = a.complement();
        for v in probes() {
            prop_assert_eq!(c.contains(&v), !a.contains(&v));
        }
        prop_assert_eq!(c.complement(), a);
    }

    /// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B.
    #[test]
    fn de_morgan(a in arb_set(), b in arb_set()) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    /// Union and intersection are commutative and associative (canonical
    /// forms are equal).
    #[test]
    fn algebra_laws(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        // Absorption.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
    }

    /// overlaps() agrees with non-empty intersection.
    #[test]
    fn overlaps_matches_intersection(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
    }

    /// Intervals never contain NULL.
    #[test]
    fn null_is_never_contained(a in arb_set()) {
        prop_assert!(!a.contains(&Datum::Null));
    }
}
