//! The soundness property of interval derivation (the heart of `f*_T`,
//! paper §2.1): for any predicate φ over the key column and any key value
//! v, if a row with key = v satisfies φ then v is in the derived set.
//! Partition pruning built on this can never lose rows.

// `--cfg ci_quick` (set via RUSTFLAGS by time-bounded CI lanes) shrinks
// the proptest case count; the cfg is probed, not declared, so silence
// the unexpected-cfgs lint.
#![allow(unexpected_cfgs)]

/// Full case count normally; an eighth (floor 32) under `ci_quick`.
fn prop_cases(full: u32) -> u32 {
    if cfg!(ci_quick) {
        (full / 8).max(32)
    } else {
        full
    }
}

use mpp_common::{Datum, Row};
use mpp_expr::analysis::derive_interval_set;
use mpp_expr::{eval, ColRef, EvalContext, Expr};
use proptest::prelude::*;

fn key() -> ColRef {
    ColRef::new(1, "pk")
}

/// Random predicates over the key column and constants (the statically
/// analyzable fragment plus noise the analysis must widen around).
fn arb_pred() -> impl Strategy<Value = Expr> {
    let lit = -30i32..30;
    let leaf = prop_oneof![
        (
            prop_oneof![
                Just(mpp_expr::CmpOp::Eq),
                Just(mpp_expr::CmpOp::Ne),
                Just(mpp_expr::CmpOp::Lt),
                Just(mpp_expr::CmpOp::Le),
                Just(mpp_expr::CmpOp::Gt),
                Just(mpp_expr::CmpOp::Ge),
            ],
            lit.clone(),
            any::<bool>()
        )
            .prop_map(|(op, v, flip)| {
                if flip {
                    Expr::cmp(op, Expr::lit(v), Expr::col(key()))
                } else {
                    Expr::cmp(op, Expr::col(key()), Expr::lit(v))
                }
            }),
        (lit.clone(), lit.clone()).prop_map(|(a, b)| Expr::between(
            Expr::col(key()),
            Expr::lit(a.min(b)),
            Expr::lit(a.max(b))
        )),
        (prop::collection::vec(lit.clone(), 1..4), any::<bool>()).prop_map(|(vals, neg)| {
            Expr::InList {
                expr: Box::new(Expr::col(key())),
                list: vals.into_iter().map(Expr::lit).collect(),
                negated: neg,
            }
        }),
        Just(Expr::IsNull(Box::new(Expr::col(key())))),
        Just(Expr::lit(true)),
        Just(Expr::lit(false)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Or),
            inner.prop_map(Expr::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(512)))]

    /// Soundness: a satisfying key value is always in the derived set.
    #[test]
    fn derivation_is_sound(pred in arb_pred(), v in -40i32..40) {
        let derived = derive_interval_set(&pred, &key(), None);
        let ctx = EvalContext::from_columns(&[key()]);
        let row = Row::new(vec![Datum::Int32(v)]);
        let satisfied = eval(&pred, &row, &ctx)
            .unwrap()
            .as_bool()
            .unwrap()
            .unwrap_or(false);
        if satisfied {
            prop_assert!(
                derived.set.contains(&Datum::Int32(v)),
                "value {v} satisfies {pred} but is outside {}",
                derived.set
            );
        }
    }

    /// NULL soundness: if a NULL key satisfies the predicate,
    /// `null_possible` must be set (so default partitions stay selected).
    #[test]
    fn null_possibility_is_sound(pred in arb_pred()) {
        let derived = derive_interval_set(&pred, &key(), None);
        let ctx = EvalContext::from_columns(&[key()]);
        let row = Row::new(vec![Datum::Null]);
        let satisfied = eval(&pred, &row, &ctx)
            .unwrap()
            .as_bool()
            .unwrap()
            .unwrap_or(false);
        if satisfied {
            prop_assert!(derived.null_possible, "NULL satisfies {pred}");
        }
    }

    /// Exactness: when the analysis claims exactness, the set is not
    /// merely a superset — non-members never satisfy the predicate.
    #[test]
    fn exactness_claim_holds(pred in arb_pred(), v in -40i32..40) {
        let derived = derive_interval_set(&pred, &key(), None);
        if !derived.exact {
            return Ok(());
        }
        let ctx = EvalContext::from_columns(&[key()]);
        let row = Row::new(vec![Datum::Int32(v)]);
        let satisfied = eval(&pred, &row, &ctx)
            .unwrap()
            .as_bool()
            .unwrap()
            .unwrap_or(false);
        prop_assert_eq!(
            satisfied,
            derived.set.contains(&Datum::Int32(v)),
            "exactness violated for {} at {}", pred, v
        );
    }

    /// Simplification never changes which key values satisfy a predicate.
    #[test]
    fn simplify_preserves_semantics(pred in arb_pred(), v in -40i32..40) {
        let simplified = mpp_expr::simplify(&pred);
        let ctx = EvalContext::from_columns(&[key()]);
        let row = Row::new(vec![Datum::Int32(v)]);
        let before = eval(&pred, &row, &ctx).unwrap();
        let after = eval(&simplified, &row, &ctx).unwrap();
        // Boolean results must agree as filters (unknown ≡ false).
        let b = before.as_bool().unwrap().unwrap_or(false);
        let a = after.as_bool().unwrap().unwrap_or(false);
        prop_assert_eq!(b, a, "{} vs {}", pred, simplified);
    }

    /// Parameter binding: deriving with params equals deriving the
    /// substituted predicate.
    #[test]
    fn param_binding_matches_substitution(v in -30i32..30, probe in -40i32..40) {
        let pred = Expr::le(Expr::col(key()), Expr::Param(1));
        let params = [Datum::Int32(v)];
        let with_params = derive_interval_set(&pred, &key(), Some(&params));
        let substituted = Expr::le(Expr::col(key()), Expr::lit(v));
        let direct = derive_interval_set(&substituted, &key(), None);
        prop_assert_eq!(
            with_params.set.contains(&Datum::Int32(probe)),
            direct.set.contains(&Datum::Int32(probe))
        );
    }
}
