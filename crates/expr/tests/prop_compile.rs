//! Compiled ≡ interpreted: for any expression, any row (NULLs, short rows,
//! mixed types) and any parameter bindings, `compile(e, ctx).eval(row)`
//! returns exactly what `eval(e, row, ctx)` returns — the same `Datum` or
//! an error of the same kind, raised at the same point in the evaluation
//! order. This is the license for the executor to swap the interpreter out
//! of its per-row hot paths.

// `--cfg ci_quick` (set via RUSTFLAGS by time-bounded CI lanes) shrinks
// the proptest case count; the cfg is probed, not declared, so silence
// the unexpected-cfgs lint.
#![allow(unexpected_cfgs)]

/// Full case count normally; an eighth (floor 32) under `ci_quick`.
fn prop_cases(full: u32) -> u32 {
    if cfg!(ci_quick) {
        (full / 8).max(32)
    } else {
        full
    }
}

use mpp_common::value::ArithOp;
use mpp_common::{Datum, Row};
use mpp_expr::{compile, eval, eval_predicate, CmpOp, ColRef, EvalContext, Expr};
use proptest::prelude::*;

fn cols() -> Vec<ColRef> {
    vec![
        ColRef::new(1, "a"),
        ColRef::new(2, "b"),
        ColRef::new(3, "c"),
    ]
}

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        (-20i32..20).prop_map(Datum::Int32),
        (-20i64..20).prop_map(Datum::Int64),
        (-8i32..8).prop_map(|v| Datum::Float64(f64::from(v) * 0.5)),
        (0usize..5).prop_map(|i| Datum::str(["a", "b", "c", "d", "e"][i])),
        (-10i32..10).prop_map(Datum::Date),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_arith_op() -> impl Strategy<Value = ArithOp> {
    prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
        Just(ArithOp::Mod),
    ]
}

/// Arbitrary expressions over three bound columns, an unbound column (id
/// 9), literals of every type, and parameters $1..$3 (of which only some
/// are bound at eval time).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1u32..4).prop_map(|id| Expr::col(ColRef::new(id, "x"))),
        Just(Expr::col(ColRef::new(9, "unbound"))),
        arb_datum().prop_map(Expr::Lit),
        (1u32..4).prop_map(Expr::Param),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (arb_cmp_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::cmp(op, l, r)),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Or),
            inner.clone().prop_map(Expr::not),
            inner.clone().prop_map(|e| Expr::IsNull(Box::new(e))),
            (arb_arith_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Arith {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(e, lo, hi)| Expr::between(e, lo, hi)),
            // General IN: arbitrary subexpression elements.
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 0..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            // Literal-only IN: the shape the hash-set fast path compiles.
            (
                inner,
                prop::collection::vec(arb_datum().prop_map(Expr::Lit), 1..6),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(1024)))]

    /// The compiled form returns the interpreter's exact result: same
    /// datum, or an error of the same kind (short rows, unbound columns
    /// and parameters, division by zero, incomparable types).
    #[test]
    fn compiled_matches_interpreted(
        e in arb_expr(),
        row in prop::collection::vec(arb_datum(), 0..4),
        params in prop::collection::vec(arb_datum(), 0..3),
    ) {
        let cols = cols();
        let ctx = EvalContext::from_columns(&cols).with_params(&params);
        let row = Row::new(row);
        let interpreted = eval(&e, &row, &ctx);
        let compiled = compile(&e, &ctx);
        let got = compiled.eval(&row);
        match (&interpreted, &got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "value divergence on {}", e),
            (Err(a), Err(b)) => prop_assert_eq!(
                a.kind(),
                b.kind(),
                "error-kind divergence on {}: {} vs {}", e, a, b
            ),
            _ => prop_assert!(
                false,
                "Ok/Err divergence on {}: interpreted {:?}, compiled {:?}",
                e, interpreted, got
            ),
        }
    }

    /// Filter semantics agree too (`unknown` never passes either way).
    #[test]
    fn compiled_predicate_matches_interpreted(
        e in arb_expr(),
        row in prop::collection::vec(arb_datum(), 0..4),
        params in prop::collection::vec(arb_datum(), 0..3),
    ) {
        let cols = cols();
        let ctx = EvalContext::from_columns(&cols).with_params(&params);
        let row = Row::new(row);
        let interpreted = eval_predicate(&e, &row, &ctx);
        let got = compile(&e, &ctx).eval_predicate(&row);
        match (&interpreted, &got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "predicate divergence on {}", e),
            (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind(), "on {}", e),
            _ => prop_assert!(
                false,
                "Ok/Err divergence on {}: {:?} vs {:?}", e, interpreted, got
            ),
        }
    }

    /// Compiling is a pure prepare step: evaluating the same compiled
    /// expression over many rows equals interpreting it over those rows.
    #[test]
    fn one_compile_many_rows(
        e in arb_expr(),
        rows in prop::collection::vec(prop::collection::vec(arb_datum(), 3..4), 1..8),
        params in prop::collection::vec(arb_datum(), 0..3),
    ) {
        let cols = cols();
        let ctx = EvalContext::from_columns(&cols).with_params(&params);
        let compiled = compile(&e, &ctx);
        for vals in rows {
            let row = Row::new(vals);
            let interpreted = eval(&e, &row, &ctx);
            let got = compiled.eval(&row);
            match (&interpreted, &got) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "on {}", e),
                (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind(), "on {}", e),
                _ => prop_assert!(false, "on {}: {:?} vs {:?}", e, interpreted, got),
            }
        }
    }
}
