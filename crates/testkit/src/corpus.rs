//! The checked-in regression corpus: minimized reproducers under
//! `testkit/corpus/*.case` at the repository root.
//!
//! Every file is one s-expression [`Case`] (see [`crate::sexp`]) with
//! leading `;` comment lines describing the failure it reproduces. The
//! corpus is replayed across all engine combos by `tests/corpus_replay.rs`
//! on every test run, so a once-shrunk bug can never quietly return.

use crate::case::Case;
use mpp_common::{Error, Result};
use std::path::{Path, PathBuf};

/// `testkit/corpus/` at the repository root, resolved relative to this
/// crate so it works from any test working directory.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../testkit/corpus")
}

/// Load every `*.case` file, sorted by file name for determinism.
pub fn load_all() -> Result<Vec<(String, Case)>> {
    load_dir(&corpus_dir())
}

/// Load every `*.case` file from a specific directory.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Case)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        // A missing corpus directory simply means no reproducers yet.
        Err(_) => return Ok(out),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "case").unwrap_or(false))
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| Error::Internal(format!("read {}: {e}", path.display())))?;
        let case = Case::decode(&text).map_err(|e| Error::Parse(format!("{name}: {e}")))?;
        out.push((name, case));
    }
    Ok(out)
}

/// Write a case as `<name>.case` with a `;`-comment header, creating the
/// directory if needed. Returns the path written.
pub fn save(dir: &Path, name: &str, case: &Case, header: &str) -> Result<PathBuf> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::Internal(format!("mkdir {}: {e}", dir.display())))?;
    let path = dir.join(format!("{name}.case"));
    let mut text = String::new();
    for line in header.lines() {
        text.push_str("; ");
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&case.encode());
    std::fs::write(&path, &text)
        .map_err(|e| Error::Internal(format!("write {}: {e}", path.display())))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("mpp-testkit-corpus-{}", std::process::id()));
        let case = crate::gen::gen_case(3);
        save(&dir, "t", &case, "failure: example\nsecond line").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "t.case");
        assert_eq!(loaded[0].1, case);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_empty_corpus() {
        assert!(load_dir(Path::new("/nonexistent/corpus/dir"))
            .unwrap()
            .is_empty());
    }
}
