//! Seeded random workload generation.
//!
//! One seed deterministically produces one [`Case`]: tables with single-
//! and multi-level range/list partitioning (with DEFAULT partitions),
//! seeded rows, and an action stream interleaving SELECTs (filters with
//! AND/OR/BETWEEN/IN/NULLs, equi- and non-equi joins up to three-way for
//! the join-order enumerator, aggregates, prepared-statement parameters),
//! INSERTs, ANALYZE and ALTER TABLE ADD/DROP PARTITION — including
//! deliberate negative actions (dropping unknown partitions, inserting
//! unroutable rows) so error kinds get diffed too.
//!
//! The generator keeps a shadow [`Oracle`] in sync with the actions it
//! emits, so data and DDL stay valid against the *evolving* piece set
//! while staying independent of the engine's catalog.

use crate::case::{
    Action, AggCallSpec, AggSpec, AlterKind, Case, ColId, ColTy, JoinSpec, LevelSpec, Operand,
    PredSpec, QuerySpec, TableSpec, Val,
};
use crate::oracle::{Oracle, RefPiece};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: &[&str] = &["a", "b", "c", "d", "e", "f", "g", "h"];
const CMP_OPS: &[&str] = &["=", "<>", "<", "<=", ">", ">="];
/// Ops whose f*_T derivation is exact (no `<>`).
const STATIC_OPS: &[&str] = &["=", "<", "<=", ">", ">="];

/// Generate the case for one seed.
pub fn gen_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = &mut rng;

    let segments = g.gen_range(2usize..=4);
    let n_tables = g.gen_range(1usize..=3);
    let mut tables = Vec::with_capacity(n_tables);
    let mut shadow = Oracle::new();
    for t in 0..n_tables {
        let spec = gen_table(g, t);
        shadow.create_table(&spec).expect("generated names unique");
        shadow
            .insert(&spec.name, &spec.rows)
            .expect("generated rows route");
        tables.push(spec);
    }

    let mut alter_counter = 0u32;
    let n_actions = g.gen_range(4usize..=10);
    let mut actions = Vec::with_capacity(n_actions);
    for _ in 0..n_actions {
        let roll = g.gen_range(0u32..100);
        let action = if roll < 20 {
            gen_alter(g, &tables, &mut shadow, &mut alter_counter)
        } else if roll < 28 {
            // ANALYZE between queries: statistics may switch the optimizer
            // between plans, never change results.
            Some(Action::Analyze {
                table: g.gen_range(0usize..tables.len()),
            })
        } else if roll < 50 {
            gen_insert(g, &tables, &mut shadow)
        } else {
            Some(Action::Query(Box::new(gen_query(g, &tables, &shadow))))
        };
        match action {
            Some(a) => actions.push(a),
            // Fall back to a query when no alter/insert is possible.
            None => actions.push(Action::Query(Box::new(gen_query(g, &tables, &shadow)))),
        }
    }

    Case {
        seed,
        segments,
        // Generated cases always exercise the full adaptive axis; the
        // shrinker pins one setting only when a failure reproduces there.
        adaptive: None,
        tables,
        actions,
    }
}

fn gen_table(g: &mut StdRng, idx: usize) -> TableSpec {
    let n_levels = match g.gen_range(0u32..100) {
        0..=14 => 0,
        15..=69 => 1,
        _ => 2,
    };
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        if g.gen_range(0u32..100) < 60 {
            let every = *pick(g, &[5i64, 10, 20]);
            let start = g.gen_range(-2i64..=2) * every;
            let count = g.gen_range(2u32..=6);
            levels.push(LevelSpec::Range {
                start,
                every,
                count,
            });
        } else {
            // Partition a prefix of the vocabulary into 2..=4 groups.
            let used = g.gen_range(3usize..=VOCAB.len());
            let n_groups = g.gen_range(2usize..=4.min(used));
            let mut groups: Vec<Vec<String>> = vec![Vec::new(); n_groups];
            for (i, word) in VOCAB[..used].iter().enumerate() {
                groups[i % n_groups].push((*word).to_string());
            }
            levels.push(LevelSpec::List {
                groups,
                has_default: g.gen_range(0u32..100) < 50,
            });
        }
    }
    let mut spec = TableSpec {
        name: format!("t{idx}"),
        levels,
        rows: Vec::new(),
    };
    let n_rows = g.gen_range(0usize..=60);
    let mut next_id = 1i64;
    for _ in 0..n_rows {
        let row = gen_row(g, &spec, &mut next_id, false);
        spec.rows.push(row);
    }
    spec
}

/// Generate one routable row for `spec`'s *creation-time* levels (used
/// for the initial load; mid-workload inserts use the shadow oracle's
/// live pieces instead).
fn gen_row(g: &mut StdRng, spec: &TableSpec, next_id: &mut i64, force_uncovered: bool) -> Vec<Val> {
    let mut row = vec![Val::Int(*next_id)];
    *next_id += 1;
    for level in &spec.levels {
        row.push(match level {
            LevelSpec::Range {
                start,
                every,
                count,
            } => {
                let end = start + every * (*count as i64);
                if force_uncovered {
                    Val::Int(end + g.gen_range(1i64..=20))
                } else {
                    Val::Int(g.gen_range(*start..end))
                }
            }
            LevelSpec::List {
                groups,
                has_default,
            } => {
                if force_uncovered || (*has_default && g.gen_range(0u32..100) < 15) {
                    Val::Str(format!("z{}", g.gen_range(0u32..3)))
                } else {
                    let flat: Vec<&String> = groups.iter().flatten().collect();
                    Val::Str(pick(g, &flat).to_string())
                }
            }
        });
    }
    row.push(gen_v(g));
    row.push(gen_s(g));
    row
}

fn gen_v(g: &mut StdRng) -> Val {
    // High NULL weight on purpose: nullable columns now keep their typed
    // representation (validity bitmaps), and the differential suites must
    // exercise the 3VL mask/agg/hash kernels, not just null-free lanes.
    if g.gen_range(0u32..100) < 40 {
        Val::Null
    } else {
        Val::Int(g.gen_range(-5i64..15))
    }
}

fn gen_s(g: &mut StdRng) -> Val {
    if g.gen_range(0u32..100) < 35 {
        Val::Null
    } else {
        Val::Str(pick(g, VOCAB).to_string())
    }
}

fn pick<'a, T>(g: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[g.gen_range(0usize..items.len())]
}

/// Generate an ALTER against the live level-0 piece set; ~20% of emitted
/// alters are deliberate negatives (unknown names, duplicates).
fn gen_alter(
    g: &mut StdRng,
    tables: &[TableSpec],
    shadow: &mut Oracle,
    counter: &mut u32,
) -> Option<Action> {
    let candidates: Vec<usize> = (0..tables.len())
        .filter(|&t| !tables[t].levels.is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let t = *pick(g, &candidates);
    let table = &tables[t];
    let live = shadow.table(&table.name).ok()?.levels[0].pieces.clone();
    let is_range = matches!(table.levels[0], LevelSpec::Range { .. });

    let roll = g.gen_range(0u32..100);
    let kind = if roll < 10 {
        // Negative: drop a partition that does not exist.
        AlterKind::Drop {
            name: format!("nosuch{}", g.gen_range(0u32..100)),
        }
    } else if roll < 20 && !live.is_empty() {
        // Negative: re-add an existing piece name.
        let name = pick(g, &live).name().to_string();
        if is_range {
            AlterKind::AddRange {
                name,
                lo: 1000,
                hi: 1010,
            }
        } else {
            AlterKind::AddList {
                name,
                vals: vec![format!("q{}", g.gen_range(0u32..10))],
            }
        }
    } else if roll < 55 {
        // Add a fresh piece past the current coverage.
        *counter += 1;
        if is_range {
            let max_hi = live
                .iter()
                .filter_map(|p| match p {
                    RefPiece::Range { hi, .. } => Some(*hi),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let width = g.gen_range(1i64..=3) * 10;
            AlterKind::AddRange {
                name: format!("a{counter}"),
                lo: max_hi,
                hi: max_hi + width,
            }
        } else {
            AlterKind::AddList {
                name: format!("a{counter}"),
                vals: vec![format!("n{counter}")],
            }
        }
    } else {
        // Drop an existing piece (occasionally the last one → error).
        AlterKind::Drop {
            name: pick(g, &live).name().to_string(),
        }
    };
    // Keep the shadow in sync; errors are fine — the harness diffs them.
    let _ = shadow.alter(&table.name, &kind);
    Some(Action::Alter { table: t, kind })
}

fn gen_insert(g: &mut StdRng, tables: &[TableSpec], shadow: &mut Oracle) -> Option<Action> {
    let t = g.gen_range(0usize..tables.len());
    let table = &tables[t];
    let live = shadow.table(&table.name).ok()?.clone();
    let max_id = live
        .rows
        .iter()
        .filter_map(|(r, _)| r.values().first().and_then(|d| d.as_i64().ok()))
        .max()
        .unwrap_or(0);
    let mut next_id = max_id + 1;

    // ~12%: a single deliberately unroutable row (expected
    // no_matching_partition), when the live pieces leave a gap.
    if g.gen_range(0u32..100) < 12 {
        if let Some(row) = gen_unroutable_row(g, &live, &mut next_id) {
            let rows = vec![row];
            let _ = shadow.insert(&table.name, &rows);
            return Some(Action::Insert { table: t, rows });
        }
    }
    let n = g.gen_range(1usize..=8);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(gen_live_row(g, &live, &mut next_id)?);
    }
    shadow
        .insert(&table.name, &rows)
        .expect("live rows must route");
    Some(Action::Insert { table: t, rows })
}

/// A row routed against the *live* piece set (post-ALTER).
fn gen_live_row(
    g: &mut StdRng,
    live: &crate::oracle::RefTable,
    next_id: &mut i64,
) -> Option<Vec<Val>> {
    let mut row = vec![Val::Int(*next_id)];
    *next_id += 1;
    for level in &live.levels {
        let piece = pick(g, &level.pieces);
        row.push(match piece {
            RefPiece::Range { lo, hi, .. } => Val::Int(g.gen_range(*lo..*hi)),
            RefPiece::List { vals, .. } => Val::Str(pick(g, vals).clone()),
            RefPiece::Default { .. } => Val::Str(format!("z{}", g.gen_range(0u32..3))),
        });
    }
    row.push(gen_v(g));
    row.push(gen_s(g));
    Some(row)
}

/// A row no live piece accepts, if the piece set leaves a gap.
fn gen_unroutable_row(
    g: &mut StdRng,
    live: &crate::oracle::RefTable,
    next_id: &mut i64,
) -> Option<Vec<Val>> {
    // Find a level with no default piece; miss it, cover the rest.
    let target = live
        .levels
        .iter()
        .position(|l| l.default_index().is_none())?;
    let mut row = vec![Val::Int(*next_id)];
    *next_id += 1;
    for (i, level) in live.levels.iter().enumerate() {
        if i == target {
            let max_hi = level
                .pieces
                .iter()
                .filter_map(|p| match p {
                    RefPiece::Range { hi, .. } => Some(*hi),
                    _ => None,
                })
                .max();
            row.push(match max_hi {
                Some(hi) => Val::Int(hi + g.gen_range(1i64..=50)),
                None => Val::Str("~nowhere~".into()),
            });
        } else {
            let piece = pick(g, &level.pieces);
            row.push(match piece {
                RefPiece::Range { lo, hi, .. } => Val::Int(g.gen_range(*lo..*hi)),
                RefPiece::List { vals, .. } => Val::Str(pick(g, vals).clone()),
                RefPiece::Default { .. } => Val::Str(format!("z{}", g.gen_range(0u32..3))),
            });
        }
    }
    row.push(gen_v(g));
    row.push(gen_s(g));
    Some(row)
}

fn gen_query(g: &mut StdRng, tables: &[TableSpec], shadow: &Oracle) -> QuerySpec {
    let two = tables.len() >= 2 && g.gen_range(0u32..100) < 30;
    let t0 = g.gen_range(0usize..tables.len());
    let mut chosen = vec![t0];
    if two {
        let mut t1 = g.gen_range(0usize..tables.len());
        if t1 == t0 {
            t1 = (t1 + 1) % tables.len();
        }
        chosen.push(t1);
    }

    let join = if two {
        Some(gen_join(g, tables, &chosen))
    } else {
        None
    };

    // Chain any remaining tables comma-style with equi-conditions in
    // WHERE: a ≥3-relation inner-join space for the join-order
    // enumerator, while the oracle just sees more joins.
    let mut extra_joins = Vec::new();
    if two {
        for t in 0..tables.len() {
            if !chosen.contains(&t) && g.gen_range(0u32..100) < 60 {
                chosen.push(t);
                extra_joins.push(gen_extra_join(g, tables, &chosen));
            }
        }
    }

    let mut params = Vec::new();
    let single_partitioned = !two && !tables[t0].levels.is_empty();
    let want_static = single_partitioned && g.gen_range(0u32..100) < 40;
    let pred = if g.gen_range(0u32..100) < 85 {
        Some(if want_static {
            gen_static_pred(g, tables, t0, shadow, &mut params)
        } else {
            gen_general_pred(g, tables, &chosen, &mut params)
        })
    } else {
        None
    };
    let static_prunable = want_static && pred.is_some();

    let agg = if g.gen_range(0u32..100) < 35 {
        Some(gen_agg(g, tables, &chosen))
    } else {
        None
    };

    QuerySpec {
        tables: chosen,
        join,
        extra_joins,
        pred,
        agg,
        params,
        static_prunable,
    }
}

/// An equi-join chaining the most recently chosen table onto an earlier
/// one; always rendered comma-style with the condition in WHERE.
fn gen_extra_join(g: &mut StdRng, tables: &[TableSpec], chosen: &[usize]) -> JoinSpec {
    let b = *chosen.last().unwrap();
    let a = chosen[g.gen_range(0usize..chosen.len() - 1)];
    let mut pairs: Vec<(String, String)> =
        vec![("v".into(), "v".into()), ("id".into(), "id".into())];
    let (ta, tb) = (&tables[a], &tables[b]);
    for (i, la) in ta.levels.iter().enumerate() {
        for (j, lb) in tb.levels.iter().enumerate() {
            if la.key_ty() == lb.key_ty() {
                pairs.push((format!("k{}", i + 1), format!("k{}", j + 1)));
            }
        }
    }
    let (lc, rc) = pick(g, &pairs).clone();
    JoinSpec {
        explicit: false,
        left_outer: false,
        left: ColId::new(a, lc),
        op: "=".into(),
        right: ColId::new(b, rc),
    }
}

fn gen_join(g: &mut StdRng, tables: &[TableSpec], chosen: &[usize]) -> JoinSpec {
    let (a, b) = (chosen[0], chosen[1]);
    // Join columns must agree on type; int payloads and ids always do.
    let mut pairs: Vec<(String, String)> =
        vec![("v".into(), "v".into()), ("id".into(), "id".into())];
    let (ta, tb) = (&tables[a], &tables[b]);
    for (i, la) in ta.levels.iter().enumerate() {
        for (j, lb) in tb.levels.iter().enumerate() {
            if la.key_ty() == lb.key_ty() {
                pairs.push((format!("k{}", i + 1), format!("k{}", j + 1)));
            }
        }
    }
    if ta.col_types().last() == tb.col_types().last() {
        pairs.push(("s".into(), "s".into()));
    }
    let (lc, rc) = pick(g, &pairs).clone();
    let op = if g.gen_range(0u32..100) < 80 {
        "=".to_string()
    } else {
        pick(g, &["<", "<=", ">", ">="]).to_string()
    };
    let explicit = g.gen_range(0u32..100) < 70;
    let left_outer = explicit && op == "=" && g.gen_range(0u32..100) < 30;
    JoinSpec {
        explicit,
        left_outer,
        left: ColId::new(a, lc),
        op,
        right: ColId::new(b, rc),
    }
}

/// A predicate over only the partition-key columns of `t`, restricted to
/// the exactly-analyzable forms (so f*_T is minimal and the harness can
/// assert the static upper bound).
fn gen_static_pred(
    g: &mut StdRng,
    tables: &[TableSpec],
    t: usize,
    shadow: &Oracle,
    params: &mut Vec<Val>,
) -> PredSpec {
    let n = g.gen_range(1usize..=3);
    let mut leaves = Vec::with_capacity(n);
    for _ in 0..n {
        leaves.push(gen_static_leaf(g, tables, t, shadow, params));
    }
    if leaves.len() == 1 {
        leaves.pop().unwrap()
    } else if g.gen_range(0u32..100) < 50 {
        PredSpec::And(leaves)
    } else {
        PredSpec::Or(leaves)
    }
}

fn gen_static_leaf(
    g: &mut StdRng,
    tables: &[TableSpec],
    t: usize,
    shadow: &Oracle,
    params: &mut Vec<Val>,
) -> PredSpec {
    let table = &tables[t];
    let lvl = g.gen_range(0usize..table.levels.len());
    let col = ColId::new(t, format!("k{}", lvl + 1));
    let live_pieces = shadow
        .table(&table.name)
        .ok()
        .map(|rt| {
            rt.levels
                .get(lvl)
                .map(|l| l.pieces.clone())
                .unwrap_or_default()
        })
        .unwrap_or_default();
    match table.levels[lvl].key_ty() {
        ColTy::Int => {
            // Values around the live coverage so selections are partial.
            let (lo, hi) = live_pieces
                .iter()
                .filter_map(|p| match p {
                    RefPiece::Range { lo, hi, .. } => Some((*lo, *hi)),
                    _ => None,
                })
                .fold((0i64, 10i64), |(a, b), (lo, hi)| (a.min(lo), b.max(hi)));
            let span = (hi - lo).max(1);
            let v = lo - span / 4 + g.gen_range(0..span + span / 2);
            match g.gen_range(0u32..100) {
                0..=49 => PredSpec::Cmp {
                    col,
                    op: pick(g, STATIC_OPS).to_string(),
                    rhs: gen_operand(g, Val::Int(v), params),
                },
                50..=74 => {
                    let w = g.gen_range(1i64..=span / 2 + 1);
                    PredSpec::Between {
                        col,
                        lo: gen_operand(g, Val::Int(v), params),
                        hi: gen_operand(g, Val::Int(v + w), params),
                        negated: false,
                    }
                }
                _ => {
                    let k = g.gen_range(1usize..=3);
                    let items = (0..k)
                        .map(|_| Val::Int(lo + g.gen_range(0..span + 2)))
                        .collect();
                    PredSpec::InList {
                        col,
                        items,
                        negated: false,
                    }
                }
            }
        }
        ColTy::Str => {
            let mut vals: Vec<String> = live_pieces
                .iter()
                .flat_map(|p| match p {
                    RefPiece::List { vals, .. } => vals.clone(),
                    _ => vec![format!("z{}", g.gen_range(0u32..3))],
                })
                .collect();
            if vals.is_empty() {
                vals.push("a".into());
            }
            if g.gen_range(0u32..100) < 60 {
                let v = Val::Str(pick(g, &vals).clone());
                PredSpec::Cmp {
                    col,
                    op: "=".into(),
                    rhs: gen_operand(g, v, params),
                }
            } else {
                let k = g.gen_range(1usize..=3.min(vals.len()));
                let items = (0..k).map(|_| Val::Str(pick(g, &vals).clone())).collect();
                PredSpec::InList {
                    col,
                    items,
                    negated: false,
                }
            }
        }
    }
}

/// 20% of leaf operands become `$n` prepared-statement parameters.
fn gen_operand(g: &mut StdRng, v: Val, params: &mut Vec<Val>) -> Operand {
    if g.gen_range(0u32..100) < 20 {
        params.push(v);
        Operand::Param(params.len() as u32)
    } else {
        Operand::Lit(v)
    }
}

fn gen_general_pred(
    g: &mut StdRng,
    tables: &[TableSpec],
    chosen: &[usize],
    params: &mut Vec<Val>,
) -> PredSpec {
    let depth_roll = g.gen_range(0u32..100);
    let n = if depth_roll < 40 {
        1
    } else {
        g.gen_range(2usize..=3)
    };
    let mut leaves = Vec::with_capacity(n);
    for _ in 0..n {
        let mut leaf = gen_leaf(g, tables, chosen, params);
        if g.gen_range(0u32..100) < 10 {
            leaf = PredSpec::Not(Box::new(leaf));
        }
        leaves.push(leaf);
    }
    if leaves.len() == 1 {
        leaves.pop().unwrap()
    } else if g.gen_range(0u32..100) < 55 {
        PredSpec::And(leaves)
    } else {
        PredSpec::Or(leaves)
    }
}

fn gen_leaf(
    g: &mut StdRng,
    tables: &[TableSpec],
    chosen: &[usize],
    params: &mut Vec<Val>,
) -> PredSpec {
    let t = *pick(g, chosen);
    let table = &tables[t];
    let names = table.col_names();
    let tys = table.col_types();
    let c = g.gen_range(0usize..names.len());
    let col = ColId::new(t, names[c].clone());
    let int_val = |g: &mut StdRng| Val::Int(g.gen_range(-10i64..70));
    match g.gen_range(0u32..100) {
        // Rare division hazard: `10 / v = k` errors when v = 0.
        0..=4 => PredSpec::DivCmp {
            num: 10,
            den: ColId::new(t, "v"),
            rhs: g.gen_range(-2i64..=5),
        },
        5..=14 => PredSpec::IsNull {
            col,
            negated: g.gen_range(0u32..100) < 40,
        },
        15..=29 => {
            // Column-column comparison within or across chosen tables.
            let t2 = *pick(g, chosen);
            let tys2 = tables[t2].col_types();
            let names2 = tables[t2].col_names();
            let int_cols2: Vec<&String> = names2
                .iter()
                .zip(&tys2)
                .filter(|(_, ty)| **ty == ColTy::Int)
                .map(|(n, _)| n)
                .collect();
            let int_cols: Vec<&String> = names
                .iter()
                .zip(&tys)
                .filter(|(_, ty)| **ty == ColTy::Int)
                .map(|(n, _)| n)
                .collect();
            PredSpec::ColCmp {
                left: ColId::new(t, pick(g, &int_cols).to_string()),
                op: pick(g, CMP_OPS).to_string(),
                right: ColId::new(t2, pick(g, &int_cols2).to_string()),
            }
        }
        30..=64 => {
            let v = match tys[c] {
                ColTy::Int => int_val(g),
                ColTy::Str => Val::Str(pick(g, VOCAB).to_string()),
            };
            PredSpec::Cmp {
                col,
                op: pick(g, CMP_OPS).to_string(),
                rhs: gen_operand(g, v, params),
            }
        }
        65..=79 => match tys[c] {
            ColTy::Int => {
                let lo = g.gen_range(-10i64..50);
                let w = g.gen_range(0i64..30);
                PredSpec::Between {
                    col,
                    lo: gen_operand(g, Val::Int(lo), params),
                    hi: gen_operand(g, Val::Int(lo + w), params),
                    negated: g.gen_range(0u32..100) < 25,
                }
            }
            ColTy::Str => {
                let v = Val::Str(pick(g, VOCAB).to_string());
                PredSpec::Cmp {
                    col,
                    op: "=".into(),
                    rhs: gen_operand(g, v, params),
                }
            }
        },
        _ => {
            let k = g.gen_range(1usize..=4);
            let mut items: Vec<Val> = (0..k)
                .map(|_| match tys[c] {
                    ColTy::Int => int_val(g),
                    ColTy::Str => Val::Str(pick(g, VOCAB).to_string()),
                })
                .collect();
            // Occasionally slip a NULL into the list (3VL coverage).
            if g.gen_range(0u32..100) < 15 {
                items.push(Val::Null);
            }
            PredSpec::InList {
                col,
                items,
                negated: g.gen_range(0u32..100) < 30,
            }
        }
    }
}

fn gen_agg(g: &mut StdRng, tables: &[TableSpec], chosen: &[usize]) -> AggSpec {
    let t = chosen[0];
    let table = &tables[t];
    let group_by = if g.gen_range(0u32..100) < 60 {
        let candidates: Vec<String> = {
            let mut v: Vec<String> = (0..table.levels.len())
                .map(|i| format!("k{}", i + 1))
                .collect();
            v.push("s".into());
            v.push("v".into());
            v
        };
        Some(ColId::new(t, pick(g, &candidates).clone()))
    } else {
        None
    };
    let n = g.gen_range(1usize..=3);
    let mut calls = Vec::with_capacity(n);
    for _ in 0..n {
        calls.push(match g.gen_range(0u32..100) {
            0..=24 => AggCallSpec {
                func: "count".into(),
                arg: None,
            },
            25..=39 => AggCallSpec {
                func: "count".into(),
                arg: Some(ColId::new(t, "v")),
            },
            40..=59 => AggCallSpec {
                func: "sum".into(),
                arg: Some(ColId::new(t, "v")),
            },
            60..=74 => AggCallSpec {
                func: "avg".into(),
                arg: Some(ColId::new(t, "v")),
            },
            75..=87 => AggCallSpec {
                func: "min".into(),
                arg: Some(ColId::new(t, "id")),
            },
            _ => AggCallSpec {
                func: "max".into(),
                arg: Some(ColId::new(t, "id")),
            },
        });
    }
    AggSpec { group_by, calls }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 9999] {
            assert_eq!(gen_case(seed), gen_case(seed));
        }
    }

    /// The join-order and statistics axes must actually be exercised:
    /// across 500 seeds, a healthy share of cases carry ANALYZE actions
    /// and ≥3-relation join queries.
    #[test]
    fn generator_covers_analyze_and_multiway_joins() {
        let (mut analyzes, mut multiway) = (0usize, 0usize);
        for seed in 0..500u64 {
            for a in &gen_case(seed).actions {
                match a {
                    Action::Analyze { .. } => analyzes += 1,
                    Action::Query(q) if !q.extra_joins.is_empty() => {
                        assert_eq!(
                            q.tables.len(),
                            2 + q.extra_joins.len(),
                            "extra_joins[k] chains tables[k + 2]"
                        );
                        multiway += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(analyzes > 50, "ANALYZE actions generated: {analyzes}");
        assert!(multiway > 20, "3-way join queries generated: {multiway}");
    }

    #[test]
    fn cases_round_trip_and_render() {
        for seed in 0..20u64 {
            let case = gen_case(seed);
            let decoded = Case::decode(&case.encode()).unwrap();
            assert_eq!(decoded, case, "seed {seed} round trip");
            for t in &case.tables {
                assert!(t.create_sql().starts_with("CREATE TABLE "));
            }
            for a in &case.actions {
                if let Action::Query(q) = a {
                    assert!(q.sql(&case.tables).starts_with("SELECT "));
                }
            }
        }
    }
}
