//! Differential fuzzing driver.
//!
//! ```text
//! fuzz [--cases N] [--seed S|from-git-sha] [--no-shrink]
//!      [--corpus-dir DIR] [--replay FILE]
//! ```
//!
//! Generates `N` seeded cases starting at seed `S`, runs each through the
//! differential harness, and on the first disagreement shrinks it to a
//! minimal reproducer, writes it to the corpus directory and exits 1.
//! `--seed from-git-sha` derives the base seed from `git rev-parse HEAD`
//! so every CI commit explores fresh seeds while staying reproducible.
//! `--replay FILE` runs a single `.case` file instead of generating.

use mpp_testkit::{corpus, gen_case, minimize, run_case, Case};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    cases: u64,
    seed: u64,
    shrink: bool,
    corpus_dir: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        cases: 100,
        seed: 0,
        shrink: true,
        corpus_dir: corpus::corpus_dir(),
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cases" => {
                opts.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = if v == "from-git-sha" {
                    seed_from_git_sha()
                } else {
                    v.parse().map_err(|e| format!("--seed: {e}"))?
                };
            }
            "--no-shrink" => opts.shrink = false,
            "--corpus-dir" => opts.corpus_dir = PathBuf::from(value("--corpus-dir")?),
            "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--cases N] [--seed S|from-git-sha] [--no-shrink] \
                     [--corpus-dir DIR] [--replay FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// First 15 hex digits of HEAD as a u64 (0 when not in a git checkout).
fn seed_from_git_sha() -> u64 {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output();
    match out {
        Ok(o) if o.status.success() => {
            let sha = String::from_utf8_lossy(&o.stdout);
            u64::from_str_radix(sha.trim().get(..15).unwrap_or("0"), 16).unwrap_or(0)
        }
        _ => 0,
    }
}

fn replay(path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fuzz: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let case = match Case::decode(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fuzz: cannot decode {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match run_case(&case) {
        None => {
            println!("replay {}: ok", path.display());
            ExitCode::SUCCESS
        }
        Some(f) => {
            eprintln!("replay {}: FAIL\n{f}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.replay {
        return replay(path);
    }

    println!(
        "fuzz: {} case(s) from seed {} (shrink: {})",
        opts.cases, opts.seed, opts.shrink
    );
    for i in 0..opts.cases {
        let seed = opts.seed.wrapping_add(i);
        let case = gen_case(seed);
        let Some(failure) = run_case(&case) else {
            if (i + 1) % 50 == 0 {
                println!("fuzz: {}/{} ok", i + 1, opts.cases);
            }
            continue;
        };
        eprintln!("fuzz: seed {seed} FAILED\n{failure}");
        let (small, small_failure) = if opts.shrink {
            match minimize(&case) {
                Some(pair) => pair,
                None => (case, failure.clone()),
            }
        } else {
            (case, failure.clone())
        };
        let header = format!(
            "shrunk reproducer from seed {seed}\n{small_failure}\nreplay: cargo run -p mpp-testkit --bin fuzz --release -- --replay <this file>"
        );
        let name = format!("shrunk-{seed}");
        match corpus::save(&opts.corpus_dir, &name, &small, &header) {
            Ok(path) => eprintln!(
                "fuzz: minimized reproducer written to {} ({} action(s), {} table(s))",
                path.display(),
                small.actions.len(),
                small.tables.len()
            ),
            Err(e) => eprintln!("fuzz: could not write reproducer: {e}"),
        }
        eprintln!("fuzz: minimized failure:\n{small_failure}");
        return ExitCode::FAILURE;
    }
    println!("fuzz: all {} case(s) passed", opts.cases);
    ExitCode::SUCCESS
}
