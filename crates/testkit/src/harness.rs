//! The differential harness: run one [`Case`] against the real engine in
//! every {planner} × {exec mode} × {exec engine} combination and against
//! the naive [`Oracle`], and diff everything that should agree:
//!
//! 1. **Results** — the row multiset of every combo must equal the
//!    oracle's (floats compared within epsilon, since distributed
//!    aggregation legally reorders summation).
//! 2. **Errors** — when one side rejects a statement the other must
//!    reject it with the same error kind. Runtime errors (arithmetic)
//!    are one-sided: the oracle full-scans every row, so sound partition
//!    pruning may legitimately skip the row that would have erred.
//! 3. **Partition-elimination soundness** — `parts_scanned` must cover
//!    every partition the oracle proves contributed a qualifying row
//!    (scanned ⊇ qualifying; paper §2.3).
//! 4. **Static minimality** — for queries the generator tags as
//!    exactly-analyzable static filters, `parts_scanned` must also stay
//!    inside the independent f*_T upper bound (scanned ⊆ bound). Applies
//!    to Orca always; to the legacy planner only without parameters
//!    (legacy resolves partitions at plan time, so `$n` defeats its
//!    static elimination by design).
//! 5. **Prepared statements** — `prepare` + `execute_prepared` must
//!    agree with the one-shot path under both planners.
//!
//! Every query additionally runs under both settings of the **adaptive
//! axis** ([`adaptive_axis`]): per-partition plan specialization plus
//! runtime cardinality feedback on, then off. Adaptive planning may only
//! change plan shape, never results or scan soundness.

use crate::case::{Action, Case, PredSpec, QuerySpec, Val};
use crate::oracle::{static_upper_bound, Oracle, OracleResult};
use mpp_common::{Datum, Result};
use mpp_expr::ColRefGenerator;
use mppart::testing::approx_same_bag;
use mppart::{ExecEngine, ExecMode, MppDb, Planner, QueryOutcome, SchedConfig, SchedPolicy};
use std::collections::BTreeSet;
use std::fmt;

/// One cell of the execution matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Combo {
    pub planner: Planner,
    pub mode: ExecMode,
    pub engine: ExecEngine,
}

impl fmt::Display for Combo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:?}/{:?}", self.planner, self.mode, self.engine)
    }
}

/// All eight {Orca,Legacy} × {Sequential,Parallel} × {Row,Batch} cells.
pub fn combos() -> Vec<Combo> {
    let mut v = Vec::with_capacity(8);
    for planner in [Planner::Orca, Planner::Legacy] {
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            for engine in [ExecEngine::Row, ExecEngine::Batch] {
                v.push(Combo {
                    planner,
                    mode,
                    engine,
                });
            }
        }
    }
    v
}

/// Scheduler configurations every combo runs under: the default, and a
/// stress shape — many tiny morsels, more workers than a small case has
/// segments — that forces multi-morsel decomposition with stealing even
/// on the fuzzer's little tables. Orthogonal to [`combos`]; the combo
/// matrix itself stays 8 cells.
pub fn sched_axis() -> Vec<(&'static str, SchedConfig)> {
    vec![
        ("default", SchedConfig::default()),
        (
            "morsel7x3",
            SchedConfig {
                workers: Some(3),
                policy: SchedPolicy::Morsel,
                morsel_rows: 7,
            },
        ),
    ]
}

/// Adaptive-planning settings one case runs under. Unpinned cases run
/// BOTH — adaptive per-partition specialization plus runtime feedback
/// must be invisible in results, so every cell of the matrix is diffed
/// against the oracle under each setting. A pinned case (shrunk
/// reproducer) runs only the setting that diverged.
pub fn adaptive_axis(case: &Case) -> Vec<(&'static str, bool)> {
    match case.adaptive {
        Some(true) => vec![("adapt", true)],
        Some(false) => vec![("noadapt", false)],
        None => vec![("adapt", true), ("noadapt", false)],
    }
}

/// What kind of disagreement was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Setup (CREATE/initial load) did not behave identically.
    Setup,
    /// One side errored and the other did not, or kinds differ.
    ErrorKind,
    /// Row multisets differ.
    Rows,
    /// `parts_scanned` missed a partition that contributed a qualifying
    /// row — an unsound elimination (wrong results waiting to happen).
    Unsound,
    /// A statically analyzable filter scanned outside the f*_T bound —
    /// static partition elimination failed to prune.
    NotMinimal,
    /// prepare/execute_prepared disagreed with the one-shot path.
    Prepared,
}

/// One reproducible disagreement between engine and oracle.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index into `Case::actions` (`usize::MAX` for setup failures).
    pub action: usize,
    pub combo: String,
    pub kind: FailKind,
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let action = if self.action == usize::MAX {
            "setup".to_string()
        } else {
            self.action.to_string()
        };
        write!(
            f,
            "[{:?}] action {} combo {}: {}",
            self.kind, action, self.combo, self.detail
        )
    }
}

fn datums(params: &[Val]) -> Vec<Datum> {
    params.iter().map(Val::to_datum).collect()
}

/// Run one case end to end. Returns the first disagreement found, if
/// any — `None` means every combo agreed with the oracle on every
/// action. (First-failure semantics keep the shrinker's check cheap and
/// deterministic.)
pub fn run_case(case: &Case) -> Option<Failure> {
    let mut db = MppDb::new(case.segments.max(1));
    let mut oracle = Oracle::new();
    let setup_failure = |sql: &str, e: String| Failure {
        action: usize::MAX,
        combo: "setup".into(),
        kind: FailKind::Setup,
        detail: format!("{e}\n  sql: {sql}"),
    };

    // Schema + initial data. The generator only emits valid setup, so any
    // disagreement here is already a bug.
    for spec in &case.tables {
        let sql = spec.create_sql();
        if let Err(e) = diff_outcomes(db.sql(&sql).map(|_| ()), oracle.create_table(spec)) {
            return Some(setup_failure(&sql, e));
        }
        for chunk in spec.rows.chunks(20) {
            let sql = Action::insert_sql(spec, chunk);
            if let Err(e) =
                diff_outcomes(db.sql(&sql).map(|_| ()), oracle.insert(&spec.name, chunk))
            {
                return Some(setup_failure(&sql, e));
            }
        }
    }

    for (i, action) in case.actions.iter().enumerate() {
        let failure = match action {
            Action::Alter { table, kind } => {
                let sql = Action::alter_sql(&case.tables[*table], kind);
                diff_outcomes(
                    db.sql(&sql).map(|_| ()),
                    oracle.alter(&case.tables[*table].name, kind),
                )
                .err()
                .map(|e| Failure {
                    action: i,
                    combo: "ddl".into(),
                    kind: FailKind::ErrorKind,
                    detail: format!("{e}\n  sql: {sql}"),
                })
            }
            Action::Insert { table, rows } => {
                let sql = Action::insert_sql(&case.tables[*table], rows);
                diff_outcomes(
                    db.sql(&sql).map(|_| ()),
                    oracle.insert(&case.tables[*table].name, rows),
                )
                .err()
                .map(|e| Failure {
                    action: i,
                    combo: "dml".into(),
                    kind: FailKind::ErrorKind,
                    detail: format!("{e}\n  sql: {sql}"),
                })
            }
            Action::Analyze { table } => {
                // The oracle keeps no statistics: ANALYZE must succeed and
                // must not change any later query's result (stats only move
                // the optimizer between equivalent plans — the queries after
                // this action are the real check).
                let sql = format!("ANALYZE {}", case.tables[*table].name);
                db.sql(&sql).err().map(|e| Failure {
                    action: i,
                    combo: "ddl".into(),
                    kind: FailKind::ErrorKind,
                    detail: format!("ANALYZE failed: {e}\n  sql: {sql}"),
                })
            }
            Action::Query(q) => run_query(&mut db, &oracle, case, i, q).err(),
        };
        if let Some(f) = failure {
            return Some(f);
        }
    }
    None
}

/// Diff two DDL/DML outcomes: both-ok or same-error-kind passes.
fn diff_outcomes(engine: Result<()>, oracle: Result<()>) -> std::result::Result<(), String> {
    match (engine, oracle) {
        (Ok(()), Ok(())) => Ok(()),
        (Err(e), Err(o)) if e.kind() == o.kind() => Ok(()),
        (Err(e), Err(o)) => Err(format!(
            "error kinds differ: engine {} vs oracle {}",
            e.kind(),
            o.kind()
        )),
        (Err(e), Ok(())) => Err(format!("engine errored ({e}), oracle succeeded")),
        (Ok(()), Err(o)) => Err(format!("engine succeeded, oracle errored ({o})")),
    }
}

/// Run one query action across all eight combos plus both prepared paths.
fn run_query(
    db: &mut MppDb,
    oracle: &Oracle,
    case: &Case,
    action: usize,
    q: &QuerySpec,
) -> std::result::Result<(), Failure> {
    let sql = q.sql(&case.tables);
    let params = datums(&q.params);

    // Ground truth: bind the same SQL against the engine catalog and
    // interpret the bound logical plan naively.
    let oracle_out: Result<OracleResult> =
        mpp_sql::plan_sql(&sql, db.catalog(), &ColRefGenerator::new())
            .and_then(|bound| oracle.query(&bound.plan, &params));

    for (axis_name, adaptive) in adaptive_axis(case) {
        db.set_adaptive_plans(adaptive);
        for (sched_name, sched) in sched_axis() {
            db.set_sched_config(sched);
            for combo in combos() {
                db.set_exec_mode(combo.mode);
                db.set_exec_engine(combo.engine);
                let engine_out = db.run_sql(&sql, &params, combo.planner);
                let check =
                    diff_query(db, oracle, case, q, combo.planner, &engine_out, &oracle_out);
                db.set_exec_mode(ExecMode::Sequential);
                db.set_exec_engine(ExecEngine::Row);
                if let Err((kind, detail)) = check {
                    db.set_sched_config(SchedConfig::default());
                    db.set_adaptive_plans(true);
                    return Err(Failure {
                        action,
                        combo: format!("{combo}/{sched_name}/{axis_name}"),
                        kind,
                        detail: format!("{detail}\n  sql: {sql}"),
                    });
                }
            }
        }
        db.set_sched_config(SchedConfig::default());

        // Prepared-statement path, both planners (default mode/engine).
        for planner in [Planner::Orca, Planner::Legacy] {
            let engine_out = db
                .prepare_with(&sql, planner)
                .and_then(|h| db.execute_prepared(&h, &params));
            let check = diff_query(db, oracle, case, q, planner, &engine_out, &oracle_out);
            if let Err((kind, detail)) = check {
                db.set_adaptive_plans(true);
                return Err(Failure {
                    action,
                    combo: format!("{planner:?}/prepared/{axis_name}"),
                    kind: if kind == FailKind::Rows {
                        FailKind::Prepared
                    } else {
                        kind
                    },
                    detail: format!("{detail}\n  sql: {sql}"),
                });
            }
        }
    }
    db.set_adaptive_plans(true);
    Ok(())
}

/// Diff one engine execution against the oracle result.
fn diff_query(
    db: &MppDb,
    oracle: &Oracle,
    case: &Case,
    q: &QuerySpec,
    planner: Planner,
    engine_out: &Result<QueryOutcome>,
    oracle_out: &Result<OracleResult>,
) -> std::result::Result<(), (FailKind, String)> {
    match (engine_out, oracle_out) {
        (Ok(out), Ok(oracle_res)) => {
            if !approx_same_bag(out.rows.clone(), oracle_res.rows.clone()) {
                return Err((
                    FailKind::Rows,
                    format!(
                        "row multisets differ: engine returned {} row(s), oracle {} row(s)",
                        out.rows.len(),
                        oracle_res.rows.len()
                    ),
                ));
            }
            check_soundness(db, oracle, case, q, planner, out, oracle_res)
        }
        (Err(e), Err(o)) if e.kind() == o.kind() => Ok(()),
        (Err(e), Err(o)) => Err((
            FailKind::ErrorKind,
            format!(
                "error kinds differ: engine {} vs oracle {}",
                e.kind(),
                o.kind()
            ),
        )),
        // SQL leaves WHERE evaluation order unspecified: an engine may
        // push a single-table division below a join and divide by zero on
        // a row the oracle's join ordering never pairs up (and vice
        // versa). When the query contains a division, arithmetic errors
        // are acceptable from either side alone; without one, an engine
        // arithmetic error has no legitimate source.
        (Err(e), Ok(_)) if e.kind() == "arithmetic" && query_has_division(q) => Ok(()),
        (Err(e), Ok(_)) => Err((
            FailKind::ErrorKind,
            format!("engine errored ({e}), oracle succeeded"),
        )),
        // The oracle scans rows in pruned partitions too, so a runtime
        // arithmetic error there while the engine succeeds is legal.
        (Ok(_), Err(o)) if o.kind() == "arithmetic" => Ok(()),
        (Ok(_), Err(o)) => Err((
            FailKind::ErrorKind,
            format!("engine succeeded, oracle errored ({o})"),
        )),
    }
}

/// Does the query's predicate contain a division (the generator's
/// `DivCmp`)? Only a division can raise an order-dependent runtime
/// arithmetic error.
fn query_has_division(q: &QuerySpec) -> bool {
    fn rec(p: &PredSpec) -> bool {
        match p {
            PredSpec::DivCmp { .. } => true,
            PredSpec::And(ps) | PredSpec::Or(ps) => ps.iter().any(rec),
            PredSpec::Not(inner) => rec(inner),
            _ => false,
        }
    }
    q.pred.as_ref().is_some_and(rec)
}

/// Soundness (and static minimality, when applicable) of `parts_scanned`
/// against the oracle's provenance.
fn check_soundness(
    db: &MppDb,
    oracle: &Oracle,
    case: &Case,
    q: &QuerySpec,
    planner: Planner,
    out: &QueryOutcome,
    oracle_res: &OracleResult,
) -> std::result::Result<(), (FailKind, String)> {
    for &t in &q.tables {
        let spec = &case.tables[t];
        if spec.levels.is_empty() {
            continue;
        }
        let scanned = scanned_leaf_names(db, out, &spec.name).map_err(|e| {
            (
                FailKind::Unsound,
                format!("cannot resolve partitions of {}: {e}", spec.name),
            )
        })?;
        let empty = BTreeSet::new();
        let qualifying = oracle_res.qualifying.get(&spec.name).unwrap_or(&empty);
        let missed: Vec<&String> = qualifying.difference(&scanned).collect();
        if !missed.is_empty() {
            return Err((
                FailKind::Unsound,
                format!(
                    "table {}: partitions {missed:?} contributed qualifying rows \
                     but were not scanned (scanned: {scanned:?})",
                    spec.name
                ),
            ));
        }

        // Static minimality: Orca always; legacy only when no parameters
        // are involved (its elimination happens entirely at plan time).
        let check_minimal = q.static_prunable && (planner == Planner::Orca || q.params.is_empty());
        if check_minimal {
            let pred = q.pred.as_ref().expect("static_prunable implies a filter");
            let reftable = oracle.table(&spec.name).map_err(|e| {
                (
                    FailKind::NotMinimal,
                    format!("oracle lost {}: {e}", spec.name),
                )
            })?;
            let bound = static_upper_bound(reftable, t, pred, &q.params);
            let excess: Vec<&String> = scanned.difference(&bound).collect();
            if !excess.is_empty() {
                return Err((
                    FailKind::NotMinimal,
                    format!(
                        "table {}: scanned partitions {excess:?} outside the static \
                         f*_T bound {bound:?}",
                        spec.name
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Leaf names of the partitions `out` actually scanned for `table`,
/// resolved through the current catalog partition tree.
fn scanned_leaf_names(db: &MppDb, out: &QueryOutcome, table: &str) -> Result<BTreeSet<String>> {
    let desc = db.catalog().table_by_name(table)?;
    let tree = desc.part_tree()?;
    let mut names = BTreeSet::new();
    if let Some(oids) = out.stats.parts_scanned.get(&desc.oid) {
        for leaf in tree.leaves() {
            if oids.contains(&leaf.oid) {
                names.insert(leaf.name.clone());
            }
        }
    }
    Ok(names)
}
