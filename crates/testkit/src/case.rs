//! The serializable unit of differential testing: one [`Case`] bundles a
//! schema (tables with range/list partitioning), data, and a sequence of
//! actions (queries, inserts, ALTER TABLE, ANALYZE) to run in order.
//!
//! Cases are structured — predicates are trees, not SQL strings — so the
//! shrinker can delete conjuncts, rows and partitions mechanically. SQL
//! is rendered on demand via [`QuerySpec::sql`] and friends.

use crate::sexp::Sexp;
use mpp_common::{Datum, Error, Result};
use std::fmt::Write as _;

/// A serializable datum: the value domain the generator draws from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Val {
    Null,
    Int(i64),
    Str(String),
}

impl Val {
    pub fn to_datum(&self) -> Datum {
        match self {
            Val::Null => Datum::Null,
            Val::Int(v) => Datum::Int64(*v),
            Val::Str(s) => Datum::str(s.as_str()),
        }
    }

    /// Datum coerced to a column type (`int` columns carry `Int32`).
    pub fn to_datum_for(&self, ty: ColTy) -> Datum {
        match (self, ty) {
            (Val::Null, _) => Datum::Null,
            (Val::Int(v), ColTy::Int) => Datum::Int32(*v as i32),
            (Val::Int(v), _) => Datum::Int64(*v),
            (Val::Str(s), _) => Datum::str(s.as_str()),
        }
    }

    /// Render as a SQL literal.
    pub fn sql(&self) -> String {
        match self {
            Val::Null => "NULL".into(),
            Val::Int(v) => v.to_string(),
            Val::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }

    fn to_sexp(&self) -> Sexp {
        match self {
            Val::Null => Sexp::sym("null"),
            Val::Int(v) => Sexp::Int(*v),
            Val::Str(s) => Sexp::Str(s.clone()),
        }
    }

    fn from_sexp(s: &Sexp) -> Result<Val> {
        Ok(match s {
            Sexp::Sym(sym) if sym == "null" => Val::Null,
            Sexp::Int(v) => Val::Int(*v),
            Sexp::Str(v) => Val::Str(v.clone()),
            other => return Err(Error::Parse(format!("corpus: bad value {other}"))),
        })
    }
}

/// Column type in the fixed table shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColTy {
    Int,
    Str,
}

/// One partitioning level as declared at CREATE time. ALTER actions then
/// evolve the live piece set; the spec stays the creation-time shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelSpec {
    /// `PARTITION BY RANGE (kN) (START (start) END (start+every*count)
    /// EVERY (every))`, pieces auto-named `p0 … p{count-1}`.
    Range { start: i64, every: i64, count: u32 },
    /// `PARTITION BY LIST (kN) (PARTITION l0 VALUES (…), … [, DEFAULT
    /// PARTITION ldef])`, pieces named `l0 … l{n-1}` (+ `ldef`).
    List {
        groups: Vec<Vec<String>>,
        has_default: bool,
    },
}

impl LevelSpec {
    pub fn key_ty(&self) -> ColTy {
        match self {
            LevelSpec::Range { .. } => ColTy::Int,
            LevelSpec::List { .. } => ColTy::Str,
        }
    }
}

/// One table: `id int NOT NULL` (distribution key), one key column per
/// partitioning level (`k1`, `k2` — int for range levels, text for list
/// levels), then payloads `v int` and `s text` (both nullable). `levels`
/// empty means unpartitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    pub name: String,
    pub levels: Vec<LevelSpec>,
    /// Initial rows, in column order (`id, k…, v, s`).
    pub rows: Vec<Vec<Val>>,
}

impl TableSpec {
    /// Column names in schema order.
    pub fn col_names(&self) -> Vec<String> {
        let mut names = vec!["id".to_string()];
        for i in 0..self.levels.len() {
            names.push(format!("k{}", i + 1));
        }
        names.push("v".into());
        names.push("s".into());
        names
    }

    pub fn col_types(&self) -> Vec<ColTy> {
        let mut tys = vec![ColTy::Int];
        for l in &self.levels {
            tys.push(l.key_ty());
        }
        tys.push(ColTy::Int);
        tys.push(ColTy::Str);
        tys
    }

    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.col_names().iter().position(|n| n == name)
    }

    /// Index of the key column for partitioning level `lvl`.
    pub fn key_col(&self, lvl: usize) -> usize {
        1 + lvl
    }

    pub fn create_sql(&self) -> String {
        let mut sql = format!("CREATE TABLE {} (id int NOT NULL", self.name);
        for (i, l) in self.levels.iter().enumerate() {
            let ty = match l.key_ty() {
                ColTy::Int => "int",
                ColTy::Str => "text",
            };
            let _ = write!(sql, ", k{} {}", i + 1, ty);
        }
        sql.push_str(", v int, s text) DISTRIBUTED BY (id)");
        for (i, l) in self.levels.iter().enumerate() {
            let kw = if i == 0 { "PARTITION" } else { "SUBPARTITION" };
            match l {
                LevelSpec::Range {
                    start,
                    every,
                    count,
                } => {
                    let end = start + every * (*count as i64);
                    let _ = write!(
                        sql,
                        " {kw} BY RANGE (k{}) (START ({start}) END ({end}) EVERY ({every}))",
                        i + 1
                    );
                }
                LevelSpec::List {
                    groups,
                    has_default,
                } => {
                    let mut parts: Vec<String> = groups
                        .iter()
                        .enumerate()
                        .map(|(g, vals)| {
                            let items: Vec<String> =
                                vals.iter().map(|v| Val::Str(v.clone()).sql()).collect();
                            format!("PARTITION l{g} VALUES ({})", items.join(", "))
                        })
                        .collect();
                    if *has_default {
                        parts.push("DEFAULT PARTITION ldef".into());
                    }
                    let _ = write!(sql, " {kw} BY LIST (k{}) ({})", i + 1, parts.join(", "));
                }
            }
        }
        sql
    }

    fn to_sexp(&self) -> Sexp {
        let levels = self
            .levels
            .iter()
            .map(|l| match l {
                LevelSpec::Range {
                    start,
                    every,
                    count,
                } => Sexp::tagged(
                    "range",
                    vec![
                        Sexp::Int(*start),
                        Sexp::Int(*every),
                        Sexp::Int(*count as i64),
                    ],
                ),
                LevelSpec::List {
                    groups,
                    has_default,
                } => {
                    let mut items = vec![Sexp::Int(*has_default as i64)];
                    for g in groups {
                        items.push(Sexp::list(g.iter().map(|v| Sexp::Str(v.clone())).collect()));
                    }
                    Sexp::tagged("list", items)
                }
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| Sexp::list(r.iter().map(Val::to_sexp).collect()))
            .collect();
        Sexp::tagged(
            "table",
            vec![
                Sexp::Str(self.name.clone()),
                Sexp::tagged("levels", levels),
                Sexp::tagged("rows", rows),
            ],
        )
    }

    fn from_sexp(s: &Sexp) -> Result<TableSpec> {
        let items = s.items("table")?;
        let name = items
            .first()
            .ok_or_else(|| Error::Parse("corpus: table needs a name".into()))?
            .as_str()?
            .to_string();
        let mut levels = Vec::new();
        for l in Sexp::field(items, "levels")?.items("levels")? {
            let list = l.as_list()?;
            match list.first().map(|h| h.as_sym()).transpose()? {
                Some("range") => levels.push(LevelSpec::Range {
                    start: list[1].as_int()?,
                    every: list[2].as_int()?,
                    count: list[3].as_int()? as u32,
                }),
                Some("list") => {
                    let has_default = list[1].as_int()? != 0;
                    let mut groups = Vec::new();
                    for g in &list[2..] {
                        groups.push(
                            g.as_list()?
                                .iter()
                                .map(|v| Ok(v.as_str()?.to_string()))
                                .collect::<Result<Vec<_>>>()?,
                        );
                    }
                    levels.push(LevelSpec::List {
                        groups,
                        has_default,
                    });
                }
                _ => return Err(Error::Parse(format!("corpus: bad level {l}"))),
            }
        }
        let mut rows = Vec::new();
        for r in Sexp::field(items, "rows")?.items("rows")? {
            rows.push(
                r.as_list()?
                    .iter()
                    .map(Val::from_sexp)
                    .collect::<Result<Vec<_>>>()?,
            );
        }
        Ok(TableSpec { name, levels, rows })
    }
}

/// A column reference inside a query: table index into `Case::tables`
/// plus column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColId {
    pub table: usize,
    pub col: String,
}

impl ColId {
    pub fn new(table: usize, col: impl Into<String>) -> ColId {
        ColId {
            table,
            col: col.into(),
        }
    }

    fn to_sexp(&self) -> Sexp {
        Sexp::list(vec![
            Sexp::Int(self.table as i64),
            Sexp::sym(self.col.clone()),
        ])
    }

    fn from_sexp(s: &Sexp) -> Result<ColId> {
        let l = s.as_list()?;
        Ok(ColId {
            table: l[0].as_int()? as usize,
            col: l[1].as_sym()?.to_string(),
        })
    }
}

/// Literal or `$n` parameter operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    Lit(Val),
    /// 1-based parameter index into `QuerySpec::params`.
    Param(u32),
}

impl Operand {
    fn to_sexp(&self) -> Sexp {
        match self {
            Operand::Lit(v) => v.to_sexp(),
            Operand::Param(n) => Sexp::tagged("param", vec![Sexp::Int(*n as i64)]),
        }
    }

    fn from_sexp(s: &Sexp) -> Result<Operand> {
        if let Sexp::List(l) = s {
            if let Some(Sexp::Sym(tag)) = l.first() {
                if tag == "param" {
                    return Ok(Operand::Param(l[1].as_int()? as u32));
                }
            }
        }
        Ok(Operand::Lit(Val::from_sexp(s)?))
    }
}

/// Structured predicate tree, rendered to SQL by [`PredSpec::sql`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredSpec {
    /// `col OP operand` with OP one of `= <> < <= > >=`.
    Cmp {
        col: ColId,
        op: String,
        rhs: Operand,
    },
    /// `col [NOT] BETWEEN lo AND hi`.
    Between {
        col: ColId,
        lo: Operand,
        hi: Operand,
        negated: bool,
    },
    /// `col [NOT] IN (…)`.
    InList {
        col: ColId,
        items: Vec<Val>,
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        col: ColId,
        negated: bool,
    },
    /// `left OP right` between two columns (non-equi join predicates).
    ColCmp {
        left: ColId,
        op: String,
        right: ColId,
    },
    /// `num / den_col = rhs` — a deliberate division hazard (den may be 0
    /// or NULL) exercising error-kind parity.
    DivCmp {
        num: i64,
        den: ColId,
        rhs: i64,
    },
    And(Vec<PredSpec>),
    Or(Vec<PredSpec>),
    Not(Box<PredSpec>),
}

impl PredSpec {
    /// Render to SQL. `qualify` prefixes column names with their table
    /// name (needed whenever more than one table is in scope).
    pub fn sql(&self, tables: &[&TableSpec], qualify: bool) -> String {
        let col = |c: &ColId| {
            if qualify {
                format!("{}.{}", tables[c.table].name, c.col)
            } else {
                c.col.clone()
            }
        };
        let opnd = |o: &Operand| match o {
            Operand::Lit(v) => v.sql(),
            Operand::Param(n) => format!("${n}"),
        };
        match self {
            PredSpec::Cmp { col: c, op, rhs } => format!("{} {} {}", col(c), op, opnd(rhs)),
            PredSpec::Between {
                col: c,
                lo,
                hi,
                negated,
            } => format!(
                "{} {}BETWEEN {} AND {}",
                col(c),
                if *negated { "NOT " } else { "" },
                opnd(lo),
                opnd(hi)
            ),
            PredSpec::InList {
                col: c,
                items,
                negated,
            } => {
                let list: Vec<String> = items.iter().map(Val::sql).collect();
                format!(
                    "{} {}IN ({})",
                    col(c),
                    if *negated { "NOT " } else { "" },
                    list.join(", ")
                )
            }
            PredSpec::IsNull { col: c, negated } => {
                format!("{} IS {}NULL", col(c), if *negated { "NOT " } else { "" })
            }
            PredSpec::ColCmp { left, op, right } => {
                format!("{} {} {}", col(left), op, col(right))
            }
            PredSpec::DivCmp { num, den, rhs } => format!("{} / {} = {}", num, col(den), rhs),
            PredSpec::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.sql(tables, qualify)).collect();
                format!("({})", parts.join(" AND "))
            }
            PredSpec::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.sql(tables, qualify)).collect();
                format!("({})", parts.join(" OR "))
            }
            PredSpec::Not(p) => format!("NOT ({})", p.sql(tables, qualify)),
        }
    }

    /// Every column referenced by this predicate.
    pub fn cols(&self, out: &mut Vec<ColId>) {
        match self {
            PredSpec::Cmp { col, .. }
            | PredSpec::Between { col, .. }
            | PredSpec::InList { col, .. }
            | PredSpec::IsNull { col, .. }
            | PredSpec::DivCmp { den: col, .. } => out.push(col.clone()),
            PredSpec::ColCmp { left, right, .. } => {
                out.push(left.clone());
                out.push(right.clone());
            }
            PredSpec::And(ps) | PredSpec::Or(ps) => {
                for p in ps {
                    p.cols(out);
                }
            }
            PredSpec::Not(p) => p.cols(out),
        }
    }

    fn to_sexp(&self) -> Sexp {
        match self {
            PredSpec::Cmp { col, op, rhs } => Sexp::tagged(
                "cmp",
                vec![col.to_sexp(), Sexp::sym(op.clone()), rhs.to_sexp()],
            ),
            PredSpec::Between {
                col,
                lo,
                hi,
                negated,
            } => Sexp::tagged(
                "between",
                vec![
                    col.to_sexp(),
                    lo.to_sexp(),
                    hi.to_sexp(),
                    Sexp::Int(*negated as i64),
                ],
            ),
            PredSpec::InList {
                col,
                items,
                negated,
            } => {
                let mut v = vec![col.to_sexp(), Sexp::Int(*negated as i64)];
                v.extend(items.iter().map(Val::to_sexp));
                Sexp::tagged("in", v)
            }
            PredSpec::IsNull { col, negated } => {
                Sexp::tagged("isnull", vec![col.to_sexp(), Sexp::Int(*negated as i64)])
            }
            PredSpec::ColCmp { left, op, right } => Sexp::tagged(
                "colcmp",
                vec![left.to_sexp(), Sexp::sym(op.clone()), right.to_sexp()],
            ),
            PredSpec::DivCmp { num, den, rhs } => Sexp::tagged(
                "divcmp",
                vec![Sexp::Int(*num), den.to_sexp(), Sexp::Int(*rhs)],
            ),
            PredSpec::And(ps) => Sexp::tagged("and", ps.iter().map(PredSpec::to_sexp).collect()),
            PredSpec::Or(ps) => Sexp::tagged("or", ps.iter().map(PredSpec::to_sexp).collect()),
            PredSpec::Not(p) => Sexp::tagged("not", vec![p.to_sexp()]),
        }
    }

    fn from_sexp(s: &Sexp) -> Result<PredSpec> {
        let list = s.as_list()?;
        let tag = list
            .first()
            .ok_or_else(|| Error::Parse("corpus: empty predicate".into()))?
            .as_sym()?;
        Ok(match tag {
            "cmp" => PredSpec::Cmp {
                col: ColId::from_sexp(&list[1])?,
                op: list[2].as_sym()?.to_string(),
                rhs: Operand::from_sexp(&list[3])?,
            },
            "between" => PredSpec::Between {
                col: ColId::from_sexp(&list[1])?,
                lo: Operand::from_sexp(&list[2])?,
                hi: Operand::from_sexp(&list[3])?,
                negated: list[4].as_int()? != 0,
            },
            "in" => PredSpec::InList {
                col: ColId::from_sexp(&list[1])?,
                negated: list[2].as_int()? != 0,
                items: list[3..]
                    .iter()
                    .map(Val::from_sexp)
                    .collect::<Result<_>>()?,
            },
            "isnull" => PredSpec::IsNull {
                col: ColId::from_sexp(&list[1])?,
                negated: list[2].as_int()? != 0,
            },
            "colcmp" => PredSpec::ColCmp {
                left: ColId::from_sexp(&list[1])?,
                op: list[2].as_sym()?.to_string(),
                right: ColId::from_sexp(&list[3])?,
            },
            "divcmp" => PredSpec::DivCmp {
                num: list[1].as_int()?,
                den: ColId::from_sexp(&list[2])?,
                rhs: list[3].as_int()?,
            },
            "and" => PredSpec::And(
                list[1..]
                    .iter()
                    .map(PredSpec::from_sexp)
                    .collect::<Result<_>>()?,
            ),
            "or" => PredSpec::Or(
                list[1..]
                    .iter()
                    .map(PredSpec::from_sexp)
                    .collect::<Result<_>>()?,
            ),
            "not" => PredSpec::Not(Box::new(PredSpec::from_sexp(&list[1])?)),
            other => return Err(Error::Parse(format!("corpus: bad predicate tag {other}"))),
        })
    }
}

/// Join shape for multi-table queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// `a JOIN b ON …` when true; comma join with the condition folded
    /// into WHERE when false. Ignored for `QuerySpec::extra_joins`,
    /// which always render comma-style.
    pub explicit: bool,
    /// `LEFT JOIN` (implies `explicit`).
    pub left_outer: bool,
    pub left: ColId,
    pub op: String,
    pub right: ColId,
}

impl JoinSpec {
    fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "join",
            vec![
                Sexp::Int(self.explicit as i64),
                Sexp::Int(self.left_outer as i64),
                self.left.to_sexp(),
                Sexp::sym(self.op.clone()),
                self.right.to_sexp(),
            ],
        )
    }

    fn from_sexp(s: &Sexp) -> Result<JoinSpec> {
        let ji = s.items("join")?;
        Ok(JoinSpec {
            explicit: ji[0].as_int()? != 0,
            left_outer: ji[1].as_int()? != 0,
            left: ColId::from_sexp(&ji[2])?,
            op: ji[3].as_sym()?.to_string(),
            right: ColId::from_sexp(&ji[4])?,
        })
    }
}

/// One aggregate call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCallSpec {
    /// `count`, `sum`, `avg`, `min` or `max`; `arg` None = `count(*)`.
    pub func: String,
    pub arg: Option<ColId>,
}

/// Aggregation shape: `SELECT [group,] calls… [GROUP BY group]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    pub group_by: Option<ColId>,
    pub calls: Vec<AggCallSpec>,
}

/// A structured SELECT over one or more case tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Indices into `Case::tables`; distinct.
    pub tables: Vec<usize>,
    /// Joins `tables[0]` with `tables[1]`.
    pub join: Option<JoinSpec>,
    /// The join-order axis: `extra_joins[k]` chains `tables[k + 2]` onto
    /// the query (comma-style, condition in WHERE), giving the optimizer
    /// a ≥3-relation inner-join space to enumerate.
    pub extra_joins: Vec<JoinSpec>,
    pub pred: Option<PredSpec>,
    pub agg: Option<AggSpec>,
    /// `$n` bindings, 1-based.
    pub params: Vec<Val>,
    /// True when `pred` is an exactly-analyzable filter over partition-key
    /// columns of a single partitioned table — the harness then also
    /// checks the static f*_T upper bound on `parts_scanned`.
    pub static_prunable: bool,
}

impl QuerySpec {
    pub fn sql(&self, all_tables: &[TableSpec]) -> String {
        let specs: Vec<&TableSpec> = self.tables.iter().map(|&t| &all_tables[t]).collect();
        let qualify = specs.len() > 1;
        let col = |c: &ColId| {
            if qualify {
                format!("{}.{}", all_tables[c.table].name, c.col)
            } else {
                c.col.clone()
            }
        };

        let select_list = match &self.agg {
            None => {
                if specs.len() == 1 {
                    "id, v, s".to_string()
                } else {
                    // Project every side's payload plus the left id.
                    let mut items = vec![format!("{0}.id, {0}.v", specs[0].name)];
                    for s in &specs[1..] {
                        items.push(format!("{}.v", s.name));
                    }
                    items.join(", ")
                }
            }
            Some(agg) => {
                let mut items = Vec::new();
                if let Some(g) = &agg.group_by {
                    items.push(col(g));
                }
                for c in &agg.calls {
                    match &c.arg {
                        None => items.push("count(*)".into()),
                        Some(a) => items.push(format!("{}({})", c.func, col(a))),
                    }
                }
                items.join(", ")
            }
        };

        let mut from = specs[0].name.clone();
        let mut where_parts: Vec<String> = Vec::new();
        if let Some(j) = &self.join {
            let on = format!("{} {} {}", col(&j.left), j.op, col(&j.right));
            if j.explicit {
                let kw = if j.left_outer { "LEFT JOIN" } else { "JOIN" };
                let _ = write!(from, " {kw} {} ON {on}", specs[1].name);
            } else {
                let _ = write!(from, ", {}", specs[1].name);
                where_parts.push(on);
            }
        }
        for (k, j) in self.extra_joins.iter().enumerate() {
            let _ = write!(from, ", {}", specs[k + 2].name);
            where_parts.push(format!("{} {} {}", col(&j.left), j.op, col(&j.right)));
        }
        let table_refs: Vec<&TableSpec> = all_tables.iter().collect();
        if let Some(p) = &self.pred {
            where_parts.push(p.sql(&table_refs, qualify));
        }

        let mut sql = format!("SELECT {select_list} FROM {from}");
        if !where_parts.is_empty() {
            let _ = write!(sql, " WHERE {}", where_parts.join(" AND "));
        }
        if let Some(AggSpec {
            group_by: Some(g), ..
        }) = &self.agg
        {
            let _ = write!(sql, " GROUP BY {}", col(g));
        }
        sql
    }

    fn to_sexp(&self) -> Sexp {
        let mut items = vec![Sexp::tagged(
            "tables",
            self.tables.iter().map(|&t| Sexp::Int(t as i64)).collect(),
        )];
        if let Some(j) = &self.join {
            items.push(j.to_sexp());
        }
        if !self.extra_joins.is_empty() {
            items.push(Sexp::tagged(
                "joins",
                self.extra_joins.iter().map(JoinSpec::to_sexp).collect(),
            ));
        }
        if let Some(p) = &self.pred {
            items.push(Sexp::tagged("pred", vec![p.to_sexp()]));
        }
        if let Some(a) = &self.agg {
            let mut ai = Vec::new();
            if let Some(g) = &a.group_by {
                ai.push(Sexp::tagged("group", vec![g.to_sexp()]));
            }
            for c in &a.calls {
                let mut ci = vec![Sexp::sym(c.func.clone())];
                if let Some(arg) = &c.arg {
                    ci.push(arg.to_sexp());
                }
                ai.push(Sexp::tagged("call", ci));
            }
            items.push(Sexp::tagged("agg", ai));
        }
        if !self.params.is_empty() {
            items.push(Sexp::tagged(
                "params",
                self.params.iter().map(Val::to_sexp).collect(),
            ));
        }
        items.push(Sexp::tagged(
            "static",
            vec![Sexp::Int(self.static_prunable as i64)],
        ));
        Sexp::tagged("query", items)
    }

    fn from_sexp(s: &Sexp) -> Result<QuerySpec> {
        let items = s.items("query")?;
        let tables = Sexp::field(items, "tables")?
            .items("tables")?
            .iter()
            .map(|t| Ok(t.as_int()? as usize))
            .collect::<Result<Vec<_>>>()?;
        let join = match Sexp::field_opt(items, "join")? {
            None => None,
            Some(j) => Some(JoinSpec::from_sexp(j)?),
        };
        let extra_joins = match Sexp::field_opt(items, "joins")? {
            None => Vec::new(),
            Some(js) => js
                .items("joins")?
                .iter()
                .map(JoinSpec::from_sexp)
                .collect::<Result<_>>()?,
        };
        let pred = match Sexp::field_opt(items, "pred")? {
            None => None,
            Some(p) => Some(PredSpec::from_sexp(&p.items("pred")?[0])?),
        };
        let agg = match Sexp::field_opt(items, "agg")? {
            None => None,
            Some(a) => {
                let mut group_by = None;
                let mut calls = Vec::new();
                for it in a.items("agg")? {
                    let l = it.as_list()?;
                    match l[0].as_sym()? {
                        "group" => group_by = Some(ColId::from_sexp(&l[1])?),
                        "call" => {
                            calls.push(AggCallSpec {
                                func: l[1].as_sym()?.to_string(),
                                arg: match l.get(2) {
                                    None => None,
                                    Some(c) => Some(ColId::from_sexp(c)?),
                                },
                            });
                        }
                        other => return Err(Error::Parse(format!("corpus: bad agg item {other}"))),
                    }
                }
                Some(AggSpec { group_by, calls })
            }
        };
        let params = match Sexp::field_opt(items, "params")? {
            None => Vec::new(),
            Some(p) => p
                .items("params")?
                .iter()
                .map(Val::from_sexp)
                .collect::<Result<_>>()?,
        };
        let static_prunable = Sexp::field(items, "static")?.items("static")?[0].as_int()? != 0;
        Ok(QuerySpec {
            tables,
            join,
            extra_joins,
            pred,
            agg,
            params,
            static_prunable,
        })
    }
}

/// ALTER TABLE action on a case table's outermost partitioning level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlterKind {
    AddRange { name: String, lo: i64, hi: i64 },
    AddList { name: String, vals: Vec<String> },
    Drop { name: String },
}

/// One step in the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    Alter {
        table: usize,
        kind: AlterKind,
    },
    /// Extra rows inserted mid-workload via SQL `INSERT`.
    Insert {
        table: usize,
        rows: Vec<Vec<Val>>,
    },
    /// `ANALYZE <table>`: recomputes statistics mid-workload. Results of
    /// every later query must be unchanged — statistics may only move the
    /// optimizer between equivalent plans.
    Analyze {
        table: usize,
    },
    Query(Box<QuerySpec>),
}

impl Action {
    pub fn alter_sql(table: &TableSpec, kind: &AlterKind) -> String {
        match kind {
            AlterKind::AddRange { name, lo, hi } => format!(
                "ALTER TABLE {} ADD PARTITION {name} START ({lo}) END ({hi})",
                table.name
            ),
            AlterKind::AddList { name, vals } => {
                let items: Vec<String> = vals.iter().map(|v| Val::Str(v.clone()).sql()).collect();
                format!(
                    "ALTER TABLE {} ADD PARTITION {name} VALUES ({})",
                    table.name,
                    items.join(", ")
                )
            }
            AlterKind::Drop { name } => {
                format!("ALTER TABLE {} DROP PARTITION {name}", table.name)
            }
        }
    }

    pub fn insert_sql(table: &TableSpec, rows: &[Vec<Val>]) -> String {
        let tuples: Vec<String> = rows
            .iter()
            .map(|r| {
                let vals: Vec<String> = r.iter().map(Val::sql).collect();
                format!("({})", vals.join(", "))
            })
            .collect();
        format!("INSERT INTO {} VALUES {}", table.name, tuples.join(", "))
    }

    fn to_sexp(&self) -> Sexp {
        match self {
            Action::Alter { table, kind } => {
                let k = match kind {
                    AlterKind::AddRange { name, lo, hi } => Sexp::tagged(
                        "add-range",
                        vec![Sexp::Str(name.clone()), Sexp::Int(*lo), Sexp::Int(*hi)],
                    ),
                    AlterKind::AddList { name, vals } => {
                        let mut items = vec![Sexp::Str(name.clone())];
                        items.extend(vals.iter().map(|v| Sexp::Str(v.clone())));
                        Sexp::tagged("add-list", items)
                    }
                    AlterKind::Drop { name } => Sexp::tagged("drop", vec![Sexp::Str(name.clone())]),
                };
                Sexp::tagged("alter", vec![Sexp::Int(*table as i64), k])
            }
            Action::Insert { table, rows } => {
                let mut items = vec![Sexp::Int(*table as i64)];
                items.extend(
                    rows.iter()
                        .map(|r| Sexp::list(r.iter().map(Val::to_sexp).collect())),
                );
                Sexp::tagged("insert", items)
            }
            Action::Analyze { table } => Sexp::tagged("analyze", vec![Sexp::Int(*table as i64)]),
            Action::Query(q) => q.to_sexp(),
        }
    }

    fn from_sexp(s: &Sexp) -> Result<Action> {
        let list = s.as_list()?;
        match list.first().map(|h| h.as_sym()).transpose()? {
            Some("alter") => {
                let table = list[1].as_int()? as usize;
                let kl = list[2].as_list()?;
                let kind = match kl[0].as_sym()? {
                    "add-range" => AlterKind::AddRange {
                        name: kl[1].as_str()?.to_string(),
                        lo: kl[2].as_int()?,
                        hi: kl[3].as_int()?,
                    },
                    "add-list" => AlterKind::AddList {
                        name: kl[1].as_str()?.to_string(),
                        vals: kl[2..]
                            .iter()
                            .map(|v| Ok(v.as_str()?.to_string()))
                            .collect::<Result<_>>()?,
                    },
                    "drop" => AlterKind::Drop {
                        name: kl[1].as_str()?.to_string(),
                    },
                    other => return Err(Error::Parse(format!("corpus: bad alter kind {other}"))),
                };
                Ok(Action::Alter { table, kind })
            }
            Some("insert") => Ok(Action::Insert {
                table: list[1].as_int()? as usize,
                rows: list[2..]
                    .iter()
                    .map(|r| {
                        r.as_list()?
                            .iter()
                            .map(Val::from_sexp)
                            .collect::<Result<Vec<_>>>()
                    })
                    .collect::<Result<_>>()?,
            }),
            Some("analyze") => Ok(Action::Analyze {
                table: list[1].as_int()? as usize,
            }),
            Some("query") => Ok(Action::Query(Box::new(QuerySpec::from_sexp(s)?))),
            _ => Err(Error::Parse(format!("corpus: bad action {s}"))),
        }
    }
}

/// A complete differential test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// Generator seed (0 for hand-written or shrunk cases).
    pub seed: u64,
    pub segments: usize,
    /// Adaptive-planning axis pin. `None` means the harness runs the case
    /// under BOTH adaptive settings (the differential axis); `Some(on)`
    /// pins one setting — used by shrunk reproducers so a corpus file
    /// replays exactly the cell that diverged.
    pub adaptive: Option<bool>,
    pub tables: Vec<TableSpec>,
    pub actions: Vec<Action>,
}

impl Case {
    pub fn to_sexp(&self) -> Sexp {
        let mut items = vec![
            Sexp::tagged("seed", vec![Sexp::Int(self.seed as i64)]),
            Sexp::tagged("segments", vec![Sexp::Int(self.segments as i64)]),
        ];
        // Emitted only when pinned, so pre-axis corpus files and
        // unpinned cases share one canonical encoding.
        if let Some(on) = self.adaptive {
            items.push(Sexp::tagged("adaptive", vec![Sexp::Int(on as i64)]));
        }
        items.push(Sexp::tagged(
            "tables",
            self.tables.iter().map(TableSpec::to_sexp).collect(),
        ));
        items.push(Sexp::tagged(
            "actions",
            self.actions.iter().map(Action::to_sexp).collect(),
        ));
        Sexp::tagged("case", items)
    }

    pub fn from_sexp(s: &Sexp) -> Result<Case> {
        let items = s.items("case")?;
        Ok(Case {
            seed: Sexp::field(items, "seed")?.items("seed")?[0].as_int()? as u64,
            segments: Sexp::field(items, "segments")?.items("segments")?[0].as_int()? as usize,
            adaptive: Sexp::field_opt(items, "adaptive")?
                .map(|s| Ok::<_, Error>(s.items("adaptive")?[0].as_int()? != 0))
                .transpose()?,
            tables: Sexp::field(items, "tables")?
                .items("tables")?
                .iter()
                .map(TableSpec::from_sexp)
                .collect::<Result<_>>()?,
            actions: Sexp::field(items, "actions")?
                .items("actions")?
                .iter()
                .map(Action::from_sexp)
                .collect::<Result<_>>()?,
        })
    }

    pub fn encode(&self) -> String {
        crate::sexp::pretty(&self.to_sexp())
    }

    pub fn decode(text: &str) -> Result<Case> {
        Case::from_sexp(&crate::sexp::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> Case {
        Case {
            seed: 7,
            segments: 3,
            adaptive: None,
            tables: vec![TableSpec {
                name: "t0".into(),
                levels: vec![
                    LevelSpec::Range {
                        start: 0,
                        every: 10,
                        count: 4,
                    },
                    LevelSpec::List {
                        groups: vec![vec!["a".into(), "b".into()], vec!["c".into()]],
                        has_default: true,
                    },
                ],
                rows: vec![vec![
                    Val::Int(1),
                    Val::Int(5),
                    Val::Str("a".into()),
                    Val::Null,
                    Val::Str("x".into()),
                ]],
            }],
            actions: vec![
                Action::Alter {
                    table: 0,
                    kind: AlterKind::Drop { name: "p2".into() },
                },
                Action::Query(Box::new(QuerySpec {
                    tables: vec![0],
                    join: None,
                    extra_joins: vec![],
                    pred: Some(PredSpec::And(vec![
                        PredSpec::Cmp {
                            col: ColId::new(0, "k1"),
                            op: "<".into(),
                            rhs: Operand::Lit(Val::Int(20)),
                        },
                        PredSpec::InList {
                            col: ColId::new(0, "k2"),
                            items: vec![Val::Str("a".into())],
                            negated: false,
                        },
                    ])),
                    agg: None,
                    params: vec![],
                    static_prunable: true,
                })),
            ],
        }
    }

    #[test]
    fn case_round_trips_through_sexp() {
        let case = sample_case();
        let text = case.encode();
        // Unpinned cases keep the pre-axis encoding, so old corpus
        // files decode unchanged (adaptive -> None).
        assert!(!text.contains("adaptive"));
        assert_eq!(Case::decode(&text).unwrap(), case);
    }

    #[test]
    fn pinned_adaptive_round_trips_through_sexp() {
        for on in [true, false] {
            let mut case = sample_case();
            case.adaptive = Some(on);
            let text = case.encode();
            assert!(text.contains("(adaptive"));
            assert_eq!(Case::decode(&text).unwrap(), case);
        }
    }

    #[test]
    fn create_sql_renders_partition_clauses() {
        let case = sample_case();
        let sql = case.tables[0].create_sql();
        assert!(sql.contains("PARTITION BY RANGE (k1) (START (0) END (40) EVERY (10))"));
        assert!(sql.contains("SUBPARTITION BY LIST (k2)"));
        assert!(sql.contains("DEFAULT PARTITION ldef"));
    }

    #[test]
    fn query_sql_renders_where() {
        let case = sample_case();
        if let Action::Query(q) = &case.actions[1] {
            let sql = q.sql(&case.tables);
            assert_eq!(
                sql,
                "SELECT id, v, s FROM t0 WHERE (k1 < 20 AND k2 IN ('a'))"
            );
        } else {
            panic!("expected query action");
        }
    }
}
