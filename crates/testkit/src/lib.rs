//! # mpp-testkit — differential oracle testing for the partitioned MPP engine
//!
//! Randomized end-to-end validation of the whole stack, built from four
//! pieces:
//!
//! - [`gen`] — a seeded generator of workloads ([`case::Case`]): tables
//!   with single- and multi-level range/list partitioning (including
//!   DEFAULT partitions), data, and an action stream of SELECTs (AND/OR/
//!   BETWEEN/IN/NULL filters, equi- and non-equi joins, aggregates,
//!   prepared-statement parameters), INSERTs and ALTER TABLE ADD/DROP
//!   PARTITION — plus deliberate negative actions.
//! - [`oracle`] — a deliberately naive single-node reference engine:
//!   flat `Vec<Row>` per table, interpreted expressions, no partitions,
//!   no motions, no compiled or vectorized anything. It executes the same
//!   bound logical plans and additionally tracks per-row *provenance*
//!   (which leaf partition each contributing row was stored in).
//! - [`harness`] — runs each case through all eight
//!   {Orca,Legacy} × {Sequential,Parallel} × {Row,Batch} combos — each
//!   under both scheduler configs of [`harness::sched_axis`] (the
//!   default morsel scheduler and a stress schedule with tiny morsels
//!   and 3 workers) — and the prepared-statement path, diffing row
//!   multisets, error kinds,
//!   partition-elimination *soundness* (`parts_scanned` ⊇ partitions with
//!   qualifying rows) and, for exactly-analyzable static filters,
//!   *minimality* against an independent f*_T bound.
//! - [`shrink`] — a delta-debugging minimizer that reduces a failing case
//!   to a small reproducer, persisted by [`corpus`] under
//!   `testkit/corpus/` and replayed forever after.
//!
//! The `fuzz` binary (`cargo run -p mpp-testkit --bin fuzz --release`)
//! drives the loop; `scripts/fuzz.sh` wraps it for CI.

pub mod case;
pub mod corpus;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod sexp;
pub mod shrink;

pub use case::Case;
pub use gen::gen_case;
pub use harness::{combos, run_case, sched_axis, FailKind, Failure};
pub use oracle::Oracle;
pub use shrink::{minimize, shrink};
