//! The deliberately naive single-node reference engine.
//!
//! Every table is a flat `Vec<Row>`; queries interpret the **same bound
//! [`LogicalPlan`]** the real planners consume, with the tree-walking
//! expression interpreter ([`mpp_expr::eval`]) — no partitions, no
//! motions, no compiled expressions, no vectorization. That makes it an
//! independent ground truth for the compiled/vectorized/distributed
//! engines under test.
//!
//! In addition to result rows the oracle tracks **provenance**: each base
//! row of a partitioned table carries the leaf partition it was routed to
//! (by an independent linear routing over the oracle's own piece model,
//! not the engine's binary-search `PartTree::route`). Provenance flows
//! through filters, joins and aggregates, so after a query the oracle can
//! name exactly which partitions contributed qualifying rows — the set
//! `parts_scanned` must be a superset of (paper §2.3 soundness).

use crate::case::{AlterKind, ColTy, LevelSpec, PredSpec, TableSpec, Val};
use mpp_common::{Datum, Error, Result, Row};
use mpp_expr::{eval, eval_predicate, EvalContext};
use mpp_plan::{AggCall, AggFunc, JoinType, LogicalPlan};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Provenance of one intermediate row: the (table, leaf-partition) pairs
/// whose stored rows contributed to it. Leaf partitions are identified by
/// their dotted name path, keeping the oracle independent of engine OIDs.
pub type Prov = BTreeSet<(String, String)>;

/// Qualifying partitions per table after a query.
pub type Qualifying = BTreeMap<String, BTreeSet<String>>;

/// One piece of one partitioning level in the oracle's own model.
#[derive(Debug, Clone)]
pub enum RefPiece {
    Range { name: String, lo: i64, hi: i64 },
    List { name: String, vals: Vec<String> },
    Default { name: String },
}

impl RefPiece {
    pub fn name(&self) -> &str {
        match self {
            RefPiece::Range { name, .. }
            | RefPiece::List { name, .. }
            | RefPiece::Default { name } => name,
        }
    }

    fn contains(&self, v: &Datum) -> bool {
        match self {
            RefPiece::Range { lo, hi, .. } => match v.as_i64() {
                Ok(x) => *lo <= x && x < *hi,
                Err(_) => false,
            },
            RefPiece::List { vals, .. } => match v.as_str() {
                Ok(s) => vals.iter().any(|x| x == s),
                Err(_) => false,
            },
            RefPiece::Default { .. } => false,
        }
    }
}

/// One live partitioning level (evolves under ALTER).
#[derive(Debug, Clone)]
pub struct RefLevel {
    /// Column index of the key in the table schema.
    pub key_col: usize,
    pub pieces: Vec<RefPiece>,
}

impl RefLevel {
    /// Independent `f_T` for one level: linear scan over the pieces, with
    /// NULL and uncovered values falling to the default piece if any.
    pub fn route(&self, v: &Datum) -> Option<usize> {
        if !v.is_null() {
            if let Some(i) = self.pieces.iter().position(|p| p.contains(v)) {
                return Some(i);
            }
        }
        self.pieces
            .iter()
            .position(|p| matches!(p, RefPiece::Default { .. }))
    }

    pub fn default_index(&self) -> Option<usize> {
        self.pieces
            .iter()
            .position(|p| matches!(p, RefPiece::Default { .. }))
    }
}

/// One oracle table: schema info, live partitioning, and a flat row store.
#[derive(Debug, Clone)]
pub struct RefTable {
    pub name: String,
    pub col_names: Vec<String>,
    pub col_types: Vec<ColTy>,
    pub levels: Vec<RefLevel>,
    /// `(row, leaf name path)`; the path is `None` for unpartitioned
    /// tables.
    pub rows: Vec<(Row, Option<String>)>,
}

impl RefTable {
    fn from_spec(spec: &TableSpec) -> RefTable {
        let levels = spec
            .levels
            .iter()
            .enumerate()
            .map(|(i, l)| RefLevel {
                key_col: spec.key_col(i),
                pieces: match l {
                    LevelSpec::Range {
                        start,
                        every,
                        count,
                    } => (0..*count as i64)
                        .map(|p| RefPiece::Range {
                            name: format!("p{p}"),
                            lo: start + every * p,
                            hi: start + every * (p + 1),
                        })
                        .collect(),
                    LevelSpec::List {
                        groups,
                        has_default,
                    } => {
                        let mut pieces: Vec<RefPiece> = groups
                            .iter()
                            .enumerate()
                            .map(|(g, vals)| RefPiece::List {
                                name: format!("l{g}"),
                                vals: vals.clone(),
                            })
                            .collect();
                        if *has_default {
                            pieces.push(RefPiece::Default {
                                name: "ldef".into(),
                            });
                        }
                        pieces
                    }
                },
            })
            .collect();
        RefTable {
            name: spec.name.clone(),
            col_names: spec.col_names(),
            col_types: spec.col_types(),
            levels,
            rows: Vec::new(),
        }
    }

    /// Route a full row to its leaf name path (`None` = unpartitioned;
    /// `Err` = no matching partition).
    pub fn route_row(&self, row: &Row) -> Result<Option<String>> {
        if self.levels.is_empty() {
            return Ok(None);
        }
        let mut parts = Vec::with_capacity(self.levels.len());
        for level in &self.levels {
            let v = &row.values()[level.key_col];
            match level.route(v) {
                Some(i) => parts.push(level.pieces[i].name().to_string()),
                None => {
                    return Err(Error::NoMatchingPartition(format!(
                        "value {v} has no partition in table {}",
                        self.name
                    )))
                }
            }
        }
        Ok(Some(parts.join(".")))
    }

    fn datum_row(&self, vals: &[Val]) -> Result<Row> {
        if vals.len() != self.col_types.len() {
            return Err(Error::Bind(format!(
                "table {} expects {} columns, got {}",
                self.name,
                self.col_types.len(),
                vals.len()
            )));
        }
        Ok(Row::new(
            vals.iter()
                .zip(&self.col_types)
                .map(|(v, ty)| v.to_datum_for(*ty))
                .collect(),
        ))
    }
}

/// The naive reference database.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    tables: HashMap<String, RefTable>,
}

/// Result of one oracle query.
#[derive(Debug)]
pub struct OracleResult {
    pub rows: Vec<Row>,
    /// Per-table leaf partitions that contributed at least one qualifying
    /// row to the output.
    pub qualifying: Qualifying,
}

impl Oracle {
    pub fn new() -> Oracle {
        Oracle::default()
    }

    pub fn create_table(&mut self, spec: &TableSpec) -> Result<()> {
        if self.tables.contains_key(&spec.name) {
            return Err(Error::Duplicate(format!("table '{}'", spec.name)));
        }
        self.tables
            .insert(spec.name.clone(), RefTable::from_spec(spec));
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&RefTable> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("table '{name}'")))
    }

    /// Insert rows, routing each to a leaf. All-or-nothing: the first
    /// unroutable row fails the batch with no rows applied (callers keep
    /// hazardous inserts single-row so the engine can't diverge on
    /// partial application).
    pub fn insert(&mut self, table: &str, rows: &[Vec<Val>]) -> Result<()> {
        let t = self.table(table)?;
        let mut staged = Vec::with_capacity(rows.len());
        for vals in rows {
            let row = t.datum_row(vals)?;
            let leaf = t.route_row(&row)?;
            staged.push((row, leaf));
        }
        self.tables.get_mut(table).unwrap().rows.extend(staged);
        Ok(())
    }

    /// Mirror of `ALTER TABLE … ADD/DROP PARTITION` semantics, including
    /// the validation error kinds the engine produces. A successful DROP
    /// removes the piece's rows; surviving rows keep their leaf paths.
    pub fn alter(&mut self, table: &str, kind: &AlterKind) -> Result<()> {
        let t = self.table(table)?;
        if t.levels.is_empty() {
            return Err(Error::InvalidMetadata(format!(
                "table '{table}' is not partitioned"
            )));
        }
        let level0 = &t.levels[0];
        let dup = |name: &str| {
            level0
                .pieces
                .iter()
                .any(|p| p.name().eq_ignore_ascii_case(name))
        };
        match kind {
            AlterKind::AddRange { name, lo, hi } => {
                if dup(name) {
                    return Err(Error::Duplicate(format!("partition '{name}'")));
                }
                if level0.default_index().is_some() {
                    return Err(Error::InvalidMetadata(
                        "cannot add a partition to a level with a default partition".into(),
                    ));
                }
                if lo >= hi {
                    return Err(Error::InvalidMetadata(format!(
                        "partition '{name}' has an empty range"
                    )));
                }
                for p in &level0.pieces {
                    if let RefPiece::Range {
                        lo: plo, hi: phi, ..
                    } = p
                    {
                        if *lo < *phi && *plo < *hi {
                            return Err(Error::InvalidMetadata(format!(
                                "partition '{name}' overlaps '{}'",
                                p.name()
                            )));
                        }
                    }
                }
                self.tables.get_mut(table).unwrap().levels[0]
                    .pieces
                    .push(RefPiece::Range {
                        name: name.clone(),
                        lo: *lo,
                        hi: *hi,
                    });
            }
            AlterKind::AddList { name, vals } => {
                if dup(name) {
                    return Err(Error::Duplicate(format!("partition '{name}'")));
                }
                if level0.default_index().is_some() {
                    return Err(Error::InvalidMetadata(
                        "cannot add a partition to a level with a default partition".into(),
                    ));
                }
                for p in &level0.pieces {
                    if let RefPiece::List { vals: pv, .. } = p {
                        if vals.iter().any(|v| pv.contains(v)) {
                            return Err(Error::InvalidMetadata(format!(
                                "partition '{name}' overlaps '{}'",
                                p.name()
                            )));
                        }
                    }
                }
                self.tables.get_mut(table).unwrap().levels[0]
                    .pieces
                    .push(RefPiece::List {
                        name: name.clone(),
                        vals: vals.clone(),
                    });
            }
            AlterKind::Drop { name } => {
                let i = level0
                    .pieces
                    .iter()
                    .position(|p| p.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| Error::NotFound(format!("partition '{name}'")))?;
                if level0.pieces.len() == 1 {
                    return Err(Error::InvalidMetadata(
                        "cannot drop the last partition".into(),
                    ));
                }
                let t = self.tables.get_mut(table).unwrap();
                let piece_name = t.levels[0].pieces[i].name().to_string();
                t.levels[0].pieces.remove(i);
                t.rows.retain(|(_, leaf)| match leaf {
                    Some(path) => {
                        let head = path.split('.').next().unwrap_or(path);
                        head != piece_name
                    }
                    None => true,
                });
            }
        }
        Ok(())
    }

    /// Execute a bound logical plan against the flat stores. Returns rows
    /// plus the qualifying-partition sets.
    pub fn query(&self, plan: &LogicalPlan, params: &[Datum]) -> Result<OracleResult> {
        let out = self.exec(plan, params)?;
        let mut qualifying: Qualifying = BTreeMap::new();
        let mut rows = Vec::with_capacity(out.rows.len());
        for (row, prov) in out.rows {
            for (table, leaf) in prov {
                qualifying.entry(table).or_default().insert(leaf);
            }
            rows.push(row);
        }
        Ok(OracleResult { rows, qualifying })
    }

    fn exec(&self, plan: &LogicalPlan, params: &[Datum]) -> Result<RSet> {
        match plan {
            LogicalPlan::Get {
                table_name, output, ..
            } => {
                let t = self.table(table_name)?;
                let rows = t
                    .rows
                    .iter()
                    .map(|(row, leaf)| {
                        let prov = match leaf {
                            Some(l) => BTreeSet::from([(t.name.clone(), l.clone())]),
                            None => BTreeSet::new(),
                        };
                        (row.clone(), prov)
                    })
                    .collect();
                Ok(RSet {
                    cols: output.clone(),
                    rows,
                })
            }
            LogicalPlan::Select { pred, child } => {
                let input = self.exec(child, params)?;
                let ctx = EvalContext::from_columns(&input.cols).with_params(params);
                let mut rows = Vec::new();
                for (row, prov) in input.rows {
                    eval_arith_eagerly(pred, &row, &ctx)?;
                    if eval_predicate(pred, &row, &ctx)? {
                        rows.push((row, prov));
                    }
                }
                Ok(RSet {
                    cols: input.cols,
                    rows,
                })
            }
            LogicalPlan::Project {
                exprs,
                output,
                child,
            } => {
                let input = self.exec(child, params)?;
                let ctx = EvalContext::from_columns(&input.cols).with_params(params);
                let mut rows = Vec::with_capacity(input.rows.len());
                for (row, prov) in input.rows {
                    let vals = exprs
                        .iter()
                        .map(|e| eval(e, &row, &ctx))
                        .collect::<Result<Vec<_>>>()?;
                    rows.push((Row::new(vals), prov));
                }
                Ok(RSet {
                    cols: output.clone(),
                    rows,
                })
            }
            LogicalPlan::Join {
                join_type,
                pred,
                left,
                right,
            } => self.exec_join(*join_type, pred, left, right, params),
            LogicalPlan::Agg {
                group_by,
                aggs,
                output,
                child,
            } => self.exec_agg(group_by, aggs, output, child, params),
            LogicalPlan::Values { rows, output } => Ok(RSet {
                cols: output.clone(),
                rows: rows
                    .iter()
                    .map(|r| (Row::new(r.clone()), BTreeSet::new()))
                    .collect(),
            }),
            LogicalPlan::Limit { n, child } => {
                let mut input = self.exec(child, params)?;
                input.rows.truncate(*n as usize);
                Ok(input)
            }
            LogicalPlan::Sort { keys, child } => {
                let input = self.exec(child, params)?;
                let pos: Vec<(usize, bool)> = keys
                    .iter()
                    .map(|(c, desc)| {
                        input
                            .cols
                            .iter()
                            .position(|x| x == c)
                            .map(|i| (i, *desc))
                            .ok_or_else(|| Error::Execution(format!("sort column {c} missing")))
                    })
                    .collect::<Result<_>>()?;
                let mut rows = input.rows;
                rows.sort_by(|(a, _), (b, _)| {
                    for &(i, desc) in &pos {
                        let ord = a.values()[i].cmp(&b.values()[i]);
                        let ord = if desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(RSet {
                    cols: input.cols,
                    rows,
                })
            }
            LogicalPlan::Update { .. }
            | LogicalPlan::Delete { .. }
            | LogicalPlan::Insert { .. } => Err(Error::Unsupported(
                "the oracle interprets queries only; apply DML structurally".into(),
            )),
        }
    }

    fn exec_join(
        &self,
        join_type: JoinType,
        pred: &mpp_expr::Expr,
        left: &LogicalPlan,
        right: &LogicalPlan,
        params: &[Datum],
    ) -> Result<RSet> {
        let l = self.exec(left, params)?;
        let r = self.exec(right, params)?;
        let mut cols = l.cols.clone();
        cols.extend(r.cols.iter().cloned());
        let ctx = EvalContext::from_columns(&cols).with_params(params);
        let out_cols = match join_type {
            JoinType::Inner | JoinType::LeftOuter => cols.clone(),
            JoinType::LeftSemi | JoinType::LeftAnti => l.cols.clone(),
        };
        let right_arity = r.cols.len();
        let mut rows = Vec::new();
        for (lrow, lprov) in &l.rows {
            let mut matched = false;
            for (rrow, rprov) in &r.rows {
                let joined = lrow.concat(rrow);
                eval_arith_eagerly(pred, &joined, &ctx)?;
                if eval_predicate(pred, &joined, &ctx)? {
                    matched = true;
                    match join_type {
                        JoinType::Inner | JoinType::LeftOuter => {
                            let mut prov = lprov.clone();
                            prov.extend(rprov.iter().cloned());
                            rows.push((joined, prov));
                        }
                        JoinType::LeftSemi => {
                            rows.push((lrow.clone(), lprov.clone()));
                            break;
                        }
                        JoinType::LeftAnti => break,
                    }
                }
            }
            if !matched {
                match join_type {
                    JoinType::LeftOuter => {
                        let mut vals = lrow.values().to_vec();
                        vals.extend(std::iter::repeat_n(Datum::Null, right_arity));
                        rows.push((Row::new(vals), lprov.clone()));
                    }
                    JoinType::LeftAnti => rows.push((lrow.clone(), lprov.clone())),
                    _ => {}
                }
            }
        }
        Ok(RSet {
            cols: out_cols,
            rows,
        })
    }

    fn exec_agg(
        &self,
        group_by: &[mpp_expr::ColRef],
        aggs: &[AggCall],
        output: &[mpp_expr::ColRef],
        child: &LogicalPlan,
        params: &[Datum],
    ) -> Result<RSet> {
        let input = self.exec(child, params)?;
        let ctx = EvalContext::from_columns(&input.cols).with_params(params);
        let positions: Vec<usize> = group_by
            .iter()
            .map(|c| {
                input
                    .cols
                    .iter()
                    .position(|x| x == c)
                    .ok_or_else(|| Error::Execution(format!("group column {c} missing")))
            })
            .collect::<Result<_>>()?;
        // Groups in first-seen order, mirroring the engine's AggExec.
        let mut index: HashMap<Vec<Datum>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Datum>, Vec<NaiveAcc>, Prov)> = Vec::new();
        for (row, prov) in &input.rows {
            let key: Vec<Datum> = positions.iter().map(|&i| row.values()[i].clone()).collect();
            let slot = match index.get(&key) {
                Some(&s) => s,
                None => {
                    let s = groups.len();
                    index.insert(key.clone(), s);
                    groups.push((key, vec![NaiveAcc::default(); aggs.len()], BTreeSet::new()));
                    s
                }
            };
            let (_, accs, gprov) = &mut groups[slot];
            gprov.extend(prov.iter().cloned());
            for (acc, call) in accs.iter_mut().zip(aggs) {
                let v = match &call.arg {
                    None => None,
                    Some(e) => Some(eval(e, row, &ctx)?),
                };
                acc.observe(v)?;
            }
        }
        if groups.is_empty() && positions.is_empty() {
            // Scalar aggregate over empty input: one default row.
            let vals: Vec<Datum> = aggs
                .iter()
                .map(|call| match call.func {
                    AggFunc::Count => Datum::Int64(0),
                    _ => Datum::Null,
                })
                .collect();
            return Ok(RSet {
                cols: output.to_vec(),
                rows: vec![(Row::new(vals), BTreeSet::new())],
            });
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, accs, prov) in groups {
            let mut vals = key;
            for (acc, call) in accs.iter().zip(aggs) {
                vals.push(acc.finalize(call)?);
            }
            rows.push((Row::new(vals), prov));
        }
        Ok(RSet {
            cols: output.to_vec(),
            rows,
        })
    }
}

struct RSet {
    cols: Vec<mpp_expr::ColRef>,
    rows: Vec<(Row, Prov)>,
}

/// Naive aggregate accumulator, mirroring the engine's SQL semantics
/// (NULLs skipped, COUNT(*) counts rows, int SUM overflow is an
/// arithmetic error, AVG is a float).
#[derive(Debug, Clone, Default)]
struct NaiveAcc {
    count: i64,
    non_null: i64,
    sum_i: Option<i64>,
    sum_f: f64,
    sum_is_float: bool,
    min: Option<Datum>,
    max: Option<Datum>,
}

impl NaiveAcc {
    fn observe(&mut self, v: Option<Datum>) -> Result<()> {
        self.count += 1;
        let Some(v) = v else { return Ok(()) };
        if v.is_null() {
            return Ok(());
        }
        self.non_null += 1;
        match &v {
            Datum::Float64(f) => {
                self.sum_is_float = true;
                self.sum_f += f;
            }
            Datum::Int32(_) | Datum::Int64(_) | Datum::Date(_) => {
                let i = v.as_i64()?;
                self.sum_i = Some(
                    self.sum_i
                        .unwrap_or(0)
                        .checked_add(i)
                        .ok_or_else(|| Error::Arithmetic("sum overflow".into()))?,
                );
                self.sum_f += i as f64;
            }
            _ => {}
        }
        match &self.min {
            Some(m) if &v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if &v <= m => {}
            _ => self.max = Some(v),
        }
        Ok(())
    }

    fn finalize(&self, call: &AggCall) -> Result<Datum> {
        Ok(match call.func {
            AggFunc::Count => match &call.arg {
                None => Datum::Int64(self.count),
                Some(_) => Datum::Int64(self.non_null),
            },
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Datum::Null
                } else if self.sum_is_float {
                    Datum::Float64(self.sum_f)
                } else {
                    Datum::Int64(self.sum_i.unwrap_or(0))
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Datum::Null
                } else {
                    Datum::Float64(self.sum_f / self.non_null as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
        })
    }
}

/// Evaluate a [`PredSpec`] over a partial assignment of columns (3VL:
/// `None` = unknown). Used by the static upper-bound computation, where
/// only partition-key columns are bound.
/// Evaluate every arithmetic subexpression of `expr` against `row`, eagerly,
/// surfacing any runtime error (division by zero) before the short-circuiting
/// [`eval_predicate`] runs. The engines may push a single-table conjunct below
/// a join and hit the division on rows the oracle's nested-loop join would
/// short-circuit past; SQL leaves the evaluation order unspecified, so the
/// oracle errs whenever *any* order could. The harness treats
/// oracle-errors-engine-succeeds as a pass for arithmetic kinds (sound
/// pruning legitimately skips erroring rows), so eagerness never causes a
/// spurious failure — it only makes engine-errors-oracle-succeeds a true bug.
fn eval_arith_eagerly(expr: &mpp_expr::Expr, row: &Row, ctx: &EvalContext) -> Result<()> {
    use mpp_expr::Expr as E;
    match expr {
        E::Col(_) | E::Lit(_) | E::Param(_) => Ok(()),
        E::Arith { left, right, .. } => {
            eval_arith_eagerly(left, row, ctx)?;
            eval_arith_eagerly(right, row, ctx)?;
            eval(expr, row, ctx).map(|_| ())
        }
        E::Cmp { left, right, .. } => {
            eval_arith_eagerly(left, row, ctx)?;
            eval_arith_eagerly(right, row, ctx)
        }
        E::And(es) | E::Or(es) => {
            for e in es {
                eval_arith_eagerly(e, row, ctx)?;
            }
            Ok(())
        }
        E::Not(e) | E::IsNull(e) => eval_arith_eagerly(e, row, ctx),
        E::Between { expr, low, high } => {
            eval_arith_eagerly(expr, row, ctx)?;
            eval_arith_eagerly(low, row, ctx)?;
            eval_arith_eagerly(high, row, ctx)
        }
        E::InList { expr, list, .. } => {
            eval_arith_eagerly(expr, row, ctx)?;
            for e in list {
                eval_arith_eagerly(e, row, ctx)?;
            }
            Ok(())
        }
    }
}

pub fn eval_pred_spec(
    pred: &PredSpec,
    lookup: &dyn Fn(&crate::case::ColId) -> Option<Datum>,
    params: &[Val],
) -> Option<bool> {
    use crate::case::Operand;
    let operand = |o: &Operand| -> Option<Datum> {
        match o {
            Operand::Lit(v) => Some(v.to_datum()),
            Operand::Param(n) => params.get((*n - 1) as usize).map(Val::to_datum),
        }
    };
    let cmp3 = |a: &Datum, b: &Datum, op: &str| -> Option<bool> {
        let ord = a.sql_cmp(b).ok()??;
        Some(match op {
            "=" => ord == std::cmp::Ordering::Equal,
            "<>" => ord != std::cmp::Ordering::Equal,
            "<" => ord == std::cmp::Ordering::Less,
            "<=" => ord != std::cmp::Ordering::Greater,
            ">" => ord == std::cmp::Ordering::Greater,
            ">=" => ord != std::cmp::Ordering::Less,
            _ => return None,
        })
    };
    match pred {
        PredSpec::Cmp { col, op, rhs } => {
            let l = lookup(col)?;
            let r = operand(rhs)?;
            if l.is_null() || r.is_null() {
                return None;
            }
            cmp3(&l, &r, op)
        }
        PredSpec::Between {
            col,
            lo,
            hi,
            negated,
        } => {
            let v = lookup(col)?;
            let lo = operand(lo)?;
            let hi = operand(hi)?;
            let ge = cmp3(&v, &lo, ">=");
            let le = cmp3(&v, &hi, "<=");
            let b = match (ge, le) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            };
            b.map(|x| x != *negated)
        }
        PredSpec::InList {
            col,
            items,
            negated,
        } => {
            let v = lookup(col)?;
            if v.is_null() {
                return None;
            }
            let mut saw_null = false;
            for item in items {
                let iv = item.to_datum();
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if matches!(v.sql_cmp(&iv), Ok(Some(std::cmp::Ordering::Equal))) {
                    return Some(!*negated);
                }
            }
            if saw_null {
                None
            } else {
                Some(*negated)
            }
        }
        PredSpec::IsNull { col, negated } => {
            let v = lookup(col)?;
            Some(v.is_null() != *negated)
        }
        PredSpec::ColCmp { left, op, right } => {
            let l = lookup(left)?;
            let r = lookup(right)?;
            if l.is_null() || r.is_null() {
                return None;
            }
            cmp3(&l, &r, op)
        }
        PredSpec::DivCmp { num, den, rhs } => {
            let d = lookup(den)?;
            if d.is_null() {
                return None;
            }
            let d = d.as_i64().ok()?;
            if d == 0 {
                return None; // the real engines error; unreachable for key-only preds
            }
            Some(num / d == *rhs)
        }
        PredSpec::And(ps) => {
            let mut saw_unknown = false;
            for p in ps {
                match eval_pred_spec(p, lookup, params) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => saw_unknown = true,
                }
            }
            if saw_unknown {
                None
            } else {
                Some(true)
            }
        }
        PredSpec::Or(ps) => {
            let mut saw_unknown = false;
            for p in ps {
                match eval_pred_spec(p, lookup, params) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => saw_unknown = true,
                }
            }
            if saw_unknown {
                None
            } else {
                Some(false)
            }
        }
        PredSpec::Not(p) => eval_pred_spec(p, lookup, params).map(|b| !b),
    }
}

/// Independent f*_T upper bound for a static-prunable single-table query.
///
/// The engines derive one `DerivedSet` per partitioning level and select
/// the Cartesian product of the per-level piece selections (the paper's
/// Figure 10 multi-level generalization). A predicate like
/// `k1 IN (...) OR k2 IN (...)` therefore constrains *neither* level in
/// isolation — the per-level representation cannot express cross-level
/// disjunctions — and a correct engine scans every leaf. The bound here
/// mirrors that: per level, keep each piece for which some
/// boundary-adjacent candidate value routed to it leaves the predicate
/// not-definitely-false under 3VL with every other column unknown, then
/// take the product. Per level this is exact for the predicate forms the
/// generator tags static, so an engine scanning outside the bound failed
/// to apply a per-level elimination it had enough information to make.
pub fn static_upper_bound(
    table: &RefTable,
    table_idx: usize,
    pred: &PredSpec,
    params: &[Val],
) -> BTreeSet<String> {
    // The engines derive intervals over an abstract *dense* ordered domain:
    // `k1 > 24` intersected with piece [20,25) leaves (24,25), which is
    // non-empty there even though no integer inhabits it, so keeping the
    // piece is correct per-level behavior, not a missed elimination. Model
    // the dense domain by doubling every integer — piece bounds, predicate
    // literals, parameters — so odd scaled values stand for the midpoints a
    // dense domain contains. (DivCmp does not survive scaling, but the
    // generator never tags a DivCmp predicate static.)
    let pred = &scale_pred(pred);
    let params: &[Val] = &params.iter().map(scale_val).collect::<Vec<_>>();
    let levels: Vec<RefLevel> = table.levels.iter().map(scale_level).collect();

    // Candidate key values per level: piece boundaries ±1 (ints) or piece
    // values (strings), predicate literals ±1, an uncovered sentinel, and
    // NULL (routes to the default piece; predicates reject it unless they
    // are satisfied by unknown — they are not, under eval_predicate).
    let mut grids: Vec<Vec<Datum>> = Vec::with_capacity(levels.len());
    let mut lits: Vec<Val> = Vec::new();
    collect_literals(pred, params, &mut lits);
    for level in &levels {
        let mut grid: Vec<Datum> = vec![Datum::Null];
        let mut ints: Vec<i64> = Vec::new();
        let mut strs: Vec<String> = Vec::new();
        for p in &level.pieces {
            match p {
                RefPiece::Range { lo, hi, .. } => {
                    ints.extend([*lo - 1, *lo, *hi - 1, *hi]);
                }
                RefPiece::List { vals, .. } => strs.extend(vals.iter().cloned()),
                RefPiece::Default { .. } => {}
            }
        }
        for lit in &lits {
            match lit {
                Val::Int(v) => ints.extend([*v - 1, *v, *v + 1]),
                Val::Str(s) => strs.push(s.clone()),
                Val::Null => {}
            }
        }
        strs.push("~~uncovered~~".into());
        ints.sort_unstable();
        ints.dedup();
        strs.sort();
        strs.dedup();
        grid.extend(ints.into_iter().map(Datum::Int64));
        grid.extend(strs.into_iter().map(|s| Datum::str(s.as_str())));
        grids.push(grid);
    }

    // Per-level projection: a piece survives if some candidate value that
    // routes to it leaves the predicate not-definitely-false when every
    // other column is unknown.
    let mut selected: Vec<Vec<String>> = Vec::with_capacity(levels.len());
    for (li, level) in levels.iter().enumerate() {
        let mut keep: BTreeSet<usize> = BTreeSet::new();
        for v in &grids[li] {
            let Some(pi) = level.route(v) else { continue };
            if keep.contains(&pi) {
                continue;
            }
            let key_name = table.col_names[level.key_col].as_str();
            let lookup = |c: &crate::case::ColId| -> Option<Datum> {
                if c.table == table_idx && c.col == key_name {
                    Some(v.clone())
                } else {
                    None
                }
            };
            if eval_pred_spec(pred, &lookup, params) != Some(false) {
                keep.insert(pi);
            }
        }
        selected.push(
            keep.into_iter()
                .map(|i| level.pieces[i].name().to_string())
                .collect(),
        );
    }

    let mut out = BTreeSet::new();
    let mut path: Vec<String> = Vec::with_capacity(selected.len());
    product_paths(&selected, 0, &mut path, &mut out);
    out
}

fn scale_val(v: &Val) -> Val {
    match v {
        Val::Int(i) => Val::Int(i * 2),
        other => other.clone(),
    }
}

fn scale_operand(o: &crate::case::Operand) -> crate::case::Operand {
    use crate::case::Operand;
    match o {
        Operand::Lit(v) => Operand::Lit(scale_val(v)),
        p => p.clone(),
    }
}

/// Double every integer literal so the predicate lives in the same scaled
/// domain as [`scale_level`] pieces. `DivCmp` is left alone — integer
/// division does not scale — which is fine because the generator never tags
/// a predicate containing one as static.
fn scale_pred(p: &PredSpec) -> PredSpec {
    match p {
        PredSpec::Cmp { col, op, rhs } => PredSpec::Cmp {
            col: col.clone(),
            op: op.clone(),
            rhs: scale_operand(rhs),
        },
        PredSpec::Between {
            col,
            lo,
            hi,
            negated,
        } => PredSpec::Between {
            col: col.clone(),
            lo: scale_operand(lo),
            hi: scale_operand(hi),
            negated: *negated,
        },
        PredSpec::InList {
            col,
            items,
            negated,
        } => PredSpec::InList {
            col: col.clone(),
            items: items.iter().map(scale_val).collect(),
            negated: *negated,
        },
        PredSpec::And(ps) => PredSpec::And(ps.iter().map(scale_pred).collect()),
        PredSpec::Or(ps) => PredSpec::Or(ps.iter().map(scale_pred).collect()),
        PredSpec::Not(inner) => PredSpec::Not(Box::new(scale_pred(inner))),
        PredSpec::IsNull { .. } | PredSpec::ColCmp { .. } | PredSpec::DivCmp { .. } => p.clone(),
    }
}

fn scale_level(l: &RefLevel) -> RefLevel {
    RefLevel {
        key_col: l.key_col,
        pieces: l
            .pieces
            .iter()
            .map(|p| match p {
                RefPiece::Range { name, lo, hi } => RefPiece::Range {
                    name: name.clone(),
                    lo: lo * 2,
                    hi: hi * 2,
                },
                other => other.clone(),
            })
            .collect(),
    }
}

fn product_paths(
    selected: &[Vec<String>],
    level: usize,
    path: &mut Vec<String>,
    out: &mut BTreeSet<String>,
) {
    if level == selected.len() {
        out.insert(path.join("."));
        return;
    }
    for name in &selected[level] {
        path.push(name.clone());
        product_paths(selected, level + 1, path, out);
        path.pop();
    }
}

fn collect_literals(pred: &PredSpec, params: &[Val], out: &mut Vec<Val>) {
    use crate::case::Operand;
    let operand = |o: &Operand, out: &mut Vec<Val>| match o {
        Operand::Lit(v) => out.push(v.clone()),
        Operand::Param(n) => {
            if let Some(v) = params.get((*n - 1) as usize) {
                out.push(v.clone());
            }
        }
    };
    match pred {
        PredSpec::Cmp { rhs, .. } => operand(rhs, out),
        PredSpec::Between { lo, hi, .. } => {
            operand(lo, out);
            operand(hi, out);
        }
        PredSpec::InList { items, .. } => out.extend(items.iter().cloned()),
        PredSpec::IsNull { .. } | PredSpec::ColCmp { .. } => {}
        PredSpec::DivCmp { num, rhs, .. } => out.extend([Val::Int(*num), Val::Int(*rhs)]),
        PredSpec::And(ps) | PredSpec::Or(ps) => {
            for p in ps {
                collect_literals(p, params, out);
            }
        }
        PredSpec::Not(p) => collect_literals(p, params, out),
    }
}
