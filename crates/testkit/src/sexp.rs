//! A tiny s-expression reader/writer used to persist minimized
//! reproducers under `testkit/corpus/`.
//!
//! The vendored `serde_json` stub has no parser, so the corpus format is
//! self-contained here: atoms are symbols, 64-bit integers, or
//! percent-encoded strings; lists nest in parentheses. The encoding is
//! deterministic, diff-friendly, and trivially hand-editable — exactly
//! what a checked-in regression corpus wants.

use mpp_common::{Error, Result};
use std::fmt;

/// One node of a parsed s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexp {
    /// Bare identifier, e.g. `query` or `null`.
    Sym(String),
    /// Integer atom.
    Int(i64),
    /// String atom, written as `"…"` with percent-encoded specials.
    Str(String),
    /// `( … )`.
    List(Vec<Sexp>),
}

impl Sexp {
    pub fn sym(s: impl Into<String>) -> Sexp {
        Sexp::Sym(s.into())
    }

    pub fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items)
    }

    /// A list starting with a tag symbol: `(tag …)`.
    pub fn tagged(tag: &str, mut items: Vec<Sexp>) -> Sexp {
        let mut v = Vec::with_capacity(items.len() + 1);
        v.push(Sexp::sym(tag));
        v.append(&mut items);
        Sexp::List(v)
    }

    pub fn as_sym(&self) -> Result<&str> {
        match self {
            Sexp::Sym(s) => Ok(s),
            other => Err(corrupt(format!("expected symbol, got {other}"))),
        }
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Sexp::Int(v) => Ok(*v),
            other => Err(corrupt(format!("expected int, got {other}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Sexp::Str(s) => Ok(s),
            other => Err(corrupt(format!("expected string, got {other}"))),
        }
    }

    pub fn as_list(&self) -> Result<&[Sexp]> {
        match self {
            Sexp::List(items) => Ok(items),
            other => Err(corrupt(format!("expected list, got {other}"))),
        }
    }

    /// The items of a `(tag …)` list, with the tag checked and stripped.
    pub fn items(&self, tag: &str) -> Result<&[Sexp]> {
        let list = self.as_list()?;
        match list.first() {
            Some(head) if head.as_sym()? == tag => Ok(&list[1..]),
            _ => Err(corrupt(format!("expected ({tag} …), got {self}"))),
        }
    }

    /// Find the unique child list tagged `tag` among `(parent (a …) (b …))`.
    pub fn field<'a>(items: &'a [Sexp], tag: &str) -> Result<&'a Sexp> {
        Sexp::field_opt(items, tag)?.ok_or_else(|| corrupt(format!("missing field ({tag} …)")))
    }

    pub fn field_opt<'a>(items: &'a [Sexp], tag: &str) -> Result<Option<&'a Sexp>> {
        for it in items {
            if let Sexp::List(l) = it {
                if let Some(Sexp::Sym(s)) = l.first() {
                    if s == tag {
                        return Ok(Some(it));
                    }
                }
            }
        }
        Ok(None)
    }
}

fn corrupt(msg: String) -> Error {
    Error::Parse(format!("corpus: {msg}"))
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' | '%' | '\\' | '\n' | '\r' | '\t' => {
                out.push('%');
                out.push_str(&format!("{:02x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn decode_str(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hi = chars.next().ok_or_else(|| corrupt("bad escape".into()))?;
            let lo = chars.next().ok_or_else(|| corrupt("bad escape".into()))?;
            let code = u32::from_str_radix(&format!("{hi}{lo}"), 16)
                .map_err(|_| corrupt("bad escape".into()))?;
            out.push(char::from_u32(code).ok_or_else(|| corrupt("bad escape".into()))?);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Sym(s) => write!(f, "{s}"),
            Sexp::Int(v) => write!(f, "{v}"),
            Sexp::Str(s) => {
                let mut buf = String::new();
                encode_str(s, &mut buf);
                write!(f, "{buf}")
            }
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Pretty-print with one top-level child per line so corpus diffs stay
/// readable. Nesting below depth 2 is compact.
pub fn pretty(sexp: &Sexp) -> String {
    fn rec(s: &Sexp, depth: usize, out: &mut String) {
        match s {
            Sexp::List(items) if depth < 2 && items.len() > 2 => {
                out.push('(');
                for (i, it) in items.iter().enumerate() {
                    if i == 0 {
                        out.push_str(&it.to_string());
                    } else {
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth + 1));
                        rec(it, depth + 1, out);
                    }
                }
                out.push(')');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    let mut out = String::new();
    rec(sexp, 0, &mut out);
    out.push('\n');
    out
}

/// Parse one s-expression from `text` (comments start with `;`).
pub fn parse(text: &str) -> Result<Sexp> {
    let mut toks = tokenize(text)?;
    toks.reverse(); // pop() from the front
    let sexp = parse_one(&mut toks)?;
    if !toks.is_empty() {
        return Err(corrupt("trailing tokens".into()));
    }
    Ok(sexp)
}

#[derive(Debug)]
enum Tok {
    Open,
    Close,
    Sym(String),
    Int(i64),
    Str(String),
}

fn tokenize(text: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::Open);
            }
            ')' => {
                chars.next();
                toks.push(Tok::Close);
            }
            '"' => {
                chars.next();
                let mut raw = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) => raw.push(c),
                        None => return Err(corrupt("unterminated string".into())),
                    }
                }
                toks.push(Tok::Str(decode_str(&raw)?));
            }
            _ => {
                let mut atom = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' {
                        break;
                    }
                    atom.push(c);
                    chars.next();
                }
                let first = atom.chars().next().unwrap_or(' ');
                if first.is_ascii_digit() || first == '-' && atom.len() > 1 {
                    toks.push(Tok::Int(
                        atom.parse::<i64>()
                            .map_err(|_| corrupt(format!("bad int '{atom}'")))?,
                    ));
                } else {
                    toks.push(Tok::Sym(atom));
                }
            }
        }
    }
    Ok(toks)
}

fn parse_one(toks: &mut Vec<Tok>) -> Result<Sexp> {
    match toks.pop() {
        None => Err(corrupt("unexpected end of input".into())),
        Some(Tok::Open) => {
            let mut items = Vec::new();
            loop {
                match toks.last() {
                    None => return Err(corrupt("unclosed list".into())),
                    Some(Tok::Close) => {
                        toks.pop();
                        return Ok(Sexp::List(items));
                    }
                    _ => items.push(parse_one(toks)?),
                }
            }
        }
        Some(Tok::Close) => Err(corrupt("unexpected ')'".into())),
        Some(Tok::Sym(s)) => Ok(Sexp::Sym(s)),
        Some(Tok::Int(v)) => Ok(Sexp::Int(v)),
        Some(Tok::Str(s)) => Ok(Sexp::Str(s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let s = Sexp::tagged(
            "case",
            vec![
                Sexp::tagged("seed", vec![Sexp::Int(42)]),
                Sexp::Str("a b%\"c".into()),
                Sexp::List(vec![Sexp::Int(-7), Sexp::sym("null")]),
            ],
        );
        let text = pretty(&s);
        assert_eq!(parse(&text).unwrap(), s);
        // Compact form round-trips too.
        assert_eq!(parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn comments_and_errors() {
        assert_eq!(
            parse("; header\n(a 1)").unwrap(),
            Sexp::tagged("a", vec![Sexp::Int(1)])
        );
        assert!(parse("(a").is_err());
        assert!(parse(")").is_err());
        assert!(parse("(a) b").is_err());
    }
}
