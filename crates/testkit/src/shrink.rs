//! Delta-debugging failure minimizer.
//!
//! Given a failing [`Case`] and a predicate that re-checks the failure,
//! [`shrink`] greedily applies structure-aware reductions to a fixpoint:
//! truncating and deleting actions, removing unreferenced tables,
//! deleting rows (in halving chunks, then singly), dropping partitions
//! and whole partitioning levels, pinning the adaptive-planning axis to
//! the one setting that reproduces, and simplifying predicates (replacing
//! an AND/OR with one conjunct, unwrapping NOT, shrinking IN lists,
//! inlining `$n` parameters, dropping filters/aggregates/joins).
//!
//! Every candidate is validated by re-running the caller's predicate, so
//! a reduction is kept only when the *same* failure still reproduces.
//! The result is typically a one-table, few-row, single-predicate
//! reproducer ready to be checked into `testkit/corpus/`.

use crate::case::{Action, AggSpec, Case, Operand, PredSpec, QuerySpec};
use crate::harness::{run_case, Failure};

/// Minimize `case` while `fails` keeps returning true. `fails` must be
/// deterministic; it is never called on the input case itself (the
/// caller asserts that).
pub fn shrink(case: &Case, fails: &dyn Fn(&Case) -> bool) -> Case {
    let mut current = case.clone();
    // Pin the adaptive axis first: a pinned case replays only the cell
    // that diverged (halving every later `fails` probe) and records which
    // adaptive setting the reproducer needs.
    pin_adaptive(&mut current, fails);
    loop {
        let mut progressed = false;
        progressed |= shrink_actions(&mut current, fails);
        progressed |= shrink_tables(&mut current, fails);
        progressed |= shrink_rows(&mut current, fails);
        progressed |= shrink_partitions(&mut current, fails);
        progressed |= shrink_queries(&mut current, fails);
        if !progressed {
            return current;
        }
    }
}

/// Shrink a failing case, preserving the failure *kind* observed on the
/// input. Returns the minimized case and the failure it still produces;
/// `None` when the case does not fail at all.
pub fn minimize(case: &Case) -> Option<(Case, Failure)> {
    let original = run_case(case)?;
    let kind = original.kind;
    let small = shrink(case, &|c| matches!(run_case(c), Some(f) if f.kind == kind));
    let failure = run_case(&small)?;
    Some((small, failure))
}

/// Pin an unpinned case to the single adaptive setting that still fails
/// (trying adaptive-on first, the default). Leaves the case unpinned when
/// neither setting reproduces alone — e.g. a failure that needs the
/// cross-setting catalog state the full axis builds up.
fn pin_adaptive(case: &mut Case, fails: &dyn Fn(&Case) -> bool) -> bool {
    if case.adaptive.is_some() {
        return false;
    }
    for on in [true, false] {
        let mut candidate = case.clone();
        candidate.adaptive = Some(on);
        if fails(&candidate) {
            *case = candidate;
            return true;
        }
    }
    false
}

/// Remove list items in halving chunks, then singly, keeping removals
/// that preserve the failure. Returns true when anything was removed.
fn minimize_list<T: Clone>(items: &mut Vec<T>, mut still_fails: impl FnMut(&[T]) -> bool) -> bool {
    let mut progressed = false;
    let mut chunk = (items.len() / 2).max(1);
    while !items.is_empty() {
        let mut removed_any = false;
        let mut start = 0;
        while start < items.len() {
            let end = (start + chunk).min(items.len());
            let mut candidate = items.clone();
            candidate.drain(start..end);
            if still_fails(&candidate) {
                *items = candidate;
                progressed = true;
                removed_any = true;
                // Same start now points at the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
    progressed
}

fn shrink_actions(case: &mut Case, fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut actions = case.actions.clone();
    let template = case.clone();
    let progressed = minimize_list(&mut actions, |candidate| {
        let mut c = template.clone();
        c.actions = candidate.to_vec();
        fails(&c)
    });
    if progressed {
        case.actions = actions;
    }
    progressed
}

fn shrink_tables(case: &mut Case, fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut progressed = false;
    // Remove unreferenced tables, highest index first so remaining
    // removals stay valid.
    for r in (0..case.tables.len()).rev() {
        if case.tables.len() == 1 || table_used(case, r) {
            continue;
        }
        let mut candidate = case.clone();
        candidate.tables.remove(r);
        remap_tables(&mut candidate, r);
        if fails(&candidate) {
            *case = candidate;
            progressed = true;
        }
    }
    progressed
}

fn table_used(case: &Case, t: usize) -> bool {
    case.actions.iter().any(|a| match a {
        Action::Alter { table, .. } | Action::Insert { table, .. } | Action::Analyze { table } => {
            *table == t
        }
        Action::Query(q) => {
            if q.tables.contains(&t) {
                return true;
            }
            let mut cols = Vec::new();
            if let Some(p) = &q.pred {
                p.cols(&mut cols);
            }
            for j in q.join.iter().chain(&q.extra_joins) {
                cols.push(j.left.clone());
                cols.push(j.right.clone());
            }
            if let Some(AggSpec { group_by, calls }) = &q.agg {
                if let Some(g) = group_by {
                    cols.push(g.clone());
                }
                for c in calls {
                    if let Some(a) = &c.arg {
                        cols.push(a.clone());
                    }
                }
            }
            cols.iter().any(|c| c.table == t)
        }
    })
}

/// Decrement every table index greater than the removed index.
fn remap_tables(case: &mut Case, removed: usize) {
    let fix = |t: &mut usize| {
        if *t > removed {
            *t -= 1;
        }
    };
    for a in &mut case.actions {
        match a {
            Action::Alter { table, .. }
            | Action::Insert { table, .. }
            | Action::Analyze { table } => fix(table),
            Action::Query(q) => {
                for t in &mut q.tables {
                    fix(t);
                }
                for j in q.join.iter_mut().chain(&mut q.extra_joins) {
                    fix(&mut j.left.table);
                    fix(&mut j.right.table);
                }
                if let Some(p) = &mut q.pred {
                    remap_pred(p, removed);
                }
                if let Some(agg) = &mut q.agg {
                    if let Some(g) = &mut agg.group_by {
                        fix(&mut g.table);
                    }
                    for c in &mut agg.calls {
                        if let Some(arg) = &mut c.arg {
                            fix(&mut arg.table);
                        }
                    }
                }
            }
        }
    }
}

fn remap_pred(p: &mut PredSpec, removed: usize) {
    let fix = |t: &mut usize| {
        if *t > removed {
            *t -= 1;
        }
    };
    match p {
        PredSpec::Cmp { col, .. }
        | PredSpec::Between { col, .. }
        | PredSpec::InList { col, .. }
        | PredSpec::IsNull { col, .. }
        | PredSpec::DivCmp { den: col, .. } => fix(&mut col.table),
        PredSpec::ColCmp { left, right, .. } => {
            fix(&mut left.table);
            fix(&mut right.table);
        }
        PredSpec::And(ps) | PredSpec::Or(ps) => {
            for c in ps {
                remap_pred(c, removed);
            }
        }
        PredSpec::Not(inner) => remap_pred(inner, removed),
    }
}

fn shrink_rows(case: &mut Case, fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut progressed = false;
    // Initial table rows.
    for t in 0..case.tables.len() {
        let mut rows = case.tables[t].rows.clone();
        let template = case.clone();
        if minimize_list(&mut rows, |candidate| {
            let mut c = template.clone();
            c.tables[t].rows = candidate.to_vec();
            fails(&c)
        }) {
            case.tables[t].rows = rows;
            progressed = true;
        }
    }
    // Rows inside Insert actions (an empty insert renders invalid SQL, so
    // dropping the whole action is left to shrink_actions).
    for i in 0..case.actions.len() {
        let Action::Insert { rows, .. } = &case.actions[i] else {
            continue;
        };
        let mut rows = rows.clone();
        let template = case.clone();
        if minimize_list(&mut rows, |candidate| {
            if candidate.is_empty() {
                return false;
            }
            let mut c = template.clone();
            let Action::Insert { rows, .. } = &mut c.actions[i] else {
                unreachable!();
            };
            *rows = candidate.to_vec();
            fails(&c)
        }) {
            let Action::Insert { rows: r, .. } = &mut case.actions[i] else {
                unreachable!();
            };
            *r = rows;
            progressed = true;
        }
    }
    progressed
}

fn shrink_partitions(case: &mut Case, fails: &dyn Fn(&Case) -> bool) -> bool {
    use crate::case::LevelSpec;
    let mut progressed = false;
    for t in 0..case.tables.len() {
        // Try dropping the innermost level entirely (its key column
        // disappears from the schema, so its values leave the rows too;
        // predicates still naming the column make the candidate unbindable
        // and the attempt is simply rejected).
        while !case.tables[t].levels.is_empty() {
            let lvl = case.tables[t].levels.len() - 1;
            let col = case.tables[t].key_col(lvl);
            let mut candidate = case.clone();
            candidate.tables[t].levels.pop();
            for row in &mut candidate.tables[t].rows {
                row.remove(col);
            }
            for a in &mut candidate.actions {
                if let Action::Insert { table, rows } = a {
                    if *table == t {
                        for row in rows {
                            row.remove(col);
                        }
                    }
                }
            }
            if fails(&candidate) {
                *case = candidate;
                progressed = true;
            } else {
                break;
            }
        }
        // Shrink each remaining level's piece count.
        for lvl in 0..case.tables[t].levels.len() {
            loop {
                let mut candidate = case.clone();
                let shrunk = match &mut candidate.tables[t].levels[lvl] {
                    LevelSpec::Range { count, .. } if *count > 1 => {
                        *count -= 1;
                        true
                    }
                    LevelSpec::List {
                        groups,
                        has_default,
                    } => {
                        if groups.len() > 1 {
                            groups.pop();
                            true
                        } else if *has_default {
                            *has_default = false;
                            true
                        } else {
                            false
                        }
                    }
                    _ => false,
                };
                if shrunk && fails(&candidate) {
                    *case = candidate;
                    progressed = true;
                } else {
                    break;
                }
            }
        }
    }
    progressed
}

fn shrink_queries(case: &mut Case, fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut progressed = false;
    for i in 0..case.actions.len() {
        let Action::Query(q) = &case.actions[i] else {
            continue;
        };
        for candidate_query in query_candidates(q) {
            let mut candidate = case.clone();
            candidate.actions[i] = Action::Query(Box::new(candidate_query));
            if fails(&candidate) {
                case.actions[i] = candidate.actions[i].clone();
                progressed = true;
            }
        }
    }
    progressed
}

/// One-step simplifications of a query, most aggressive first.
fn query_candidates(q: &QuerySpec) -> Vec<QuerySpec> {
    let mut out = Vec::new();
    if q.join.is_some() {
        let mut c = q.clone();
        c.join = None;
        c.extra_joins.clear();
        c.tables.truncate(1);
        out.push(c);
    }
    if !q.extra_joins.is_empty() {
        // Unchain the last extra table.
        let mut c = q.clone();
        c.extra_joins.pop();
        c.tables.truncate(q.tables.len() - 1);
        out.push(c);
    }
    if q.agg.is_some() {
        let mut c = q.clone();
        c.agg = None;
        out.push(c);
    }
    if q.pred.is_some() {
        let mut c = q.clone();
        c.pred = None;
        c.params = Vec::new();
        c.static_prunable = false;
        out.push(c);
    }
    if !q.params.is_empty() {
        // Inline every `$n` as its bound literal.
        let mut c = q.clone();
        if let Some(p) = &mut c.pred {
            inline_params(p, &q.params);
        }
        c.params = Vec::new();
        out.push(c);
    }
    if let Some(p) = &q.pred {
        for cand in pred_candidates(p) {
            let mut c = q.clone();
            c.pred = Some(cand);
            out.push(c);
        }
    }
    if let Some(agg) = &q.agg {
        if agg.calls.len() > 1 {
            let mut c = q.clone();
            c.agg.as_mut().unwrap().calls.truncate(1);
            out.push(c);
        }
        if agg.group_by.is_some() {
            let mut c = q.clone();
            c.agg.as_mut().unwrap().group_by = None;
            out.push(c);
        }
    }
    out
}

fn inline_params(p: &mut PredSpec, params: &[crate::case::Val]) {
    let fix = |o: &mut Operand| {
        if let Operand::Param(n) = o {
            if let Some(v) = params.get((*n - 1) as usize) {
                *o = Operand::Lit(v.clone());
            }
        }
    };
    match p {
        PredSpec::Cmp { rhs, .. } => fix(rhs),
        PredSpec::Between { lo, hi, .. } => {
            fix(lo);
            fix(hi);
        }
        PredSpec::And(ps) | PredSpec::Or(ps) => {
            for c in ps {
                inline_params(c, params);
            }
        }
        PredSpec::Not(inner) => inline_params(inner, params),
        _ => {}
    }
}

/// One-step simplifications of a predicate tree.
fn pred_candidates(p: &PredSpec) -> Vec<PredSpec> {
    let mut out = Vec::new();
    match p {
        PredSpec::And(ps) | PredSpec::Or(ps) => {
            // Each child alone.
            for c in ps {
                out.push(c.clone());
            }
            // Drop one child, keeping the connective (arity ≥ 2).
            if ps.len() > 2 {
                for i in 0..ps.len() {
                    let mut rest = ps.clone();
                    rest.remove(i);
                    out.push(match p {
                        PredSpec::And(_) => PredSpec::And(rest),
                        _ => PredSpec::Or(rest),
                    });
                }
            }
            // Simplify one child in place.
            for (i, c) in ps.iter().enumerate() {
                for cand in pred_candidates(c) {
                    let mut children = ps.clone();
                    children[i] = cand;
                    out.push(match p {
                        PredSpec::And(_) => PredSpec::And(children),
                        _ => PredSpec::Or(children),
                    });
                }
            }
        }
        PredSpec::Not(inner) => {
            out.push((**inner).clone());
            for cand in pred_candidates(inner) {
                out.push(PredSpec::Not(Box::new(cand)));
            }
        }
        PredSpec::InList {
            col,
            items,
            negated,
        } if items.len() > 1 => {
            for item in items {
                out.push(PredSpec::InList {
                    col: col.clone(),
                    items: vec![item.clone()],
                    negated: *negated,
                });
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{ColId, LevelSpec, Val};

    /// A synthetic check: "fails" whenever the case still contains a query
    /// whose predicate references k1 with a `<` comparison. The shrinker
    /// must strip everything else.
    fn synthetic_fails(c: &Case) -> bool {
        c.actions.iter().any(|a| {
            let Action::Query(q) = a else { return false };
            let Some(p) = &q.pred else { return false };
            pred_has_lt_k1(p)
        })
    }

    fn pred_has_lt_k1(p: &PredSpec) -> bool {
        match p {
            PredSpec::Cmp { col, op, .. } => col.col == "k1" && op == "<",
            PredSpec::And(ps) | PredSpec::Or(ps) => ps.iter().any(pred_has_lt_k1),
            PredSpec::Not(inner) => pred_has_lt_k1(inner),
            _ => false,
        }
    }

    #[test]
    fn shrinker_reduces_generated_case_to_minimum() {
        // Find a generated case containing the synthetic "bug".
        let case = (0..500u64)
            .map(crate::gen::gen_case)
            .find(synthetic_fails)
            .expect("some seed generates a k1 < … query");
        let small = shrink(&case, &synthetic_fails);
        assert!(synthetic_fails(&small), "shrinking preserved the failure");
        assert_eq!(small.tables.len(), 1, "one table survives");
        assert!(
            small.tables[0].rows.len() <= 10,
            "rows minimized: {}",
            small.tables[0].rows.len()
        );
        let total_pieces: usize = small.tables[0]
            .levels
            .iter()
            .map(|l| match l {
                LevelSpec::Range { count, .. } => *count as usize,
                LevelSpec::List {
                    groups,
                    has_default,
                } => groups.len() + *has_default as usize,
            })
            .sum();
        assert!(total_pieces <= 3, "partitions minimized: {total_pieces}");
        assert_eq!(small.actions.len(), 1, "one action survives");
        let Action::Query(q) = &small.actions[0] else {
            panic!("surviving action is the query");
        };
        // The predicate collapsed to the single failing comparison.
        assert!(
            matches!(
                q.pred.as_ref().unwrap(),
                PredSpec::Cmp { col: ColId { col, .. }, op, .. } if col == "k1" && op == "<"
            ),
            "predicate minimized to a single comparison: {:?}",
            q.pred
        );
        assert!(q.join.is_none() && q.agg.is_none());
        // The synthetic failure is adaptive-independent, so the shrinker
        // pins the axis to the first setting it probes (adaptive on).
        assert_eq!(small.adaptive, Some(true));
    }

    #[test]
    fn minimize_list_removes_all_removable() {
        let mut items: Vec<i32> = (0..37).collect();
        // Failure depends only on items 5 and 20 being present.
        minimize_list(&mut items, |c| c.contains(&5) && c.contains(&20));
        assert_eq!(items, vec![5, 20]);
    }

    #[test]
    fn inline_params_substitutes_literals() {
        let mut p = PredSpec::Cmp {
            col: ColId::new(0, "k1"),
            op: "<".into(),
            rhs: Operand::Param(1),
        };
        inline_params(&mut p, &[Val::Int(42)]);
        assert_eq!(
            p,
            PredSpec::Cmp {
                col: ColId::new(0, "k1"),
                op: "<".into(),
                rhs: Operand::Lit(Val::Int(42)),
            }
        );
    }
}
