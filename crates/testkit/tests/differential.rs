//! A bounded differential run inside `cargo test`: a few dozen generated
//! cases through the full harness, enough to catch gross regressions in
//! any {planner} × {exec mode} × {exec engine} cell without the runtime
//! of a real fuzz campaign (`scripts/fuzz.sh` does that). Seeds are
//! fixed, so a failure here is deterministic — reproduce it with
//! `cargo run -p mpp-testkit --bin fuzz -- --cases 1 --seed <seed>`.

use mpp_testkit::{gen_case, run_case, shrink};

const SEEDS: std::ops::Range<u64> = 10_000..10_040;

#[test]
fn generated_cases_pass_the_differential_harness() {
    let mut failures = Vec::new();
    for seed in SEEDS {
        let case = gen_case(seed);
        if let Some(f) = run_case(&case) {
            failures.push(format!("seed {seed}: {f}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} differential failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The shrinker must terminate and keep the failure on a real generated
/// case with a synthetic oracle: "fails whenever table 0 still has a
/// query action". This exercises the table/row/partition/predicate
/// passes against generator output rather than hand-built minimal cases.
#[test]
fn shrinker_terminates_on_generated_cases() {
    use mpp_testkit::case::Action;
    for seed in [42u64, 77, 123] {
        let case = gen_case(seed);
        let has_query =
            |c: &mpp_testkit::Case| c.actions.iter().any(|a| matches!(a, Action::Query(_)));
        if !has_query(&case) {
            continue;
        }
        let small = shrink(&case, &has_query);
        assert!(has_query(&small), "shrinker lost the failure (seed {seed})");
        assert!(
            small.actions.len() <= case.actions.len(),
            "shrinker grew the case (seed {seed})"
        );
    }
}
