//! DDL execution: `CREATE TABLE … [DISTRIBUTED …] [PARTITION BY …]` and
//! `DROP TABLE`.
//!
//! The partition clauses follow Greenplum's flavor:
//!
//! ```sql
//! CREATE TABLE orders (o_id bigint, amount double, date date NOT NULL)
//! DISTRIBUTED BY (o_id)
//! PARTITION BY RANGE (date)
//!   (START ('2012-01-01') END ('2014-01-01') EVERY (1 MONTH));
//! ```
//!
//! with optional `SUBPARTITION BY` clauses for multi-level partitioning
//! (paper §2.4).

use crate::parser::{
    AlterAction, AstExpr, ColumnDef, DistClause, EveryStep, PartClause, Statement,
};
use mpp_catalog::builders::{range_level_stepped, RangeStep};
use mpp_catalog::{Catalog, Distribution, PartTree, PartitionLevel, PartitionPiece, TableDesc};
use mpp_common::value::parse_date;
use mpp_common::{Column, DataType, Datum, Error, Result, Schema, TableOid};
use mpp_expr::interval::Interval;
use mpp_expr::IntervalSet;
use std::collections::HashMap;

/// Execute a DDL statement against the catalog. Returns the affected
/// table's OID.
pub fn execute_ddl(stmt: &Statement, catalog: &Catalog) -> Result<TableOid> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            distribution,
            partitioning,
        } => create_table(name, columns, distribution.as_ref(), partitioning, catalog),
        Statement::DropTable { name } => {
            let oid = catalog.table_by_name(name)?.oid;
            catalog.drop_table(oid)?;
            Ok(oid)
        }
        Statement::AlterTable { table, action } => alter_table(table, action, catalog),
        _ => Err(Error::Internal(
            "execute_ddl called on a non-DDL statement".into(),
        )),
    }
}

fn parse_type(name: &str) -> Result<DataType> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "int" | "int4" | "integer" => DataType::Int32,
        "bigint" | "int8" => DataType::Int64,
        "double" | "float8" | "float" | "real" => DataType::Float64,
        "text" | "varchar" | "char" => DataType::Utf8,
        "date" => DataType::Date,
        "bool" | "boolean" => DataType::Bool,
        other => return Err(Error::Parse(format!("unknown type '{other}'"))),
    })
}

/// Evaluate a DDL literal, coercing date strings when the key is a date
/// column.
fn literal(e: &AstExpr, ty: DataType) -> Result<Datum> {
    let d = match e {
        AstExpr::IntLit(v) => {
            if ty == DataType::Int32 {
                Datum::Int32(
                    i32::try_from(*v)
                        .map_err(|_| Error::Parse(format!("{v} out of range for int4")))?,
                )
            } else {
                Datum::Int64(*v)
            }
        }
        AstExpr::FloatLit(v) => Datum::Float64(*v),
        AstExpr::StrLit(s) => {
            if ty == DataType::Date {
                parse_date(s)?
            } else {
                Datum::str(s.as_str())
            }
        }
        AstExpr::BoolLit(b) => Datum::Bool(*b),
        other => {
            return Err(Error::Parse(format!(
                "expected a literal in DDL, got {other:?}"
            )))
        }
    };
    Ok(d)
}

fn create_table(
    name: &str,
    columns: &[ColumnDef],
    distribution: Option<&DistClause>,
    partitioning: &[PartClause],
    catalog: &Catalog,
) -> Result<TableOid> {
    if columns.is_empty() {
        return Err(Error::Parse("a table needs at least one column".into()));
    }
    let mut cols = Vec::with_capacity(columns.len());
    for c in columns {
        let mut col = Column::new(c.name.as_str(), parse_type(&c.type_name)?);
        if c.not_null {
            col = col.not_null();
        }
        cols.push(col);
    }
    let schema = Schema::new(cols);

    let dist = match distribution {
        None => Distribution::Hashed(vec![0]),
        Some(DistClause::Replicated) => Distribution::Replicated,
        Some(DistClause::By(names)) => {
            let idx = names
                .iter()
                .map(|n| schema.index_of(n))
                .collect::<Result<Vec<_>>>()?;
            Distribution::Hashed(idx)
        }
    };

    let partitioning = if partitioning.is_empty() {
        None
    } else {
        let levels = partitioning
            .iter()
            .map(|clause| build_level(clause, &schema))
            .collect::<Result<Vec<_>>>()?;
        let leaves: usize = levels.iter().map(|l| l.pieces.len()).product();
        let first = catalog.allocate_part_oids(leaves as u32);
        Some(PartTree::new(levels, first)?)
    };

    let oid = catalog.allocate_table_oid();
    catalog.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: dist,
        partitioning,
    })?;
    Ok(oid)
}

/// ALTER TABLE ADD/DROP PARTITION: rebuild the outermost level, keeping
/// every surviving leaf's OID (matched by its dotted name path) so its
/// stored rows survive the swap. New leaves get freshly allocated OIDs.
fn alter_table(table: &str, action: &AlterAction, catalog: &Catalog) -> Result<TableOid> {
    let desc = catalog.table_by_name(table)?;
    let tree = desc.part_tree()?;
    let level0 = &tree.levels()[0];
    let ty = desc.schema.column(level0.key_index)?.data_type;

    let mut pieces = level0.pieces.clone();
    match action {
        AlterAction::AddRange { name, start, end } => {
            ensure_fresh_piece_name(&pieces, name)?;
            ensure_no_default(&pieces)?;
            let iv = Interval::half_open(literal(start, ty)?, literal(end, ty)?);
            if iv.is_empty() {
                return Err(Error::InvalidMetadata(format!(
                    "partition '{name}' has an empty range"
                )));
            }
            pieces.push(PartitionPiece::new(name.clone(), IntervalSet::interval(iv)));
        }
        AlterAction::AddList { name, values } => {
            ensure_fresh_piece_name(&pieces, name)?;
            ensure_no_default(&pieces)?;
            let datums = values
                .iter()
                .map(|v| literal(v, ty))
                .collect::<Result<Vec<_>>>()?;
            pieces.push(PartitionPiece::new(
                name.clone(),
                IntervalSet::points(datums),
            ));
        }
        AlterAction::Drop { name } => {
            let i = pieces
                .iter()
                .position(|p| p.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| Error::NotFound(format!("partition '{name}'")))?;
            pieces.remove(i);
            if pieces.is_empty() {
                return Err(Error::InvalidMetadata(
                    "cannot drop the last partition".into(),
                ));
            }
        }
    }

    let mut levels = tree.levels().to_vec();
    levels[0] = PartitionLevel::new(level0.key_index, pieces)?;
    // Shape pass with placeholder OIDs to learn the new leaf name paths,
    // then keep old OIDs where the path survives and mint the rest.
    let shape = PartTree::new(levels.clone(), mpp_common::PartOid(0))?;
    let by_path: HashMap<&str, mpp_common::PartOid> = tree
        .leaves()
        .iter()
        .map(|l| (l.name.as_str(), l.oid))
        .collect();
    let fresh = shape
        .leaves()
        .iter()
        .filter(|l| !by_path.contains_key(l.name.as_str()))
        .count();
    let mut next_new = catalog.allocate_part_oids(fresh as u32);
    let oids = shape
        .leaves()
        .iter()
        .map(|l| match by_path.get(l.name.as_str()) {
            Some(&oid) => oid,
            None => {
                let oid = next_new;
                next_new = mpp_common::PartOid(next_new.0 + 1);
                oid
            }
        })
        .collect();
    let new_tree = PartTree::with_leaf_oids(levels, oids)?;
    catalog.replace_table(TableDesc {
        partitioning: Some(new_tree),
        ..(*desc).clone()
    })?;
    Ok(desc.oid)
}

fn ensure_fresh_piece_name(pieces: &[PartitionPiece], name: &str) -> Result<()> {
    if pieces.iter().any(|p| p.name.eq_ignore_ascii_case(name)) {
        return Err(Error::Duplicate(format!("partition '{name}'")));
    }
    Ok(())
}

/// Adding a partition to a level with a DEFAULT partition is rejected
/// (Greenplum requires splitting the default instead): rows the new piece
/// would now claim may already sit in the default partition, and routing
/// around them would silently change query results.
fn ensure_no_default(pieces: &[PartitionPiece]) -> Result<()> {
    if let Some(def) = pieces.iter().find(|p| p.is_default) {
        return Err(Error::InvalidMetadata(format!(
            "cannot add a partition to a level with a default partition \
             ('{}'); split the default instead",
            def.name
        )));
    }
    Ok(())
}

fn build_level(clause: &PartClause, schema: &Schema) -> Result<PartitionLevel> {
    match clause {
        PartClause::Range {
            column,
            start,
            end,
            every,
        } => {
            let key_index = schema.index_of(column)?;
            let ty = schema.column(key_index)?.data_type;
            let start = literal(start, ty)?;
            let end = literal(end, ty)?;
            let step = match every {
                EveryStep::Width(w) => RangeStep::Width(*w),
                EveryStep::Months(m) => RangeStep::Months(*m),
            };
            range_level_stepped(key_index, start, end, step)
        }
        PartClause::List {
            column,
            parts,
            default_partition,
        } => {
            let key_index = schema.index_of(column)?;
            let ty = schema.column(key_index)?.data_type;
            let mut pieces = parts
                .iter()
                .map(|(nm, vals)| {
                    let datums = vals
                        .iter()
                        .map(|v| literal(v, ty))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(PartitionPiece::new(nm.clone(), IntervalSet::points(datums)))
                })
                .collect::<Result<Vec<_>>>()?;
            // The default piece keeps the user's declared name, so it can
            // be addressed by later ALTER … DROP PARTITION statements.
            if let Some(nm) = default_partition {
                pieces.push(PartitionPiece::default_piece(nm.clone()));
            }
            PartitionLevel::new(key_index, pieces)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ddl(sql: &str, cat: &Catalog) -> Result<TableOid> {
        execute_ddl(&parse(sql).unwrap(), cat)
    }

    #[test]
    fn create_plain_table() {
        let cat = Catalog::new();
        let oid = ddl(
            "CREATE TABLE t (a int NOT NULL, b bigint, c text, d double, e bool)",
            &cat,
        )
        .unwrap();
        let desc = cat.table(oid).unwrap();
        assert_eq!(desc.schema.len(), 5);
        assert!(!desc.schema.column(0).unwrap().nullable);
        assert!(desc.schema.column(1).unwrap().nullable);
        assert_eq!(desc.distribution, Distribution::Hashed(vec![0]));
        assert!(!desc.is_partitioned());
    }

    #[test]
    fn create_monthly_partitioned_table() {
        // The paper's Figure 1 schema, straight from SQL.
        let cat = Catalog::new();
        let oid = ddl(
            "CREATE TABLE orders (o_id bigint, amount double, date date NOT NULL) \
             DISTRIBUTED BY (o_id) \
             PARTITION BY RANGE (date) \
             (START ('2012-01-01') END ('2014-01-01') EVERY (1 MONTH))",
            &cat,
        )
        .unwrap();
        let desc = cat.table(oid).unwrap();
        assert_eq!(desc.num_leaves(), 24);
        let tree = desc.part_tree().unwrap();
        assert_eq!(
            tree.route(&[Datum::date_ymd(2013, 10, 15)]),
            tree.route(&[Datum::date_ymd(2013, 10, 1)])
        );
        assert!(tree.route(&[Datum::date_ymd(2014, 1, 1)]).is_none());
    }

    #[test]
    fn create_range_by_days_and_ints() {
        let cat = Catalog::new();
        let oid = ddl(
            "CREATE TABLE evt (ts date, v int) \
             PARTITION BY RANGE (ts) \
             (START ('2012-01-01') END ('2012-03-01') EVERY (14 DAYS))",
            &cat,
        )
        .unwrap();
        assert_eq!(cat.table(oid).unwrap().num_leaves(), 5); // 60 days / 14 → 5
        let oid = ddl(
            "CREATE TABLE m (k int, v int) \
             PARTITION BY RANGE (k) (START (0) END (100) EVERY (10))",
            &cat,
        )
        .unwrap();
        assert_eq!(cat.table(oid).unwrap().num_leaves(), 10);
    }

    #[test]
    fn create_list_partitioned_with_default() {
        let cat = Catalog::new();
        let oid = ddl(
            "CREATE TABLE cust (id int, state text) \
             PARTITION BY LIST (state) \
             (PARTITION west VALUES ('CA', 'OR'), \
              PARTITION east VALUES ('NY'), \
              DEFAULT PARTITION other)",
            &cat,
        )
        .unwrap();
        let tree = cat.part_tree(oid).unwrap();
        assert_eq!(tree.num_leaves(), 3);
        assert!(tree.route(&[Datum::str("TX")]).is_some());
    }

    #[test]
    fn create_multilevel_with_subpartition() {
        // Paper Figure 9: RANGE on date × LIST on region.
        let cat = Catalog::new();
        let oid = ddl(
            "CREATE TABLE orders_ml (o_id bigint, date date, region text) \
             PARTITION BY RANGE (date) \
             (START ('2012-01-01') END ('2014-01-01') EVERY (1 MONTH)) \
             SUBPARTITION BY LIST (region) \
             (PARTITION r1 VALUES ('Region 1'), PARTITION r2 VALUES ('Region 2'))",
            &cat,
        )
        .unwrap();
        let desc = cat.table(oid).unwrap();
        assert_eq!(desc.part_tree().unwrap().num_levels(), 2);
        assert_eq!(desc.num_leaves(), 48);
    }

    #[test]
    fn drop_table_frees_the_name() {
        let cat = Catalog::new();
        ddl("CREATE TABLE t (a int)", &cat).unwrap();
        assert!(ddl("CREATE TABLE t (a int)", &cat).is_err());
        ddl("DROP TABLE t", &cat).unwrap();
        assert!(cat.table_by_name("t").is_err());
        ddl("CREATE TABLE t (a int)", &cat).unwrap();
    }

    #[test]
    fn alter_add_and_drop_partitions_preserve_leaf_oids() {
        let cat = Catalog::new();
        let oid = ddl(
            "CREATE TABLE m (k int, v int) \
             PARTITION BY RANGE (k) (START (0) END (30) EVERY (10))",
            &cat,
        )
        .unwrap();
        let before = cat.part_tree(oid).unwrap();
        let v_before = cat.version();

        ddl("ALTER TABLE m ADD PARTITION p4 START (30) END (40)", &cat).unwrap();
        let after = cat.part_tree(oid).unwrap();
        assert_eq!(after.num_leaves(), 4);
        assert!(cat.version() > v_before);
        // Old leaves keep their OIDs; the new one is fresh.
        for leaf in before.leaves() {
            assert_eq!(after.leaf_by_oid(leaf.oid).unwrap().name, leaf.name);
        }
        let new_leaf = after.route(&[Datum::Int32(35)]).unwrap();
        assert!(before.leaf_by_oid(new_leaf).is_err());
        assert_eq!(cat.part_owner(new_leaf).unwrap(), oid);

        ddl("ALTER TABLE m DROP PARTITION p4", &cat).unwrap();
        let dropped = cat.part_tree(oid).unwrap();
        assert_eq!(dropped.num_leaves(), 3);
        assert!(cat.part_owner(new_leaf).is_err());
        assert_eq!(dropped.route(&[Datum::Int32(35)]), None);
    }

    #[test]
    fn alter_list_and_multilevel() {
        let cat = Catalog::new();
        ddl(
            "CREATE TABLE cust (id int, state text) \
             PARTITION BY LIST (state) \
             (PARTITION west VALUES ('CA', 'OR'), PARTITION east VALUES ('NY'))",
            &cat,
        )
        .unwrap();
        ddl("ALTER TABLE cust ADD PARTITION south VALUES ('TX')", &cat).unwrap();
        let oid = cat.table_by_name("cust").unwrap().oid;
        assert!(cat
            .part_tree(oid)
            .unwrap()
            .route(&[Datum::str("TX")])
            .is_some());

        // Adding an outer range piece to a 2-level tree crosses it with the
        // existing subpartitions.
        let oid = ddl(
            "CREATE TABLE ml (k int, region text) \
             PARTITION BY RANGE (k) (START (0) END (20) EVERY (10)) \
             SUBPARTITION BY LIST (region) \
             (PARTITION r1 VALUES ('a'), PARTITION r2 VALUES ('b'))",
            &cat,
        )
        .unwrap();
        ddl("ALTER TABLE ml ADD PARTITION p3 START (20) END (30)", &cat).unwrap();
        let tree = cat.part_tree(oid).unwrap();
        assert_eq!(tree.num_leaves(), 6);
        assert!(tree.route(&[Datum::Int32(25), Datum::str("b")]).is_some());
    }

    #[test]
    fn bad_alter_is_rejected() {
        let cat = Catalog::new();
        ddl(
            "CREATE TABLE m (k int) \
             PARTITION BY RANGE (k) (START (0) END (10) EVERY (10))",
            &cat,
        )
        .unwrap();
        // Overlap with an existing piece.
        assert!(ddl("ALTER TABLE m ADD PARTITION bad START (5) END (15)", &cat).is_err());
        // Empty range, duplicate name, unknown piece, last piece.
        assert!(ddl("ALTER TABLE m ADD PARTITION bad START (20) END (20)", &cat).is_err());
        ddl("ALTER TABLE m ADD PARTITION p2 START (10) END (20)", &cat).unwrap();
        assert!(ddl("ALTER TABLE m ADD PARTITION p2 START (30) END (40)", &cat).is_err());
        assert!(ddl("ALTER TABLE m DROP PARTITION nosuch", &cat).is_err());
        ddl("ALTER TABLE m DROP PARTITION p2", &cat).unwrap();
        assert!(ddl("ALTER TABLE m DROP PARTITION p0", &cat).is_err());
        // Unpartitioned table.
        ddl("CREATE TABLE plain (a int)", &cat).unwrap();
        assert!(ddl("ALTER TABLE plain ADD PARTITION p START (0) END (1)", &cat).is_err());
    }

    #[test]
    fn add_partition_with_default_present_is_rejected() {
        // A later ADD would route new rows around values already stored in
        // the default partition, silently changing results — reject it.
        let cat = Catalog::new();
        ddl(
            "CREATE TABLE cust (id int, state text) \
             PARTITION BY LIST (state) \
             (PARTITION west VALUES ('CA'), DEFAULT PARTITION other)",
            &cat,
        )
        .unwrap();
        let err = ddl("ALTER TABLE cust ADD PARTITION south VALUES ('TX')", &cat).unwrap_err();
        assert_eq!(err.kind(), "invalid_metadata");
        assert!(err.to_string().contains("default partition"), "{err}");
        // The duplicate-name check still fires first.
        let err = ddl("ALTER TABLE cust ADD PARTITION west VALUES ('TX')", &cat).unwrap_err();
        assert_eq!(err.kind(), "duplicate");
        // Dropping the default lifts the restriction.
        ddl("ALTER TABLE cust DROP PARTITION other", &cat).unwrap();
        ddl("ALTER TABLE cust ADD PARTITION south VALUES ('TX')", &cat).unwrap();
    }

    #[test]
    fn bad_ddl_is_rejected() {
        let cat = Catalog::new();
        assert!(ddl("CREATE TABLE t (a nosuchtype)", &cat).is_err());
        assert!(ddl(
            "CREATE TABLE t (a int) PARTITION BY RANGE (missing) \
             (START (0) END (10) EVERY (1))",
            &cat
        )
        .is_err());
        assert!(ddl(
            "CREATE TABLE t (a int) PARTITION BY RANGE (a) \
             (START (10) END (0) EVERY (1))",
            &cat
        )
        .is_err());
        assert!(ddl("DROP TABLE never_created", &cat).is_err());
    }
}
