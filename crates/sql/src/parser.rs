//! Recursive-descent SQL parser.

use crate::lexer::{tokenize, Token};
use mpp_common::{Error, Result};

/// Unbound expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    BoolLit(bool),
    NullLit,
    Param(u32),
    Binary {
        op: BinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<AstExpr>,
        query: Box<Query>,
        negated: bool,
    },
    /// Function call — aggregates (`count/sum/avg/min/max`); `star` is
    /// `count(*)`.
    FuncCall {
        name: String,
        args: Vec<AstExpr>,
        star: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Star,
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One FROM item: a table or a chain of explicit joins.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    Table(TableRef),
    Join {
        left: Box<FromItem>,
        right: TableRef,
        left_outer: bool,
        on: AstExpr,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    /// (sort expression, descending).
    pub order_by: Vec<(AstExpr, bool)>,
    pub limit: Option<u64>,
}

/// One column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub type_name: String,
    pub not_null: bool,
}

/// DISTRIBUTED clause of CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub enum DistClause {
    /// `DISTRIBUTED BY (col)`; defaults to the first column when absent.
    By(Vec<String>),
    /// `DISTRIBUTED REPLICATED`.
    Replicated,
}

/// The EVERY step of a range partition clause.
#[derive(Debug, Clone, PartialEq)]
pub enum EveryStep {
    /// Plain numeric width (also used for date keys stepped in days).
    Width(i64),
    /// `EVERY (n MONTHS)` for date keys.
    Months(u32),
}

/// One PARTITION BY (or SUBPARTITION BY) clause.
#[derive(Debug, Clone, PartialEq)]
pub enum PartClause {
    /// `PARTITION BY RANGE (col) (START (lit) END (lit) EVERY (step))`.
    Range {
        column: String,
        start: AstExpr,
        end: AstExpr,
        every: EveryStep,
    },
    /// `PARTITION BY LIST (col) (PARTITION nm VALUES (lit, …), …
    /// [, DEFAULT PARTITION nm])`.
    List {
        column: String,
        parts: Vec<(String, Vec<AstExpr>)>,
        default_partition: Option<String>,
    },
}

/// The action of an `ALTER TABLE … PARTITION` statement. Add/drop apply
/// to the outermost partitioning level; subpartition templates are
/// inherited by new pieces.
#[derive(Debug, Clone, PartialEq)]
pub enum AlterAction {
    /// `ADD PARTITION nm START (lit) END (lit)` — a new range piece.
    AddRange {
        name: String,
        start: AstExpr,
        end: AstExpr,
    },
    /// `ADD PARTITION nm VALUES (lit, …)` — a new list piece.
    AddList { name: String, values: Vec<AstExpr> },
    /// `DROP PARTITION nm`.
    Drop { name: String },
}

#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Query),
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        distribution: Option<DistClause>,
        /// Outermost first: `PARTITION BY …` then any `SUBPARTITION BY …`.
        partitioning: Vec<PartClause>,
    },
    DropTable {
        name: String,
    },
    AlterTable {
        table: String,
        action: AlterAction,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<AstExpr>>,
    },
    Update {
        table: TableRef,
        set: Vec<(String, AstExpr)>,
        from: Vec<FromItem>,
        where_clause: Option<AstExpr>,
    },
    Delete {
        table: TableRef,
        using: Vec<FromItem>,
        where_clause: Option<AstExpr>,
    },
    /// `ANALYZE <table>`: collect table statistics (row counts,
    /// per-partition counts, per-column NDV/nulls/min/max/histograms).
    Analyze {
        table: String,
    },
    Explain(Box<Statement>),
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semi);
    if p.pos != p.tokens.len() {
        return Err(Error::Parse(format!(
            "unexpected trailing tokens: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!("expected identifier, got {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.peek_kw("select") {
            return Ok(Statement::Select(self.query()?));
        }
        if self.eat_kw("create") {
            return self.create_table();
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw("alter") {
            return self.alter_table();
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("analyze") {
            let table = self.ident()?;
            return Ok(Statement::Analyze { table });
        }
        Err(Error::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat_if(&Token::Comma) {
            from.push(self.parse_from_item()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(Error::Parse(format!("expected LIMIT count, got {other:?}"))),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        // Alias: a bare identifier that isn't a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_clause_keyword(s) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let mut item = FromItem::Table(self.table_ref()?);
        loop {
            let left_outer = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                false
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                true
            } else if self.eat_kw("join") {
                false
            } else {
                break;
            };
            let right = self.table_ref()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            item = FromItem::Join {
                left: Box::new(item),
                right,
                left_outer,
                on,
            };
        }
        Ok(item)
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let type_name = self.ident()?;
            let mut not_null = false;
            if self.eat_kw("not") {
                self.expect_kw("null")?;
                not_null = true;
            }
            columns.push(ColumnDef {
                name: col,
                type_name,
                not_null,
            });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let mut distribution = None;
        if self.eat_kw("distributed") {
            if self.eat_kw("replicated") {
                distribution = Some(DistClause::Replicated);
            } else {
                self.expect_kw("by")?;
                self.expect(&Token::LParen)?;
                let mut cols = vec![self.ident()?];
                while self.eat_if(&Token::Comma) {
                    cols.push(self.ident()?);
                }
                self.expect(&Token::RParen)?;
                distribution = Some(DistClause::By(cols));
            }
        }
        let mut partitioning = Vec::new();
        if self.eat_kw("partition") {
            self.expect_kw("by")?;
            partitioning.push(self.part_clause()?);
            while self.eat_kw("subpartition") {
                self.expect_kw("by")?;
                partitioning.push(self.part_clause()?);
            }
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            distribution,
            partitioning,
        })
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let table = self.ident()?;
        let action = if self.eat_kw("add") {
            self.expect_kw("partition")?;
            let name = self.ident()?;
            if self.eat_kw("start") {
                self.expect(&Token::LParen)?;
                let start = self.expr()?;
                self.expect(&Token::RParen)?;
                self.expect_kw("end")?;
                self.expect(&Token::LParen)?;
                let end = self.expr()?;
                self.expect(&Token::RParen)?;
                AlterAction::AddRange { name, start, end }
            } else {
                self.expect_kw("values")?;
                self.expect(&Token::LParen)?;
                let mut values = vec![self.expr()?];
                while self.eat_if(&Token::Comma) {
                    values.push(self.expr()?);
                }
                self.expect(&Token::RParen)?;
                AlterAction::AddList { name, values }
            }
        } else if self.eat_kw("drop") {
            self.expect_kw("partition")?;
            AlterAction::Drop {
                name: self.ident()?,
            }
        } else {
            return Err(Error::Parse(format!(
                "expected ADD PARTITION or DROP PARTITION, found {:?}",
                self.peek()
            )));
        };
        Ok(Statement::AlterTable { table, action })
    }

    fn part_clause(&mut self) -> Result<PartClause> {
        if self.eat_kw("range") {
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::LParen)?;
            self.expect_kw("start")?;
            self.expect(&Token::LParen)?;
            let start = self.expr()?;
            self.expect(&Token::RParen)?;
            self.expect_kw("end")?;
            self.expect(&Token::LParen)?;
            let end = self.expr()?;
            self.expect(&Token::RParen)?;
            self.expect_kw("every")?;
            self.expect(&Token::LParen)?;
            let every = match self.next()? {
                Token::Int(n) if n > 0 => {
                    if self.eat_kw("months") || self.eat_kw("month") {
                        EveryStep::Months(n as u32)
                    } else {
                        let _ = self.eat_kw("days") || self.eat_kw("day");
                        EveryStep::Width(n)
                    }
                }
                other => {
                    return Err(Error::Parse(format!(
                        "expected a positive EVERY step, got {other:?}"
                    )))
                }
            };
            self.expect(&Token::RParen)?;
            self.expect(&Token::RParen)?;
            return Ok(PartClause::Range {
                column,
                start,
                end,
                every,
            });
        }
        if self.eat_kw("list") {
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::LParen)?;
            let mut parts = Vec::new();
            let mut default_partition = None;
            loop {
                if self.eat_kw("default") {
                    self.expect_kw("partition")?;
                    default_partition = Some(self.ident()?);
                } else {
                    self.expect_kw("partition")?;
                    let nm = self.ident()?;
                    self.expect_kw("values")?;
                    self.expect(&Token::LParen)?;
                    let mut vals = vec![self.expr()?];
                    while self.eat_if(&Token::Comma) {
                        vals.push(self.expr()?);
                    }
                    self.expect(&Token::RParen)?;
                    parts.push((nm, vals));
                }
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(PartClause::List {
                column,
                parts,
                default_partition,
            });
        }
        Err(Error::Parse("expected RANGE or LIST".into()))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.peek() == Some(&Token::LParen) {
            self.expect(&Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat_if(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_if(&Token::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.table_ref()?;
        self.expect_kw("set")?;
        let mut set = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let val = self.expr()?;
            set.push((col, val));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(self.parse_from_item()?);
            while self.eat_if(&Token::Comma) {
                from.push(self.parse_from_item()?);
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            set,
            from,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.table_ref()?;
        let mut using = Vec::new();
        if self.eat_kw("using") {
            using.push(self.parse_from_item()?);
            while self.eat_if(&Token::Comma) {
                using.push(self.parse_from_item()?);
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            using,
            where_clause,
        })
    }

    // Expression precedence: OR < AND < NOT < comparison < additive <
    // multiplicative < unary < primary.
    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            e = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let e = self.additive()?;
        // Postfix predicates.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(e),
                negated,
            });
        }
        let negated = if self.peek_kw("not") {
            // NOT BETWEEN / NOT IN.
            let save = self.pos;
            self.pos += 1;
            if self.peek_kw("between") || self.peek_kw("in") {
                true
            } else {
                self.pos = save;
                false
            }
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(e),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            if self.peek_kw("select") {
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                return Ok(AstExpr::InSubquery {
                    expr: Box::new(e),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_if(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(e),
                list,
                negated,
            });
        }
        if negated {
            return Err(Error::Parse("expected BETWEEN or IN after NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Neq) => BinOp::Neq,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(e),
        };
        self.pos += 1;
        let r = self.additive()?;
        Ok(AstExpr::Binary {
            op,
            left: Box::new(e),
            right: Box::new(r),
        })
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let r = self.multiplicative()?;
            e = AstExpr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let r = self.unary()?;
            e = AstExpr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat_if(&Token::Minus) {
            let e = self.unary()?;
            return Ok(match e {
                AstExpr::IntLit(v) => AstExpr::IntLit(-v),
                AstExpr::FloatLit(v) => AstExpr::FloatLit(-v),
                other => AstExpr::Binary {
                    op: BinOp::Sub,
                    left: Box::new(AstExpr::IntLit(0)),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.next()? {
            Token::Int(v) => Ok(AstExpr::IntLit(v)),
            Token::Float(v) => Ok(AstExpr::FloatLit(v)),
            Token::Str(s) => Ok(AstExpr::StrLit(s)),
            Token::Param(n) => Ok(AstExpr::Param(n)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("null") {
                    return Ok(AstExpr::NullLit);
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(AstExpr::BoolLit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(AstExpr::BoolLit(false));
                }
                if name.eq_ignore_ascii_case("date") {
                    // DATE 'yyyy-mm-dd' literal.
                    if let Some(Token::Str(_)) = self.peek() {
                        if let Token::Str(s) = self.next()? {
                            return Ok(AstExpr::StrLit(s));
                        }
                    }
                }
                if self.peek() == Some(&Token::LParen) {
                    // Function call.
                    self.pos += 1;
                    if self.eat_if(&Token::Star) {
                        self.expect(&Token::RParen)?;
                        return Ok(AstExpr::FuncCall {
                            name,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.expr()?);
                        while self.eat_if(&Token::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(AstExpr::FuncCall {
                        name,
                        args,
                        star: false,
                    });
                }
                if self.eat_if(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "where",
        "group",
        "order",
        "limit",
        "join",
        "inner",
        "left",
        "right",
        "outer",
        "on",
        "set",
        "from",
        "using",
        "values",
        "as",
        "and",
        "or",
        "not",
        "union",
        "asc",
        "desc",
        "group",
        "by",
        "distributed",
        "partition",
        "subpartition",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2() {
        let s = parse(
            "SELECT avg(amount) FROM orders \
             WHERE date BETWEEN '2013-10-01' AND '2013-12-31'",
        )
        .unwrap();
        match s {
            Statement::Select(q) => {
                assert_eq!(q.items.len(), 1);
                assert!(matches!(
                    q.items[0],
                    SelectItem::Expr {
                        expr: AstExpr::FuncCall { .. },
                        ..
                    }
                ));
                assert!(matches!(q.where_clause, Some(AstExpr::Between { .. })));
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parses_figure4_in_subquery() {
        let s = parse(
            "SELECT avg(amount) FROM orders WHERE date_id IN \
             (SELECT date_id FROM date_dim WHERE year = 2013 AND month BETWEEN 10 AND 12)",
        )
        .unwrap();
        match s {
            Statement::Select(q) => {
                assert!(matches!(q.where_clause, Some(AstExpr::InSubquery { .. })));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_figure6_three_way_join() {
        let s = parse(
            "SELECT * FROM sales_fact s, date_dim d, customer_dim c \
             WHERE d.month BETWEEN 10 AND 12 AND c.state='CA' \
             AND d.id=s.date_id AND c.id=s.cust_id",
        )
        .unwrap();
        match s {
            Statement::Select(q) => {
                assert_eq!(q.from.len(), 3);
                assert!(matches!(q.items[0], SelectItem::Star));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_explicit_joins_with_aliases() {
        let s = parse(
            "SELECT d.month, count(*) FROM orders o \
             JOIN date_dim d ON o.date_id = d.id \
             LEFT OUTER JOIN customer_dim c ON o.cust_id = c.id \
             GROUP BY d.month LIMIT 10",
        )
        .unwrap();
        match s {
            Statement::Select(q) => {
                assert_eq!(q.from.len(), 1);
                match &q.from[0] {
                    FromItem::Join {
                        left, left_outer, ..
                    } => {
                        assert!(*left_outer);
                        assert!(matches!(left.as_ref(), FromItem::Join { .. }));
                    }
                    _ => panic!("expected join chain"),
                }
                assert_eq!(q.group_by.len(), 1);
                assert_eq!(q.limit, Some(10));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_dml() {
        let s = parse("UPDATE r SET b = s.b FROM s WHERE r.a = s.a").unwrap();
        match s {
            Statement::Update {
                table, set, from, ..
            } => {
                assert_eq!(table.name, "r");
                assert_eq!(set.len(), 1);
                assert_eq!(from.len(), 1);
            }
            _ => panic!(),
        }
        let s = parse("DELETE FROM r WHERE b < 10").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
        let s = parse("INSERT INTO r (a, b) VALUES (1, 2), (3, 4)").unwrap();
        match s {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap().len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_not_in_and_is_null() {
        let s = parse("SELECT * FROM t WHERE a NOT IN (1, 2) AND b IS NOT NULL").unwrap();
        match s {
            Statement::Select(q) => {
                let w = q.where_clause.unwrap();
                match w {
                    AstExpr::Binary {
                        op: BinOp::And,
                        left,
                        right,
                    } => {
                        assert!(matches!(*left, AstExpr::InList { negated: true, .. }));
                        assert!(matches!(*right, AstExpr::IsNull { negated: true, .. }));
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_explain_and_params() {
        let s = parse("EXPLAIN SELECT * FROM t WHERE a = $1").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn operator_precedence() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s {
            Statement::Select(q) => match q.where_clause.unwrap() {
                AstExpr::Binary { op: BinOp::Or, .. } => {}
                other => panic!("OR should be at the top: {other:?}"),
            },
            _ => panic!(),
        }
        // Arithmetic precedence: a + b * 2.
        let s = parse("SELECT a + b * 2 FROM t").unwrap();
        match s {
            Statement::Select(q) => match &q.items[0] {
                SelectItem::Expr {
                    expr: AstExpr::Binary { op: BinOp::Add, .. },
                    ..
                } => {}
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_alter_table_partitions() {
        let s = parse(
            "ALTER TABLE orders ADD PARTITION feb2014 START ('2014-02-01') END ('2014-03-01')",
        )
        .unwrap();
        match s {
            Statement::AlterTable { table, action } => {
                assert_eq!(table, "orders");
                assert!(matches!(action, AlterAction::AddRange { .. }));
            }
            _ => panic!(),
        }
        let s = parse("ALTER TABLE cust ADD PARTITION south VALUES ('TX', 'NM')").unwrap();
        match s {
            Statement::AlterTable {
                action: AlterAction::AddList { name, values },
                ..
            } => {
                assert_eq!(name, "south");
                assert_eq!(values.len(), 2);
            }
            _ => panic!(),
        }
        let s = parse("ALTER TABLE m DROP PARTITION p3").unwrap();
        assert!(matches!(
            s,
            Statement::AlterTable {
                action: AlterAction::Drop { .. },
                ..
            }
        ));
        assert!(parse("ALTER TABLE m RENAME TO n").is_err());
        assert!(parse("ALTER TABLE m ADD PARTITION p").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("FOO BAR").is_err());
        assert!(parse("SELECT * FROM t WHERE a NOT LIKE 'x'").is_err());
        assert!(parse("SELECT * FROM t extra garbage !").is_err());
    }

    #[test]
    fn negative_numbers_and_date_literal() {
        let s = parse("SELECT * FROM t WHERE a > -5 AND d = DATE '2013-01-01'").unwrap();
        match s {
            Statement::Select(q) => {
                let w = format!("{:?}", q.where_clause.unwrap());
                assert!(w.contains("IntLit(-5)"));
                assert!(w.contains("2013-01-01"));
            }
            _ => panic!(),
        }
    }
}
