//! # mpp-sql
//!
//! A SQL front-end for the dialect the paper's queries use: a hand-written
//! lexer ([`lexer`]), a recursive-descent parser ([`parser`]) and a binder
//! ([`binder`]) that resolves names against the catalog and produces a
//! [`mpp_plan::LogicalPlan`].
//!
//! Supported statements:
//!
//! * `SELECT` with expressions and aggregates, comma-joins and
//!   `[INNER|LEFT] JOIN … ON`, `WHERE` (including `BETWEEN`, `IN (list)`,
//!   `IN (SELECT …)` → semi-join, `NOT IN` → anti-join, `IS [NOT] NULL`),
//!   `GROUP BY`, `LIMIT`, and `$n` parameters (prepared statements);
//! * `INSERT INTO … VALUES`;
//! * `UPDATE … SET … [FROM …] [WHERE …]`;
//! * `DELETE FROM … [USING …] [WHERE …]`;
//! * `CREATE TABLE … [DISTRIBUTED …] [PARTITION BY RANGE|LIST …
//!   [SUBPARTITION BY …]]` and `DROP TABLE` (see [`ddl`]).
//!
//! String literals compared against `date` columns are coerced to dates,
//! so `o_date BETWEEN '2013-10-01' AND '2013-12-31'` works as in the
//! paper's Figure 2.

pub mod binder;
pub mod ddl;
pub mod lexer;
pub mod parser;

pub use binder::{bind, BoundStatement};
pub use ddl::execute_ddl;
pub use parser::{parse, Statement};

use mpp_catalog::Catalog;
use mpp_common::Result;
use mpp_expr::ColRefGenerator;

/// One-shot convenience: parse and bind a statement.
pub fn plan_sql(sql: &str, catalog: &Catalog, gen: &ColRefGenerator) -> Result<BoundStatement> {
    let stmt = parse(sql)?;
    bind(&stmt, catalog, gen)
}
