//! The SQL lexer.

use mpp_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// `$n` parameter.
    Param(u32),
    // Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Is this identifier token equal to the given keyword
    /// (case-insensitively)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected '!'".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(Error::Parse("expected digits after '$'".into()));
                }
                let n: u32 = sql[start..j]
                    .parse()
                    .map_err(|_| Error::Parse("bad parameter number".into()))?;
                if n == 0 {
                    return Err(Error::Parse("parameters are numbered from $1".into()));
                }
                out.push(Token::Param(n));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        // Don't eat a trailing dot that isn't a decimal
                        // point (e.g. `1.foo` is invalid anyway).
                        if j + 1 < bytes.len() && (bytes[j + 1] as char).is_ascii_digit() {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    j += 1;
                }
                let text = &sql[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("bad int literal '{text}'"))
                    })?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Token::Ident(sql[start..j].to_string()));
                i = j;
            }
            other => return Err(Error::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_figure2_query() {
        let toks = tokenize(
            "SELECT avg(amount) FROM orders \
             WHERE date BETWEEN '2013-10-01' AND '2013-12-31'",
        )
        .unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Str("2013-10-01".into())));
        assert!(toks.contains(&Token::LParen));
    }

    #[test]
    fn operators_and_numbers() {
        let toks = tokenize("a<=1 b<>2 c!=3.5 d>=$4").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Int(1),
                Token::Ident("b".into()),
                Token::Neq,
                Token::Int(2),
                Token::Ident("c".into()),
                Token::Neq,
                Token::Float(3.5),
                Token::Ident("d".into()),
                Token::Ge,
                Token::Param(4),
            ]
        );
    }

    #[test]
    fn string_escaping_and_comments() {
        let toks = tokenize("-- comment\n'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("$0").is_err());
        assert!(tokenize("$x").is_err());
        assert!(tokenize("#").is_err());
    }
}
