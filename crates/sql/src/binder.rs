//! Name resolution and logical plan construction.

use crate::parser::{AstExpr, BinOp, FromItem, Query, SelectItem, Statement, TableRef};
use mpp_catalog::Catalog;
use mpp_common::value::{parse_date, ArithOp};
use mpp_common::{DataType, Datum, Error, Result};
use mpp_expr::{ColRef, ColRefGenerator, Expr};
use mpp_plan::{AggCall, AggFunc, JoinType, LogicalPlan};
use std::collections::HashMap;

/// A bound statement ready for the optimizer.
#[derive(Debug, Clone)]
pub struct BoundStatement {
    pub plan: LogicalPlan,
    /// Highest `$n` parameter referenced (0 when none).
    pub param_count: u32,
    /// True when the statement was wrapped in EXPLAIN.
    pub explain: bool,
}

/// Bind a parsed statement against the catalog.
pub fn bind(stmt: &Statement, catalog: &Catalog, gen: &ColRefGenerator) -> Result<BoundStatement> {
    let mut b = Binder {
        catalog,
        gen,
        types: HashMap::new(),
        max_param: 0,
    };
    let (plan, explain) = match stmt {
        Statement::Explain(inner) => {
            let bound = bind(inner, catalog, gen)?;
            return Ok(BoundStatement {
                explain: true,
                ..bound
            });
        }
        Statement::Select(q) => (b.bind_query(q)?.0, false),
        Statement::Insert {
            table,
            columns,
            rows,
        } => (b.bind_insert(table, columns.as_deref(), rows)?, false),
        Statement::Update {
            table,
            set,
            from,
            where_clause,
        } => (
            b.bind_update(table, set, from, where_clause.as_ref())?,
            false,
        ),
        Statement::Delete {
            table,
            using,
            where_clause,
        } => (b.bind_delete(table, using, where_clause.as_ref())?, false),
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::AlterTable { .. }
        | Statement::Analyze { .. } => {
            return Err(Error::Unsupported(
                "DDL is executed by the session layer (see mpp_sql::ddl), not bound to a plan"
                    .into(),
            ))
        }
    };
    Ok(BoundStatement {
        plan,
        param_count: b.max_param,
        explain,
    })
}

/// One visible relation in the current scope.
#[derive(Debug, Clone)]
struct ScopeEntry {
    binding_name: String,
    columns: Vec<(String, ColRef, DataType)>,
}

#[derive(Debug, Clone, Default)]
struct Scope {
    entries: Vec<ScopeEntry>,
}

impl Scope {
    fn all_columns(&self) -> Vec<(String, ColRef, DataType)> {
        self.entries
            .iter()
            .flat_map(|e| e.columns.iter().cloned())
            .collect()
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(ColRef, DataType)> {
        let mut found: Option<(ColRef, DataType)> = None;
        for e in &self.entries {
            if let Some(q) = qualifier {
                if !e.binding_name.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            for (cname, cref, ty) in &e.columns {
                if cname.eq_ignore_ascii_case(name) {
                    if found.is_some() {
                        return Err(Error::Bind(format!("ambiguous column '{name}'")));
                    }
                    found = Some((cref.clone(), *ty));
                }
            }
        }
        found.ok_or_else(|| {
            Error::Bind(match qualifier {
                Some(q) => format!("column '{q}.{name}' not found"),
                None => format!("column '{name}' not found"),
            })
        })
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
    gen: &'a ColRefGenerator,
    /// colref id → type (for literal coercion).
    types: HashMap<u32, DataType>,
    max_param: u32,
}

impl<'a> Binder<'a> {
    /// Create a Get node and scope entry for a base table.
    fn bind_table(&mut self, t: &TableRef) -> Result<(LogicalPlan, ScopeEntry)> {
        let desc = self.catalog.table_by_name(&t.name)?;
        let mut output = Vec::with_capacity(desc.schema.len());
        let mut columns = Vec::with_capacity(desc.schema.len());
        for col in desc.schema.columns() {
            let cref = self.gen.fresh(col.name.as_str());
            self.types.insert(cref.id, col.data_type);
            columns.push((col.name.clone(), cref.clone(), col.data_type));
            output.push(cref);
        }
        Ok((
            LogicalPlan::Get {
                table: desc.oid,
                table_name: desc.name.clone(),
                output,
            },
            ScopeEntry {
                binding_name: t.binding_name().to_string(),
                columns,
            },
        ))
    }

    fn bind_from_item(&mut self, item: &FromItem, scope: &mut Scope) -> Result<LogicalPlan> {
        match item {
            FromItem::Table(t) => {
                let (plan, entry) = self.bind_table(t)?;
                scope.entries.push(entry);
                Ok(plan)
            }
            FromItem::Join {
                left,
                right,
                left_outer,
                on,
            } => {
                let l = self.bind_from_item(left, scope)?;
                let (r, entry) = self.bind_table(right)?;
                scope.entries.push(entry);
                let pred = self.bind_expr(on, scope)?;
                Ok(LogicalPlan::Join {
                    join_type: if *left_outer {
                        JoinType::LeftOuter
                    } else {
                        JoinType::Inner
                    },
                    pred,
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
        }
    }

    /// Bind a query; returns the plan and its output (name, colref) pairs.
    fn bind_query(&mut self, q: &Query) -> Result<(LogicalPlan, Vec<(String, ColRef)>)> {
        let mut scope = Scope::default();
        let mut plan: Option<LogicalPlan> = None;
        for item in &q.from {
            let p = self.bind_from_item(item, &mut scope)?;
            plan = Some(match plan {
                None => p,
                Some(acc) => LogicalPlan::Join {
                    join_type: JoinType::Inner,
                    pred: Expr::lit(true),
                    left: Box::new(acc),
                    right: Box::new(p),
                },
            });
        }
        let mut plan = plan.ok_or_else(|| Error::Bind("FROM clause is empty".into()))?;

        // WHERE: top-level conjuncts; IN-subqueries become semi/anti joins.
        if let Some(w) = &q.where_clause {
            let mut plain = Vec::new();
            for conj in split_ast_conjuncts(w) {
                match conj {
                    AstExpr::InSubquery {
                        expr,
                        query,
                        negated,
                    } => {
                        let probe = self.bind_expr(&expr, &scope)?;
                        let (sub, sub_out) = self.bind_query(&query)?;
                        if sub_out.len() != 1 {
                            return Err(Error::Bind(
                                "IN subquery must return exactly one column".into(),
                            ));
                        }
                        plan = LogicalPlan::Join {
                            join_type: if negated {
                                JoinType::LeftAnti
                            } else {
                                JoinType::LeftSemi
                            },
                            pred: self.coerce_cmp(Expr::eq(probe, Expr::col(sub_out[0].1.clone()))),
                            left: Box::new(plan),
                            right: Box::new(sub),
                        };
                    }
                    other => plain.push(self.bind_expr(&other, &scope)?),
                }
            }
            if !plain.is_empty() {
                plan = LogicalPlan::Select {
                    pred: Expr::and(plain),
                    child: Box::new(plan),
                };
            }
        }

        // Aggregation.
        let has_aggs = q
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if contains_agg(expr)));
        let mut output: Vec<(String, ColRef)> = Vec::new();
        if has_aggs || !q.group_by.is_empty() {
            // Group columns must be plain column references.
            let mut group_cols = Vec::new();
            for g in &q.group_by {
                match self.bind_expr(g, &scope)? {
                    Expr::Col(c) => group_cols.push(c),
                    other => {
                        return Err(Error::Unsupported(format!(
                            "GROUP BY expression {other} (columns only)"
                        )))
                    }
                }
            }
            // Collect aggregate calls from the select list.
            let mut aggs: Vec<AggCall> = Vec::new();
            let mut item_kinds: Vec<ItemKind> = Vec::new();
            for item in &q.items {
                match item {
                    SelectItem::Star => {
                        return Err(Error::Bind(
                            "SELECT * cannot be combined with aggregation".into(),
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        if let AstExpr::FuncCall { name, args, star } = expr {
                            let call = self.bind_agg(name, args, *star, &scope)?;
                            aggs.push(call);
                            item_kinds.push(ItemKind::Agg {
                                idx: aggs.len() - 1,
                                alias: alias.clone().unwrap_or_else(|| name.to_lowercase()),
                            });
                        } else {
                            let bound = self.bind_expr(expr, &scope)?;
                            match &bound {
                                Expr::Col(c) if group_cols.contains(c) => {
                                    item_kinds.push(ItemKind::Group {
                                        col: c.clone(),
                                        alias: alias.clone().unwrap_or_else(|| c.name.to_string()),
                                    });
                                }
                                _ => {
                                    return Err(Error::Bind(format!(
                                        "select expression {bound} must be an aggregate or a \
                                         GROUP BY column"
                                    )))
                                }
                            }
                        }
                    }
                }
            }
            let mut agg_output = group_cols.clone();
            let agg_refs: Vec<ColRef> =
                aggs.iter().map(|a| self.gen.fresh(a.func.name())).collect();
            agg_output.extend(agg_refs.clone());
            plan = LogicalPlan::Agg {
                group_by: group_cols,
                aggs,
                output: agg_output,
                child: Box::new(plan),
            };
            // Final projection in select-list order.
            let mut exprs = Vec::new();
            for kind in item_kinds {
                match kind {
                    ItemKind::Group { col, alias } => {
                        let out = self.gen.fresh(alias.as_str());
                        output.push((alias, out.clone()));
                        exprs.push((Expr::col(col), out));
                    }
                    ItemKind::Agg { idx, alias } => {
                        let out = self.gen.fresh(alias.as_str());
                        output.push((alias, out.clone()));
                        exprs.push((Expr::col(agg_refs[idx].clone()), out));
                    }
                }
            }
            plan = LogicalPlan::Project {
                exprs: exprs.iter().map(|(e, _)| e.clone()).collect(),
                output: exprs.into_iter().map(|(_, o)| o).collect(),
                child: Box::new(plan),
            };
        } else {
            // Plain projection.
            let mut exprs: Vec<(String, Expr)> = Vec::new();
            for item in &q.items {
                match item {
                    SelectItem::Star => {
                        for (name, cref, _) in scope.all_columns() {
                            exprs.push((name, Expr::col(cref)));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let bound = self.bind_expr(expr, &scope)?;
                        let name = alias.clone().unwrap_or_else(|| display_name(expr));
                        exprs.push((name, bound));
                    }
                }
            }
            let out_refs: Vec<ColRef> = exprs
                .iter()
                .map(|(name, _)| self.gen.fresh(name.as_str()))
                .collect();
            output = exprs
                .iter()
                .zip(&out_refs)
                .map(|((n, _), r)| (n.clone(), r.clone()))
                .collect();
            plan = LogicalPlan::Project {
                exprs: exprs.into_iter().map(|(_, e)| e).collect(),
                output: out_refs,
                child: Box::new(plan),
            };
        }

        // ORDER BY: keys resolve against the select-list output (by name
        // or alias); bare column keys not in the output are rejected.
        if !q.order_by.is_empty() {
            let mut keys = Vec::new();
            for (e, desc) in &q.order_by {
                let AstExpr::Column {
                    qualifier: None,
                    name,
                } = e
                else {
                    return Err(Error::Unsupported(
                        "ORDER BY supports select-list column names only".into(),
                    ));
                };
                let found = output
                    .iter()
                    .find(|(n, _)| n.eq_ignore_ascii_case(name))
                    .map(|(_, c)| c.clone())
                    .ok_or_else(|| {
                        Error::Bind(format!(
                            "ORDER BY column '{name}' is not in the select list"
                        ))
                    })?;
                keys.push((found, *desc));
            }
            plan = LogicalPlan::Sort {
                keys,
                child: Box::new(plan),
            };
        }
        if let Some(n) = q.limit {
            plan = LogicalPlan::Limit {
                n,
                child: Box::new(plan),
            };
        }
        Ok((plan, output))
    }

    fn bind_agg(
        &mut self,
        name: &str,
        args: &[AstExpr],
        star: bool,
        scope: &Scope,
    ) -> Result<AggCall> {
        let func = match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            other => return Err(Error::Bind(format!("unknown function '{other}'"))),
        };
        if star {
            if func != AggFunc::Count {
                return Err(Error::Bind(format!("{name}(*) is not valid")));
            }
            return Ok(AggCall::count_star());
        }
        if args.len() != 1 {
            return Err(Error::Bind(format!("{name} takes exactly one argument")));
        }
        if contains_agg(&args[0]) {
            return Err(Error::Bind("nested aggregates".into()));
        }
        Ok(AggCall::new(func, self.bind_expr(&args[0], scope)?))
    }

    fn bind_expr(&mut self, e: &AstExpr, scope: &Scope) -> Result<Expr> {
        Ok(match e {
            AstExpr::Column { qualifier, name } => {
                let (cref, _) = scope.resolve(qualifier.as_deref(), name)?;
                Expr::col(cref)
            }
            AstExpr::IntLit(v) => {
                if let Ok(v32) = i32::try_from(*v) {
                    Expr::lit(v32)
                } else {
                    Expr::lit(*v)
                }
            }
            AstExpr::FloatLit(v) => Expr::lit(*v),
            AstExpr::StrLit(s) => Expr::lit(s.as_str()),
            AstExpr::BoolLit(b) => Expr::lit(*b),
            AstExpr::NullLit => Expr::Lit(Datum::Null),
            AstExpr::Param(n) => {
                self.max_param = self.max_param.max(*n);
                Expr::Param(*n)
            }
            AstExpr::Binary { op, left, right } => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                match op {
                    BinOp::And => Expr::and(vec![l, r]),
                    BinOp::Or => Expr::or(vec![l, r]),
                    BinOp::Eq => self.coerce_cmp(Expr::cmp(mpp_expr::CmpOp::Eq, l, r)),
                    BinOp::Neq => self.coerce_cmp(Expr::cmp(mpp_expr::CmpOp::Ne, l, r)),
                    BinOp::Lt => self.coerce_cmp(Expr::cmp(mpp_expr::CmpOp::Lt, l, r)),
                    BinOp::Le => self.coerce_cmp(Expr::cmp(mpp_expr::CmpOp::Le, l, r)),
                    BinOp::Gt => self.coerce_cmp(Expr::cmp(mpp_expr::CmpOp::Gt, l, r)),
                    BinOp::Ge => self.coerce_cmp(Expr::cmp(mpp_expr::CmpOp::Ge, l, r)),
                    BinOp::Add => arith(ArithOp::Add, l, r),
                    BinOp::Sub => arith(ArithOp::Sub, l, r),
                    BinOp::Mul => arith(ArithOp::Mul, l, r),
                    BinOp::Div => arith(ArithOp::Div, l, r),
                    BinOp::Mod => arith(ArithOp::Mod, l, r),
                }
            }
            AstExpr::Not(inner) => Expr::not(self.bind_expr(inner, scope)?),
            AstExpr::IsNull { expr, negated } => {
                let inner = Expr::IsNull(Box::new(self.bind_expr(expr, scope)?));
                if *negated {
                    Expr::not(inner)
                } else {
                    inner
                }
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let b = Expr::between(
                    self.bind_expr(expr, scope)?,
                    self.bind_expr(low, scope)?,
                    self.bind_expr(high, scope)?,
                );
                let b = self.coerce_between(b);
                if *negated {
                    Expr::not(b)
                } else {
                    b
                }
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let probe = self.bind_expr(expr, scope)?;
                let items = list
                    .iter()
                    .map(|i| self.bind_expr(i, scope))
                    .collect::<Result<Vec<_>>>()?;
                self.coerce_in_list(Expr::InList {
                    expr: Box::new(probe),
                    list: items,
                    negated: *negated,
                })?
            }
            AstExpr::InSubquery { .. } => {
                return Err(Error::Unsupported(
                    "IN (SELECT …) is only supported as a top-level WHERE conjunct".into(),
                ))
            }
            AstExpr::FuncCall { name, .. } => {
                return Err(Error::Bind(format!(
                    "aggregate '{name}' is not allowed here"
                )))
            }
        })
    }

    fn type_of(&self, e: &Expr) -> Option<DataType> {
        match e {
            Expr::Col(c) => self.types.get(&c.id).copied(),
            Expr::Lit(d) => d.data_type(),
            _ => None,
        }
    }

    /// Coerce string literals compared against date columns.
    fn coerce_side(&self, target: Option<DataType>, e: Expr) -> Expr {
        if target == Some(DataType::Date) {
            if let Expr::Lit(Datum::Str(s)) = &e {
                if let Ok(d) = parse_date(s) {
                    return Expr::Lit(d);
                }
            }
        }
        e
    }

    fn coerce_cmp(&self, e: Expr) -> Expr {
        if let Expr::Cmp { op, left, right } = e {
            let lt = self.type_of(&left);
            let rt = self.type_of(&right);
            let l = self.coerce_side(rt, *left);
            let r = self.coerce_side(lt, *right);
            Expr::cmp(op, l, r)
        } else {
            e
        }
    }

    fn coerce_between(&self, e: Expr) -> Expr {
        if let Expr::Between { expr, low, high } = e {
            let t = self.type_of(&expr);
            let low = self.coerce_side(t, *low);
            let high = self.coerce_side(t, *high);
            Expr::between(*expr, low, high)
        } else {
            e
        }
    }

    fn coerce_in_list(&self, e: Expr) -> Result<Expr> {
        if let Expr::InList {
            expr,
            list,
            negated,
        } = e
        {
            let t = self.type_of(&expr);
            let list = list.into_iter().map(|i| self.coerce_side(t, i)).collect();
            Ok(Expr::InList {
                expr,
                list,
                negated,
            })
        } else {
            Ok(e)
        }
    }

    fn bind_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<AstExpr>],
    ) -> Result<LogicalPlan> {
        let desc = self.catalog.table_by_name(table)?;
        let schema = &desc.schema;
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<_>>()?,
        };
        let scope = Scope::default();
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return Err(Error::Bind(format!(
                    "INSERT row has {} values, expected {}",
                    row.len(),
                    positions.len()
                )));
            }
            let mut values = vec![Datum::Null; schema.len()];
            for (ast, &pos) in row.iter().zip(&positions) {
                let bound = self.bind_expr(ast, &scope)?;
                let col_type = schema.column(pos)?.data_type;
                let coerced = self.coerce_side(Some(col_type), bound);
                let v = mpp_expr::analysis::eval_const(&coerced, None)
                    .ok_or_else(|| Error::Unsupported("INSERT values must be constants".into()))?;
                values[pos] = coerce_datum(v, col_type)?;
            }
            out_rows.push(values);
        }
        let output: Vec<ColRef> = schema
            .columns()
            .iter()
            .map(|c| self.gen.fresh(c.name.as_str()))
            .collect();
        Ok(LogicalPlan::Insert {
            table: desc.oid,
            child: Box::new(LogicalPlan::Values {
                rows: out_rows,
                output,
            }),
        })
    }

    fn bind_update(
        &mut self,
        table: &TableRef,
        set: &[(String, AstExpr)],
        from: &[FromItem],
        where_clause: Option<&AstExpr>,
    ) -> Result<LogicalPlan> {
        let desc = self.catalog.table_by_name(&table.name)?;
        let mut scope = Scope::default();
        let (target_plan, entry) = self.bind_table(table)?;
        let target_cols: Vec<ColRef> = entry.columns.iter().map(|(_, c, _)| c.clone()).collect();
        scope.entries.push(entry);
        let mut plan = target_plan;
        for item in from {
            let p = self.bind_from_item(item, &mut scope)?;
            plan = LogicalPlan::Join {
                join_type: JoinType::Inner,
                pred: Expr::lit(true),
                left: Box::new(plan),
                right: Box::new(p),
            };
        }
        if let Some(w) = where_clause {
            let pred = self.bind_expr(w, &scope)?;
            plan = LogicalPlan::Select {
                pred,
                child: Box::new(plan),
            };
        }
        let mut assignments = Vec::new();
        for (col, ast) in set {
            let idx = desc.schema.index_of(col)?;
            let col_type = desc.schema.column(idx)?.data_type;
            let bound = self.bind_expr(ast, &scope)?;
            assignments.push((idx, self.coerce_side(Some(col_type), bound)));
        }
        Ok(LogicalPlan::Update {
            table: desc.oid,
            target_cols,
            assignments,
            child: Box::new(plan),
        })
    }

    fn bind_delete(
        &mut self,
        table: &TableRef,
        using: &[FromItem],
        where_clause: Option<&AstExpr>,
    ) -> Result<LogicalPlan> {
        let desc = self.catalog.table_by_name(&table.name)?;
        let mut scope = Scope::default();
        let (target_plan, entry) = self.bind_table(table)?;
        let target_cols: Vec<ColRef> = entry.columns.iter().map(|(_, c, _)| c.clone()).collect();
        scope.entries.push(entry);
        let mut plan = target_plan;
        for item in using {
            let p = self.bind_from_item(item, &mut scope)?;
            plan = LogicalPlan::Join {
                join_type: JoinType::Inner,
                pred: Expr::lit(true),
                left: Box::new(plan),
                right: Box::new(p),
            };
        }
        if let Some(w) = where_clause {
            let pred = self.bind_expr(w, &scope)?;
            plan = LogicalPlan::Select {
                pred,
                child: Box::new(plan),
            };
        }
        Ok(LogicalPlan::Delete {
            table: desc.oid,
            target_cols,
            child: Box::new(plan),
        })
    }
}

enum ItemKind {
    Group { col: ColRef, alias: String },
    Agg { idx: usize, alias: String },
}

/// Flatten the AND structure of a WHERE clause into top-level conjuncts.
fn split_ast_conjuncts(e: &AstExpr) -> Vec<AstExpr> {
    match e {
        AstExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_ast_conjuncts(left);
            out.extend(split_ast_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

fn arith(op: ArithOp, l: Expr, r: Expr) -> Expr {
    Expr::Arith {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

fn contains_agg(e: &AstExpr) -> bool {
    match e {
        AstExpr::FuncCall { .. } => true,
        AstExpr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        AstExpr::Not(x) => contains_agg(x),
        AstExpr::IsNull { expr, .. } => contains_agg(expr),
        AstExpr::Between {
            expr, low, high, ..
        } => contains_agg(expr) || contains_agg(low) || contains_agg(high),
        AstExpr::InList { expr, list, .. } => contains_agg(expr) || list.iter().any(contains_agg),
        _ => false,
    }
}

fn display_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::FuncCall { name, .. } => name.to_lowercase(),
        _ => "?column?".to_string(),
    }
}

/// Coerce a constant datum to a column's type.
fn coerce_datum(v: Datum, ty: DataType) -> Result<Datum> {
    if v.is_null() {
        return Ok(v);
    }
    Ok(match (ty, &v) {
        (DataType::Int32, Datum::Int64(x)) => Datum::Int32(
            i32::try_from(*x).map_err(|_| Error::Bind(format!("{x} out of range for int4")))?,
        ),
        (DataType::Int64, Datum::Int32(x)) => Datum::Int64(*x as i64),
        (DataType::Float64, Datum::Int32(x)) => Datum::Float64(*x as f64),
        (DataType::Float64, Datum::Int64(x)) => Datum::Float64(*x as f64),
        (DataType::Date, Datum::Str(s)) => parse_date(s)?,
        _ => {
            let vt = v.data_type();
            if vt != Some(ty) {
                return Err(Error::TypeMismatch(format!(
                    "cannot store {v:?} in a {ty} column"
                )));
            }
            v
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::monthly_range_parts;
    use mpp_catalog::{Distribution, TableDesc};
    use mpp_common::{Column, Schema};

    /// orders(o_id, amount, date, date_id, cust_id) partitioned monthly;
    /// date_dim(id, year, month); customer_dim(id, state).
    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int64),
            Column::new("amount", DataType::Float64),
            Column::new("date", DataType::Date),
            Column::new("date_id", DataType::Int32),
            Column::new("cust_id", DataType::Int32),
        ]);
        let oid = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(24);
        cat.register(TableDesc {
            oid,
            name: "orders".into(),
            schema: orders,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(monthly_range_parts(2, 2012, 1, 24, first).unwrap()),
        })
        .unwrap();
        let dd = Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("year", DataType::Int32),
            Column::new("month", DataType::Int32),
        ]);
        let oid = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid,
            name: "date_dim".into(),
            schema: dd,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        let cd = Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("state", DataType::Utf8),
        ]);
        let oid = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid,
            name: "customer_dim".into(),
            schema: cd,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        cat
    }

    fn bind_sql(sql: &str) -> BoundStatement {
        let cat = catalog();
        let gen = ColRefGenerator::new();
        crate::plan_sql(sql, &cat, &gen).unwrap()
    }

    #[test]
    fn binds_figure2_with_date_coercion() {
        let b = bind_sql(
            "SELECT avg(amount) FROM orders \
             WHERE date BETWEEN '2013-10-01' AND '2013-12-31'",
        );
        // The where predicate's endpoints must be Date datums now.
        let mut found_date_between = false;
        fn walk(p: &LogicalPlan, found: &mut bool) {
            if let LogicalPlan::Select { pred, .. } = p {
                pred.visit(&mut |e| {
                    if let Expr::Between { low, high, .. } = e {
                        if matches!(low.as_ref(), Expr::Lit(Datum::Date(_)))
                            && matches!(high.as_ref(), Expr::Lit(Datum::Date(_)))
                        {
                            *found = true;
                        }
                    }
                });
            }
            for c in p.children() {
                walk(c, found);
            }
        }
        walk(&b.plan, &mut found_date_between);
        assert!(found_date_between);
        // Shape: Project(Agg(Select(Get))).
        assert!(matches!(b.plan, LogicalPlan::Project { .. }));
    }

    #[test]
    fn binds_figure4_subquery_as_semi_join() {
        let b = bind_sql(
            "SELECT avg(amount) FROM orders WHERE date_id IN \
             (SELECT id FROM date_dim WHERE year = 2013 AND month BETWEEN 10 AND 12)",
        );
        let mut semi = 0;
        fn walk(p: &LogicalPlan, semi: &mut i32) {
            if let LogicalPlan::Join { join_type, .. } = p {
                if *join_type == JoinType::LeftSemi {
                    *semi += 1;
                }
            }
            for c in p.children() {
                walk(c, semi);
            }
        }
        walk(&b.plan, &mut semi);
        assert_eq!(semi, 1);
    }

    #[test]
    fn binds_qualified_and_aliased_columns() {
        let b =
            bind_sql("SELECT o.amount, d.month FROM orders o, date_dim d WHERE o.date_id = d.id");
        assert!(matches!(b.plan, LogicalPlan::Project { .. }));
        assert_eq!(b.plan.output_cols().len(), 2);
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        let cat = catalog();
        let gen = ColRefGenerator::new();
        // `id` exists in both date_dim and customer_dim.
        let err = crate::plan_sql("SELECT id FROM date_dim, customer_dim", &cat, &gen).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_names_error() {
        let cat = catalog();
        let gen = ColRefGenerator::new();
        assert!(crate::plan_sql("SELECT * FROM missing", &cat, &gen).is_err());
        assert!(crate::plan_sql("SELECT nope FROM orders", &cat, &gen).is_err());
        assert!(crate::plan_sql("SELECT o.nope FROM orders o", &cat, &gen).is_err());
    }

    #[test]
    fn group_by_with_aggregates() {
        let b = bind_sql("SELECT cust_id, count(*), sum(amount) FROM orders GROUP BY cust_id");
        fn find_agg(p: &LogicalPlan) -> Option<(usize, usize)> {
            if let LogicalPlan::Agg { group_by, aggs, .. } = p {
                return Some((group_by.len(), aggs.len()));
            }
            p.children().into_iter().find_map(find_agg)
        }
        assert_eq!(find_agg(&b.plan), Some((1, 2)));
        // Non-grouped bare column is rejected.
        let cat = catalog();
        let gen = ColRefGenerator::new();
        assert!(crate::plan_sql(
            "SELECT amount, count(*) FROM orders GROUP BY cust_id",
            &cat,
            &gen
        )
        .is_err());
    }

    #[test]
    fn binds_parameters_and_counts_them() {
        let b = bind_sql("SELECT * FROM orders WHERE date_id = $2 AND cust_id = $1");
        assert_eq!(b.param_count, 2);
    }

    #[test]
    fn binds_insert_with_coercion() {
        let b = bind_sql("INSERT INTO orders VALUES (1, 9.5, '2012-03-04', 64, 7)");
        match &b.plan {
            LogicalPlan::Insert { child, .. } => match child.as_ref() {
                LogicalPlan::Values { rows, .. } => {
                    assert_eq!(rows[0][0], Datum::Int64(1));
                    assert_eq!(rows[0][2], Datum::date_ymd(2012, 3, 4));
                    assert_eq!(rows[0][3], Datum::Int32(64));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
        // Column-subset insert fills NULLs.
        let b = bind_sql("INSERT INTO date_dim (id) VALUES (5)");
        match &b.plan {
            LogicalPlan::Insert { child, .. } => match child.as_ref() {
                LogicalPlan::Values { rows, .. } => {
                    assert_eq!(rows[0][0], Datum::Int32(5));
                    assert!(rows[0][1].is_null());
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn binds_update_with_from() {
        let b = bind_sql("UPDATE orders SET amount = 0.0 FROM date_dim WHERE date_id = id");
        match &b.plan {
            LogicalPlan::Update {
                target_cols,
                assignments,
                child,
                ..
            } => {
                assert_eq!(target_cols.len(), 5);
                assert_eq!(assignments[0].0, 1);
                assert!(matches!(child.as_ref(), LogicalPlan::Select { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn binds_delete() {
        let b = bind_sql("DELETE FROM orders WHERE date < '2012-06-01'");
        assert!(matches!(b.plan, LogicalPlan::Delete { .. }));
    }

    #[test]
    fn explain_flag_set() {
        let b = bind_sql("EXPLAIN SELECT * FROM orders");
        assert!(b.explain);
    }
}
