//! Aggregate function calls.

use mpp_expr::Expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate call, e.g. `avg(amount)`. `arg` is `None` only for
/// `count(*)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

impl AggCall {
    pub fn count_star() -> AggCall {
        AggCall {
            func: AggFunc::Count,
            arg: None,
        }
    }

    pub fn new(func: AggFunc, arg: Expr) -> AggCall {
        AggCall {
            func,
            arg: Some(arg),
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func.name()),
            Some(e) => write!(f, "{}({e})", self.func.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(AggCall::count_star().to_string(), "count(*)");
        let c = AggCall::new(AggFunc::Avg, Expr::lit(1i32));
        assert_eq!(c.to_string(), "avg(1)");
    }
}
