//! EXPLAIN-style plan rendering.

use crate::physical::PhysicalPlan;
use std::fmt::Write;

/// Render a physical plan as an indented tree, one operator per line with
/// its interesting annotations — close to GPDB's `EXPLAIN` output.
/// Operators the block engine evaluates column-at-a-time (batch filters
/// and projections, hash-join key extraction, aggregate input, batched
/// redistribute hashing, per-tuple partition-selector probes) carry a
/// `[vec]` marker.
pub fn explain(plan: &PhysicalPlan) -> String {
    explain_annotated(plan, &|_| None)
}

/// [`explain`], with a caller-supplied annotation appended to each
/// operator line (in parentheses). The optimizer uses this to attach
/// cardinality/cost estimates — and, post-run, actuals — without the
/// plan tree itself carrying estimate fields; the callback is handed
/// each node by reference, so side tables keyed by node address work.
pub fn explain_annotated(
    plan: &PhysicalPlan,
    annotate: &dyn Fn(&PhysicalPlan) -> Option<String>,
) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out, annotate);
    out
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn render(
    plan: &PhysicalPlan,
    depth: usize,
    out: &mut String,
    annotate: &dyn Fn(&PhysicalPlan) -> Option<String>,
) {
    let mut text = String::new();
    match plan {
        PhysicalPlan::TableScan {
            table_name, filter, ..
        } => {
            write!(text, "TableScan on {table_name}").unwrap();
            if let Some(f) = filter {
                write!(text, " filter: {f}").unwrap();
            }
        }
        PhysicalPlan::PartScan {
            part_name,
            filter,
            gate,
            ..
        } => {
            write!(text, "PartScan on {part_name}").unwrap();
            if let Some(g) = gate {
                write!(text, " gated-by: $oids{g}").unwrap();
            }
            if let Some(f) = filter {
                write!(text, " filter: {f}").unwrap();
            }
        }
        PhysicalPlan::DynamicScan {
            table_name,
            part_scan_id,
            filter,
            restrict,
            ..
        } => {
            write!(text, "DynamicScan({part_scan_id}) on {table_name}").unwrap();
            if let Some(r) = restrict {
                write!(text, " group: {} part(s)", r.len()).unwrap();
            }
            if let Some(f) = filter {
                write!(text, " filter: {f}").unwrap();
            }
        }
        PhysicalPlan::PartitionSelector {
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            ..
        } => {
            write!(text, "PartitionSelector({part_scan_id}) for {table_name}").unwrap();
            for (k, p) in part_keys.iter().zip(predicates) {
                match p {
                    Some(p) => write!(text, " [{k}: {p}]").unwrap(),
                    None => write!(text, " [{k}: <all>]").unwrap(),
                }
            }
            if !plan.children().is_empty() {
                text.push_str(" [vec]");
            }
        }
        PhysicalPlan::Sequence { .. } => text.push_str("Sequence"),
        PhysicalPlan::Filter { pred, .. } => write!(text, "Filter: {pred} [vec]").unwrap(),
        PhysicalPlan::Project { exprs, .. } => {
            write!(text, "Project: ").unwrap();
            for (i, e) in exprs.iter().enumerate() {
                if i > 0 {
                    text.push_str(", ");
                }
                write!(text, "{e}").unwrap();
            }
            text.push_str(" [vec]");
        }
        PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            write!(text, "HashJoin ({})", join_type.name()).unwrap();
            for (l, r) in left_keys.iter().zip(right_keys) {
                write!(text, " {l}={r}").unwrap();
            }
            if let Some(r) = residual {
                write!(text, " residual: {r}").unwrap();
            }
            text.push_str(" [vec]");
        }
        PhysicalPlan::NLJoin {
            join_type, pred, ..
        } => {
            write!(text, "NLJoin ({})", join_type.name()).unwrap();
            if let Some(p) = pred {
                write!(text, " on {p}").unwrap();
            }
        }
        PhysicalPlan::HashAgg { group_by, aggs, .. } => {
            write!(text, "HashAgg").unwrap();
            if !group_by.is_empty() {
                write!(text, " by ").unwrap();
                for (i, g) in group_by.iter().enumerate() {
                    if i > 0 {
                        text.push_str(", ");
                    }
                    write!(text, "{g}").unwrap();
                }
            }
            write!(text, ":").unwrap();
            for a in aggs {
                write!(text, " {a}").unwrap();
            }
            text.push_str(" [vec]");
        }
        PhysicalPlan::Motion { kind, .. } => match kind {
            crate::physical::MotionKind::Redistribute(cols) => {
                write!(text, "Redistribute Motion on ").unwrap();
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        text.push_str(", ");
                    }
                    write!(text, "{c}").unwrap();
                }
                text.push_str(" [vec]");
            }
            k => write!(text, "{} Motion", k.name()).unwrap(),
        },
        PhysicalPlan::Append { children, .. } => {
            write!(text, "Append ({} children)", children.len()).unwrap()
        }
        PhysicalPlan::InitPlanOids { param, key, .. } => {
            write!(text, "InitPlan $oids{param} = route({key})").unwrap()
        }
        PhysicalPlan::Values { rows, .. } => write!(text, "Values ({} rows)", rows.len()).unwrap(),
        PhysicalPlan::Limit { n, .. } => write!(text, "Limit {n}").unwrap(),
        PhysicalPlan::Sort { keys, .. } => {
            write!(text, "Sort by ").unwrap();
            for (i, (k, desc)) in keys.iter().enumerate() {
                if i > 0 {
                    text.push_str(", ");
                }
                write!(text, "{k}{}", if *desc { " desc" } else { "" }).unwrap();
            }
        }
        PhysicalPlan::Update { table, .. } => write!(text, "Update {table}").unwrap(),
        PhysicalPlan::Delete { table, .. } => write!(text, "Delete {table}").unwrap(),
        PhysicalPlan::Insert { table, .. } => write!(text, "Insert {table}").unwrap(),
    }
    if let Some(note) = annotate(plan) {
        write!(text, "  ({note})").unwrap();
    }
    line(out, depth, &text);
    for c in plan.children() {
        render(c, depth + 1, out, annotate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::{PartScanId, TableOid};
    use mpp_expr::{ColRef, Expr};

    #[test]
    fn renders_selector_and_dynamic_scan() {
        let key = ColRef::new(5, "pk");
        let plan = PhysicalPlan::Sequence {
            children: vec![
                PhysicalPlan::PartitionSelector {
                    table: TableOid(1),
                    table_name: "orders".into(),
                    part_scan_id: PartScanId(1),
                    part_keys: vec![key.clone()],
                    predicates: vec![Some(Expr::lt(Expr::col(key), Expr::lit(10i32)))],
                    child: None,
                },
                PhysicalPlan::DynamicScan {
                    table: TableOid(1),
                    table_name: "orders".into(),
                    part_scan_id: PartScanId(1),
                    output: vec![ColRef::new(5, "pk")],
                    filter: None,
                    restrict: None,
                },
            ],
        };
        let s = explain(&plan);
        assert!(s.contains("Sequence"));
        assert!(s.contains("PartitionSelector(scan1) for orders [pk#5: (pk#5 < 10)]"));
        assert!(s.contains("DynamicScan(scan1) on orders"));
        // Children indented under the sequence.
        assert!(s.lines().nth(1).unwrap().starts_with("  "));
    }
}
