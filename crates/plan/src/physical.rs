//! The physical plan algebra.
//!
//! Besides the conventional operators (scans, filters, hash joins,
//! aggregates), this algebra contains:
//!
//! * the paper's partitioning trio (§2.2) — [`PhysicalPlan::PartitionSelector`]
//!   (producer of partition OIDs), [`PhysicalPlan::DynamicScan`] (consumer)
//!   and [`PhysicalPlan::Sequence`] (left-to-right ordering),
//! * the MPP [`PhysicalPlan::Motion`] operators (Gather / Redistribute /
//!   Broadcast) that move rows between segments (§3.1),
//! * the **legacy planner's** inheritance-expansion shapes used as the
//!   paper's comparison baseline (§4.4): [`PhysicalPlan::Append`] over
//!   explicit per-partition [`PhysicalPlan::PartScan`]s, with
//!   [`PhysicalPlan::InitPlanOids`] computing a run-time OID set that gates
//!   each listed partition.
//!
//! Join children execute **left to right**: the left (outer) side is fully
//! consumed before the right (inner) side starts. This is the ordering
//! guarantee Algorithm 4 relies on when it pushes a `PartSelectorSpec` for
//! an inner-side `DynamicScan` onto the join's *outer* side.

use crate::agg::AggCall;
use crate::logical::JoinType;
use mpp_common::{Datum, MotionId, PartOid, PartScanId, TableOid};
use mpp_expr::{ColRef, Expr};
use serde::{Deserialize, Serialize};

/// How a Motion moves rows between segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MotionKind {
    /// All rows to segment 0.
    Gather,
    /// One copy to segment 0 — the child is replicated identically on
    /// every segment, so gathering all copies would multiply rows.
    GatherOne,
    /// Re-hash rows on the given columns.
    Redistribute(Vec<ColRef>),
    /// Every row to every segment.
    Broadcast,
}

impl MotionKind {
    pub fn name(&self) -> &'static str {
        match self {
            MotionKind::Gather => "Gather",
            MotionKind::GatherOne => "GatherOne",
            MotionKind::Redistribute(_) => "Redistribute",
            MotionKind::Broadcast => "Broadcast",
        }
    }
}

/// A physical query plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalPlan {
    /// Scan of an unpartitioned table.
    TableScan {
        table: TableOid,
        table_name: String,
        output: Vec<ColRef>,
        filter: Option<Expr>,
    },
    /// Scan of **one** leaf partition, listed explicitly in the plan — the
    /// legacy planner's unit of partitioned scanning. When `gate` is set,
    /// the scan only runs if the OID is present in the run-time OID-set
    /// parameter with that id (the legacy form of dynamic elimination; the
    /// partition is listed in the plan regardless).
    PartScan {
        table: TableOid,
        part: PartOid,
        part_name: String,
        output: Vec<ColRef>,
        filter: Option<Expr>,
        gate: Option<u32>,
    },
    /// The paper's consumer operator: scans exactly the partitions whose
    /// OIDs the paired PartitionSelector propagated. Plan size is O(1) in
    /// the partition count.
    DynamicScan {
        table: TableOid,
        table_name: String,
        part_scan_id: PartScanId,
        output: Vec<ColRef>,
        filter: Option<Expr>,
        /// When set, the scan consumes only the *intersection* of the
        /// selector-propagated OIDs with this set. Used by adaptive
        /// per-partition plan specialization: each `Append` branch of a
        /// specialized join restricts its scan to one partition group, so
        /// the branches together cover exactly the selector's output while
        /// each sees a disjoint slice.
        #[serde(default)]
        restrict: Option<Vec<PartOid>>,
    },
    /// The paper's producer operator. `part_keys` are the DynamicScan's
    /// colrefs for the partitioning key at each level; `predicates[i]`, if
    /// present, restricts level `i` (paper §2.4 extends both to lists for
    /// multi-level partitioning). With a child, the selector evaluates its
    /// predicates once per input row (dynamic elimination) and passes the
    /// child's rows through unchanged; without a child it evaluates them
    /// once against constants/parameters and produces nothing.
    PartitionSelector {
        table: TableOid,
        table_name: String,
        part_scan_id: PartScanId,
        part_keys: Vec<ColRef>,
        predicates: Vec<Option<Expr>>,
        child: Option<Box<PhysicalPlan>>,
    },
    /// Executes children in order, returns the last child's rows (§2.2).
    Sequence { children: Vec<PhysicalPlan> },
    /// Filter.
    Filter {
        pred: Expr,
        child: Box<PhysicalPlan>,
    },
    /// Projection.
    Project {
        exprs: Vec<Expr>,
        output: Vec<ColRef>,
        child: Box<PhysicalPlan>,
    },
    /// Hash join: builds on the **left** (outer) side, probes with the
    /// right — preserving left-to-right execution.
    HashJoin {
        join_type: JoinType,
        /// Equi-key expressions over the left / right child outputs.
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        /// Non-equi remainder of the join predicate, over the concatenated
        /// output.
        residual: Option<Expr>,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Nested-loops join (used when no equi-keys exist).
    NLJoin {
        join_type: JoinType,
        pred: Option<Expr>,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Hash aggregation.
    HashAgg {
        group_by: Vec<ColRef>,
        aggs: Vec<AggCall>,
        output: Vec<ColRef>,
        child: Box<PhysicalPlan>,
    },
    /// Inter-segment data movement.
    Motion {
        kind: MotionKind,
        child: Box<PhysicalPlan>,
    },
    /// Bag union of same-shaped children (legacy partition expansion).
    Append {
        output: Vec<ColRef>,
        children: Vec<PhysicalPlan>,
    },
    /// Legacy "init plan": executes `child`, maps `key` of every row
    /// through the partitioning function of `table`, and stores the
    /// resulting OID set in run-time parameter `param` for
    /// [`PhysicalPlan::PartScan`] gates to test.
    InitPlanOids {
        param: u32,
        table: TableOid,
        key: Expr,
        child: Box<PhysicalPlan>,
    },
    /// Literal rows.
    Values {
        rows: Vec<Vec<Datum>>,
        output: Vec<ColRef>,
    },
    /// First `n` rows.
    Limit { n: u64, child: Box<PhysicalPlan> },
    /// Sort by the listed columns (`true` = descending). Runs on a single
    /// segment (the optimizer gathers below it).
    Sort {
        keys: Vec<(ColRef, bool)>,
        child: Box<PhysicalPlan>,
    },
    /// UPDATE execution (see [`crate::logical::LogicalPlan::Update`]).
    Update {
        table: TableOid,
        target_cols: Vec<ColRef>,
        assignments: Vec<(usize, Expr)>,
        child: Box<PhysicalPlan>,
    },
    /// DELETE execution.
    Delete {
        table: TableOid,
        target_cols: Vec<ColRef>,
        child: Box<PhysicalPlan>,
    },
    /// INSERT execution.
    Insert {
        table: TableOid,
        child: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Output column identities.
    pub fn output_cols(&self) -> Vec<ColRef> {
        match self {
            PhysicalPlan::TableScan { output, .. }
            | PhysicalPlan::PartScan { output, .. }
            | PhysicalPlan::DynamicScan { output, .. }
            | PhysicalPlan::Project { output, .. }
            | PhysicalPlan::HashAgg { output, .. }
            | PhysicalPlan::Append { output, .. }
            | PhysicalPlan::Values { output, .. } => output.clone(),
            PhysicalPlan::PartitionSelector { child, .. } => {
                child.as_ref().map(|c| c.output_cols()).unwrap_or_default()
            }
            PhysicalPlan::Sequence { children } => {
                children.last().map(|c| c.output_cols()).unwrap_or_default()
            }
            PhysicalPlan::Filter { child, .. }
            | PhysicalPlan::Motion { child, .. }
            | PhysicalPlan::Limit { child, .. }
            | PhysicalPlan::Sort { child, .. } => child.output_cols(),
            PhysicalPlan::HashJoin {
                join_type,
                left,
                right,
                ..
            }
            | PhysicalPlan::NLJoin {
                join_type,
                left,
                right,
                ..
            } => {
                let mut cols = left.output_cols();
                if join_type.outputs_right() {
                    cols.extend(right.output_cols());
                }
                cols
            }
            PhysicalPlan::InitPlanOids { child, .. } => child.output_cols(),
            PhysicalPlan::Update { .. }
            | PhysicalPlan::Delete { .. }
            | PhysicalPlan::Insert { .. } => Vec::new(),
        }
    }

    /// Immediate children, in execution order.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. }
            | PhysicalPlan::PartScan { .. }
            | PhysicalPlan::DynamicScan { .. }
            | PhysicalPlan::Values { .. } => vec![],
            PhysicalPlan::PartitionSelector { child, .. } => {
                child.iter().map(|c| c.as_ref()).collect()
            }
            PhysicalPlan::Sequence { children } | PhysicalPlan::Append { children, .. } => {
                children.iter().collect()
            }
            PhysicalPlan::Filter { child, .. }
            | PhysicalPlan::Project { child, .. }
            | PhysicalPlan::Motion { child, .. }
            | PhysicalPlan::Limit { child, .. }
            | PhysicalPlan::Sort { child, .. }
            | PhysicalPlan::InitPlanOids { child, .. }
            | PhysicalPlan::HashAgg { child, .. }
            | PhysicalPlan::Update { child, .. }
            | PhysicalPlan::Delete { child, .. }
            | PhysicalPlan::Insert { child, .. } => vec![child],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NLJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Short operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::TableScan { .. } => "TableScan",
            PhysicalPlan::PartScan { .. } => "PartScan",
            PhysicalPlan::DynamicScan { .. } => "DynamicScan",
            PhysicalPlan::PartitionSelector { .. } => "PartitionSelector",
            PhysicalPlan::Sequence { .. } => "Sequence",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::HashJoin { .. } => "HashJoin",
            PhysicalPlan::NLJoin { .. } => "NLJoin",
            PhysicalPlan::HashAgg { .. } => "HashAgg",
            PhysicalPlan::Motion { .. } => "Motion",
            PhysicalPlan::Append { .. } => "Append",
            PhysicalPlan::InitPlanOids { .. } => "InitPlanOids",
            PhysicalPlan::Values { .. } => "Values",
            PhysicalPlan::Limit { .. } => "Limit",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::Update { .. } => "Update",
            PhysicalPlan::Delete { .. } => "Delete",
            PhysicalPlan::Insert { .. } => "Insert",
        }
    }

    /// Pre-order walk.
    pub fn visit(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Does the subtree contain a `DynamicScan` with this id? — the
    /// `HasPartScanId` helper of the placement algorithms (paper §2.3).
    pub fn has_part_scan_id(&self, id: PartScanId) -> bool {
        let mut found = false;
        self.visit(&mut |p| {
            if let PhysicalPlan::DynamicScan { part_scan_id, .. } = p {
                if *part_scan_id == id {
                    found = true;
                }
            }
        });
        found
    }

    /// All `DynamicScan` ids in the subtree, with their tables and key
    /// colrefs unresolved by any PartitionSelector yet.
    pub fn dynamic_scans(&self) -> Vec<(PartScanId, TableOid)> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let PhysicalPlan::DynamicScan {
                part_scan_id,
                table,
                ..
            } = p
            {
                out.push((*part_scan_id, *table));
            }
        });
        out
    }

    /// Every `Motion` node in the subtree paired with its stable
    /// [`MotionId`]: the node's pre-order position among Motion nodes.
    /// The id depends only on tree shape, so clones and re-executions of
    /// a plan get identical ids — this is what the executor keys its
    /// materialization cache and per-motion statistics by, instead of
    /// raw node addresses.
    pub fn motion_sites(&self) -> Vec<(MotionId, &PhysicalPlan)> {
        fn walk<'a>(node: &'a PhysicalPlan, out: &mut Vec<(MotionId, &'a PhysicalPlan)>) {
            if matches!(node, PhysicalPlan::Motion { .. }) {
                out.push((MotionId(out.len() as u32), node));
            }
            for c in node.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Count of PartitionSelector nodes (used by tests).
    pub fn count_op(&self, name: &str) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if p.name() == name {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    fn dynscan(id: u32, table: u32) -> PhysicalPlan {
        PhysicalPlan::DynamicScan {
            table: TableOid(table),
            table_name: format!("t{table}"),
            part_scan_id: PartScanId(id),
            output: vec![cr(1, "a"), cr(2, "b")],
            filter: None,
            restrict: None,
        }
    }

    #[test]
    fn has_part_scan_id_walks_subtrees() {
        let plan = PhysicalPlan::Filter {
            pred: Expr::lit(true),
            child: Box::new(dynscan(7, 1)),
        };
        assert!(plan.has_part_scan_id(PartScanId(7)));
        assert!(!plan.has_part_scan_id(PartScanId(8)));
    }

    #[test]
    fn sequence_outputs_last_child() {
        let selector = PhysicalPlan::PartitionSelector {
            table: TableOid(1),
            table_name: "t1".into(),
            part_scan_id: PartScanId(1),
            part_keys: vec![cr(2, "b")],
            predicates: vec![None],
            child: None,
        };
        let seq = PhysicalPlan::Sequence {
            children: vec![selector, dynscan(1, 1)],
        };
        assert_eq!(seq.output_cols().len(), 2);
        assert_eq!(seq.children().len(), 2);
    }

    #[test]
    fn selector_with_child_passes_output_through() {
        let sel = PhysicalPlan::PartitionSelector {
            table: TableOid(1),
            table_name: "t1".into(),
            part_scan_id: PartScanId(1),
            part_keys: vec![cr(2, "b")],
            predicates: vec![Some(Expr::lit(true))],
            child: Some(Box::new(PhysicalPlan::Values {
                rows: vec![vec![Datum::Int32(1)]],
                output: vec![cr(9, "x")],
            })),
        };
        assert_eq!(sel.output_cols(), vec![cr(9, "x")]);
    }

    #[test]
    fn semi_join_hides_right_columns() {
        let j = PhysicalPlan::HashJoin {
            join_type: JoinType::LeftSemi,
            left_keys: vec![],
            right_keys: vec![],
            residual: None,
            left: Box::new(dynscan(1, 1)),
            right: Box::new(dynscan(2, 2)),
        };
        assert_eq!(j.output_cols().len(), 2);
        assert_eq!(j.dynamic_scans().len(), 2);
    }

    #[test]
    fn count_op_counts() {
        let seq = PhysicalPlan::Sequence {
            children: vec![dynscan(1, 1), dynscan(2, 1)],
        };
        assert_eq!(seq.count_op("DynamicScan"), 2);
        assert_eq!(seq.count_op("HashJoin"), 0);
    }
}
