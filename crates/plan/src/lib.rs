//! # mpp-plan
//!
//! The plan algebras of the system:
//!
//! * [`LogicalPlan`] — what the SQL binder produces and the optimizers
//!   consume,
//! * [`PhysicalPlan`] — what the optimizers produce and the executor runs,
//!   including the paper's three partitioning operators (§2.2):
//!   [`PhysicalPlan::PartitionSelector`] (producer),
//!   [`PhysicalPlan::DynamicScan`] (consumer) and
//!   [`PhysicalPlan::Sequence`] (ordering), the MPP
//!   [`PhysicalPlan::Motion`] enforcers, and the legacy planner's
//!   inheritance-expansion shapes ([`PhysicalPlan::Append`],
//!   [`PhysicalPlan::PartScan`] with run-time gates, [`PhysicalPlan::InitPlanOids`]),
//! * aggregate calls ([`AggCall`], [`AggFunc`]),
//! * EXPLAIN-style rendering ([`explain()`]),
//! * the plan-size metric used by the paper's Figure 18
//!   ([`size::plan_size_bytes`], [`size::plan_node_count`]).

pub mod agg;
pub mod explain;
pub mod logical;
pub mod physical;
pub mod size;

pub use agg::{AggCall, AggFunc};
pub use explain::{explain, explain_annotated};
pub use logical::{JoinType, LogicalPlan};
pub use physical::{MotionKind, PhysicalPlan};
pub use size::{plan_node_count, plan_size_bytes};
