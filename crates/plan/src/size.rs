//! Plan-size measurement (paper §4.4, Figure 18).
//!
//! GPDB ships serialized plans to every segment, so plan size directly
//! costs dispatch latency and metadata traffic. We measure it by encoding
//! the plan with a compact binary writer — the byte count plays the role of
//! the paper's "plan size (KB)" axis — and also report a plain node count.
//!
//! The encoding is a faithful walk of the structure: every operator, every
//! expression node, every listed partition OID contributes bytes. That is
//! exactly why the legacy planner's `Append`-expansion plans grow linearly
//! (and its DML plans quadratically) with the partition count, while
//! DynamicScan plans stay flat.

use crate::agg::AggCall;
use crate::physical::{MotionKind, PhysicalPlan};
use bytes::{BufMut, BytesMut};
use mpp_common::Datum;
use mpp_expr::{ColRef, Expr};

/// Number of operator nodes in the plan.
pub fn plan_node_count(plan: &PhysicalPlan) -> usize {
    let mut n = 0;
    plan.visit(&mut |_| n += 1);
    n
}

/// Serialized size of the plan in bytes.
pub fn plan_size_bytes(plan: &PhysicalPlan) -> usize {
    let mut buf = BytesMut::with_capacity(1024);
    encode_plan(plan, &mut buf);
    buf.len()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn encode_datum(d: &Datum, buf: &mut BytesMut) {
    match d {
        Datum::Null => buf.put_u8(0),
        Datum::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Datum::Int32(v) => {
            buf.put_u8(2);
            buf.put_i32_le(*v);
        }
        Datum::Int64(v) => {
            buf.put_u8(3);
            buf.put_i64_le(*v);
        }
        Datum::Float64(v) => {
            buf.put_u8(4);
            buf.put_f64_le(*v);
        }
        Datum::Str(s) => {
            buf.put_u8(5);
            put_str(buf, s);
        }
        Datum::Date(v) => {
            buf.put_u8(6);
            buf.put_i32_le(*v);
        }
    }
}

fn encode_colref(c: &ColRef, buf: &mut BytesMut) {
    buf.put_u32_le(c.id);
}

fn encode_expr(e: &Expr, buf: &mut BytesMut) {
    match e {
        Expr::Col(c) => {
            buf.put_u8(1);
            encode_colref(c, buf);
        }
        Expr::Lit(d) => {
            buf.put_u8(2);
            encode_datum(d, buf);
        }
        Expr::Param(n) => {
            buf.put_u8(3);
            buf.put_u32_le(*n);
        }
        Expr::Cmp { op, left, right } => {
            buf.put_u8(4);
            buf.put_u8(*op as u8);
            encode_expr(left, buf);
            encode_expr(right, buf);
        }
        Expr::And(v) => {
            buf.put_u8(5);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                encode_expr(x, buf);
            }
        }
        Expr::Or(v) => {
            buf.put_u8(6);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                encode_expr(x, buf);
            }
        }
        Expr::Not(x) => {
            buf.put_u8(7);
            encode_expr(x, buf);
        }
        Expr::IsNull(x) => {
            buf.put_u8(8);
            encode_expr(x, buf);
        }
        Expr::Arith { op, left, right } => {
            buf.put_u8(9);
            buf.put_u8(*op as u8);
            encode_expr(left, buf);
            encode_expr(right, buf);
        }
        Expr::Between { expr, low, high } => {
            buf.put_u8(10);
            encode_expr(expr, buf);
            encode_expr(low, buf);
            encode_expr(high, buf);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            buf.put_u8(11);
            buf.put_u8(*negated as u8);
            encode_expr(expr, buf);
            buf.put_u32_le(list.len() as u32);
            for x in list {
                encode_expr(x, buf);
            }
        }
    }
}

fn encode_opt_expr(e: &Option<Expr>, buf: &mut BytesMut) {
    match e {
        None => buf.put_u8(0),
        Some(e) => {
            buf.put_u8(1);
            encode_expr(e, buf);
        }
    }
}

fn encode_cols(cols: &[ColRef], buf: &mut BytesMut) {
    buf.put_u32_le(cols.len() as u32);
    for c in cols {
        encode_colref(c, buf);
    }
}

fn encode_aggs(aggs: &[AggCall], buf: &mut BytesMut) {
    buf.put_u32_le(aggs.len() as u32);
    for a in aggs {
        buf.put_u8(a.func as u8);
        encode_opt_expr(&a.arg, buf);
    }
}

fn encode_plan(plan: &PhysicalPlan, buf: &mut BytesMut) {
    match plan {
        PhysicalPlan::TableScan {
            table,
            table_name,
            output,
            filter,
        } => {
            buf.put_u8(1);
            buf.put_u32_le(table.raw());
            put_str(buf, table_name);
            encode_cols(output, buf);
            encode_opt_expr(filter, buf);
        }
        PhysicalPlan::PartScan {
            table,
            part,
            part_name,
            output,
            filter,
            gate,
        } => {
            buf.put_u8(2);
            buf.put_u32_le(table.raw());
            buf.put_u32_le(part.raw());
            put_str(buf, part_name);
            encode_cols(output, buf);
            encode_opt_expr(filter, buf);
            match gate {
                None => buf.put_u8(0),
                Some(g) => {
                    buf.put_u8(1);
                    buf.put_u32_le(*g);
                }
            }
        }
        PhysicalPlan::DynamicScan {
            table,
            table_name,
            part_scan_id,
            output,
            filter,
            restrict,
        } => {
            buf.put_u8(3);
            buf.put_u32_le(table.raw());
            put_str(buf, table_name);
            buf.put_u32_le(part_scan_id.raw());
            encode_cols(output, buf);
            encode_opt_expr(filter, buf);
            match restrict {
                None => buf.put_u8(0),
                Some(oids) => {
                    buf.put_u8(1);
                    buf.put_u32_le(oids.len() as u32);
                    for o in oids {
                        buf.put_u32_le(o.raw());
                    }
                }
            }
        }
        PhysicalPlan::PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child,
        } => {
            buf.put_u8(4);
            buf.put_u32_le(table.raw());
            put_str(buf, table_name);
            buf.put_u32_le(part_scan_id.raw());
            encode_cols(part_keys, buf);
            buf.put_u32_le(predicates.len() as u32);
            for p in predicates {
                encode_opt_expr(p, buf);
            }
            match child {
                None => buf.put_u8(0),
                Some(c) => {
                    buf.put_u8(1);
                    encode_plan(c, buf);
                }
            }
        }
        PhysicalPlan::Sequence { children } => {
            buf.put_u8(5);
            buf.put_u32_le(children.len() as u32);
            for c in children {
                encode_plan(c, buf);
            }
        }
        PhysicalPlan::Filter { pred, child } => {
            buf.put_u8(6);
            encode_expr(pred, buf);
            encode_plan(child, buf);
        }
        PhysicalPlan::Project {
            exprs,
            output,
            child,
        } => {
            buf.put_u8(7);
            buf.put_u32_le(exprs.len() as u32);
            for e in exprs {
                encode_expr(e, buf);
            }
            encode_cols(output, buf);
            encode_plan(child, buf);
        }
        PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left,
            right,
        } => {
            buf.put_u8(8);
            buf.put_u8(*join_type as u8);
            buf.put_u32_le(left_keys.len() as u32);
            for e in left_keys.iter().chain(right_keys) {
                encode_expr(e, buf);
            }
            encode_opt_expr(residual, buf);
            encode_plan(left, buf);
            encode_plan(right, buf);
        }
        PhysicalPlan::NLJoin {
            join_type,
            pred,
            left,
            right,
        } => {
            buf.put_u8(9);
            buf.put_u8(*join_type as u8);
            encode_opt_expr(pred, buf);
            encode_plan(left, buf);
            encode_plan(right, buf);
        }
        PhysicalPlan::HashAgg {
            group_by,
            aggs,
            output,
            child,
        } => {
            buf.put_u8(10);
            encode_cols(group_by, buf);
            encode_aggs(aggs, buf);
            encode_cols(output, buf);
            encode_plan(child, buf);
        }
        PhysicalPlan::Motion { kind, child } => {
            buf.put_u8(11);
            match kind {
                MotionKind::Gather => buf.put_u8(0),
                MotionKind::Broadcast => buf.put_u8(1),
                MotionKind::Redistribute(cols) => {
                    buf.put_u8(2);
                    encode_cols(cols, buf);
                }
                MotionKind::GatherOne => buf.put_u8(3),
            }
            encode_plan(child, buf);
        }
        PhysicalPlan::Append { output, children } => {
            buf.put_u8(12);
            encode_cols(output, buf);
            buf.put_u32_le(children.len() as u32);
            for c in children {
                encode_plan(c, buf);
            }
        }
        PhysicalPlan::InitPlanOids {
            param,
            table,
            key,
            child,
        } => {
            buf.put_u8(13);
            buf.put_u32_le(*param);
            buf.put_u32_le(table.raw());
            encode_expr(key, buf);
            encode_plan(child, buf);
        }
        PhysicalPlan::Values { rows, output } => {
            buf.put_u8(14);
            encode_cols(output, buf);
            buf.put_u32_le(rows.len() as u32);
            for r in rows {
                buf.put_u32_le(r.len() as u32);
                for d in r {
                    encode_datum(d, buf);
                }
            }
        }
        PhysicalPlan::Limit { n, child } => {
            buf.put_u8(15);
            buf.put_u64_le(*n);
            encode_plan(child, buf);
        }
        PhysicalPlan::Sort { keys, child } => {
            buf.put_u8(19);
            buf.put_u32_le(keys.len() as u32);
            for (k, desc) in keys {
                encode_colref(k, buf);
                buf.put_u8(*desc as u8);
            }
            encode_plan(child, buf);
        }
        PhysicalPlan::Update {
            table,
            target_cols,
            assignments,
            child,
        } => {
            buf.put_u8(16);
            buf.put_u32_le(table.raw());
            encode_cols(target_cols, buf);
            buf.put_u32_le(assignments.len() as u32);
            for (i, e) in assignments {
                buf.put_u32_le(*i as u32);
                encode_expr(e, buf);
            }
            encode_plan(child, buf);
        }
        PhysicalPlan::Delete {
            table,
            target_cols,
            child,
        } => {
            buf.put_u8(17);
            buf.put_u32_le(table.raw());
            encode_cols(target_cols, buf);
            encode_plan(child, buf);
        }
        PhysicalPlan::Insert { table, child } => {
            buf.put_u8(18);
            buf.put_u32_le(table.raw());
            encode_plan(child, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::{PartOid, PartScanId, TableOid};

    fn cr(id: u32) -> ColRef {
        ColRef::new(id, "c")
    }

    fn part_scan(i: u32) -> PhysicalPlan {
        PhysicalPlan::PartScan {
            table: TableOid(1),
            part: PartOid(i),
            part_name: format!("t1_p{i}"),
            output: vec![cr(1), cr(2)],
            filter: None,
            gate: None,
        }
    }

    #[test]
    fn append_size_grows_linearly_with_parts() {
        let small = PhysicalPlan::Append {
            output: vec![cr(1), cr(2)],
            children: (0..10).map(part_scan).collect(),
        };
        let big = PhysicalPlan::Append {
            output: vec![cr(1), cr(2)],
            children: (0..100).map(part_scan).collect(),
        };
        let (s, b) = (plan_size_bytes(&small), plan_size_bytes(&big));
        assert!(b > s * 8, "expected near-linear growth: {s} -> {b}");
        assert_eq!(plan_node_count(&small), 11);
        assert_eq!(plan_node_count(&big), 101);
    }

    #[test]
    fn dynamic_scan_size_independent_of_parts() {
        // Whatever the partition count, the DynamicScan plan is the same.
        let plan = PhysicalPlan::Sequence {
            children: vec![
                PhysicalPlan::PartitionSelector {
                    table: TableOid(1),
                    table_name: "t1".into(),
                    part_scan_id: PartScanId(1),
                    part_keys: vec![cr(2)],
                    predicates: vec![Some(Expr::lt(Expr::col(cr(2)), Expr::lit(10i32)))],
                    child: None,
                },
                PhysicalPlan::DynamicScan {
                    table: TableOid(1),
                    table_name: "t1".into(),
                    part_scan_id: PartScanId(1),
                    output: vec![cr(1), cr(2)],
                    filter: None,
                    restrict: None,
                },
            ],
        };
        assert_eq!(plan_node_count(&plan), 3);
        let sz = plan_size_bytes(&plan);
        assert!(sz > 0 && sz < 200, "compact plan expected, got {sz}");
    }

    #[test]
    fn deeper_expressions_cost_bytes() {
        let narrow = PhysicalPlan::Filter {
            pred: Expr::lit(true),
            child: Box::new(part_scan(0)),
        };
        let wide = PhysicalPlan::Filter {
            pred: Expr::and(
                (0..20)
                    .map(|i| Expr::eq(Expr::col(cr(i)), Expr::lit(i as i32)))
                    .collect(),
            ),
            child: Box::new(part_scan(0)),
        };
        assert!(plan_size_bytes(&wide) > plan_size_bytes(&narrow) + 100);
    }
}
