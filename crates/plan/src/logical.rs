//! The logical plan algebra produced by the binder.

use crate::agg::AggCall;
use mpp_common::{Datum, TableOid};
use mpp_expr::{ColRef, Expr};
use serde::{Deserialize, Serialize};

/// Join flavors. `LeftSemi` is what `IN (subquery)` binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinType {
    Inner,
    LeftOuter,
    LeftSemi,
    LeftAnti,
}

impl JoinType {
    pub fn name(self) -> &'static str {
        match self {
            JoinType::Inner => "inner",
            JoinType::LeftOuter => "left",
            JoinType::LeftSemi => "semi",
            JoinType::LeftAnti => "anti",
        }
    }

    /// Does the join output include the right side's columns?
    pub fn outputs_right(self) -> bool {
        matches!(self, JoinType::Inner | JoinType::LeftOuter)
    }
}

/// A logical query plan. Column identities ([`ColRef`]) are minted by the
/// binder; every node lists its output columns explicitly so parents can
/// reference them without positional bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan of a base table (partitioned or not — the optimizer decides how
    /// to implement it).
    Get {
        table: TableOid,
        table_name: String,
        /// One colref per table column, in schema order.
        output: Vec<ColRef>,
    },
    /// Filter.
    Select { pred: Expr, child: Box<LogicalPlan> },
    /// Projection: compute `exprs`, named by `output`.
    Project {
        exprs: Vec<Expr>,
        output: Vec<ColRef>,
        child: Box<LogicalPlan>,
    },
    /// Join with an arbitrary predicate.
    Join {
        join_type: JoinType,
        pred: Expr,
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Grouping + aggregation. Output colrefs are the group columns
    /// followed by one colref per aggregate.
    Agg {
        group_by: Vec<ColRef>,
        aggs: Vec<AggCall>,
        output: Vec<ColRef>,
        child: Box<LogicalPlan>,
    },
    /// Literal rows.
    Values {
        rows: Vec<Vec<Datum>>,
        output: Vec<ColRef>,
    },
    /// First `n` rows (no ordering guarantees — used for LIMIT).
    Limit { n: u64, child: Box<LogicalPlan> },
    /// Sort by the listed columns (`true` = descending).
    Sort {
        keys: Vec<(ColRef, bool)>,
        child: Box<LogicalPlan>,
    },
    /// `UPDATE table SET …`. `child` produces, for every target row, the
    /// target table's full current row (as `target_cols`) plus whatever the
    /// assignments reference.
    Update {
        table: TableOid,
        /// The child's colrefs holding the target table's current row, in
        /// schema order.
        target_cols: Vec<ColRef>,
        /// (column index in the table schema, new-value expression).
        assignments: Vec<(usize, Expr)>,
        child: Box<LogicalPlan>,
    },
    /// `DELETE FROM table`. `child` produces the rows to delete
    /// (`target_cols` in schema order).
    Delete {
        table: TableOid,
        target_cols: Vec<ColRef>,
        child: Box<LogicalPlan>,
    },
    /// `INSERT INTO table`. `child` produces rows in schema order.
    Insert {
        table: TableOid,
        child: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Output column identities of this node.
    pub fn output_cols(&self) -> Vec<ColRef> {
        match self {
            LogicalPlan::Get { output, .. }
            | LogicalPlan::Project { output, .. }
            | LogicalPlan::Agg { output, .. }
            | LogicalPlan::Values { output, .. } => output.clone(),
            LogicalPlan::Select { child, .. }
            | LogicalPlan::Limit { child, .. }
            | LogicalPlan::Sort { child, .. } => child.output_cols(),
            LogicalPlan::Join {
                join_type,
                left,
                right,
                ..
            } => {
                let mut cols = left.output_cols();
                if join_type.outputs_right() {
                    cols.extend(right.output_cols());
                }
                cols
            }
            // DML nodes return a row count, no named columns.
            LogicalPlan::Update { .. }
            | LogicalPlan::Delete { .. }
            | LogicalPlan::Insert { .. } => Vec::new(),
        }
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Get { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Select { child, .. }
            | LogicalPlan::Project { child, .. }
            | LogicalPlan::Agg { child, .. }
            | LogicalPlan::Limit { child, .. }
            | LogicalPlan::Sort { child, .. }
            | LogicalPlan::Update { child, .. }
            | LogicalPlan::Delete { child, .. }
            | LogicalPlan::Insert { child, .. } => vec![child],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// All `Get` nodes in the tree (pre-order).
    pub fn base_tables(&self) -> Vec<TableOid> {
        let mut out = Vec::new();
        fn rec(p: &LogicalPlan, out: &mut Vec<TableOid>) {
            if let LogicalPlan::Get { table, .. } = p {
                out.push(*table);
            }
            for c in p.children() {
                rec(c, out);
            }
        }
        rec(self, &mut out);
        out
    }

    /// Is this a DML statement?
    pub fn is_dml(&self) -> bool {
        matches!(
            self,
            LogicalPlan::Update { .. } | LogicalPlan::Delete { .. } | LogicalPlan::Insert { .. }
        )
    }

    /// Short operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Get { .. } => "Get",
            LogicalPlan::Select { .. } => "Select",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Agg { .. } => "Agg",
            LogicalPlan::Values { .. } => "Values",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Update { .. } => "Update",
            LogicalPlan::Delete { .. } => "Delete",
            LogicalPlan::Insert { .. } => "Insert",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    fn get(table: u32, cols: &[(u32, &str)]) -> LogicalPlan {
        LogicalPlan::Get {
            table: TableOid(table),
            table_name: format!("t{table}"),
            output: cols.iter().map(|&(id, n)| cr(id, n)).collect(),
        }
    }

    #[test]
    fn output_cols_flow_through_select() {
        let plan = LogicalPlan::Select {
            pred: Expr::lit(true),
            child: Box::new(get(1, &[(1, "a"), (2, "b")])),
        };
        assert_eq!(plan.output_cols().len(), 2);
    }

    #[test]
    fn join_output_depends_on_type() {
        let l = get(1, &[(1, "a")]);
        let r = get(2, &[(2, "b")]);
        let inner = LogicalPlan::Join {
            join_type: JoinType::Inner,
            pred: Expr::lit(true),
            left: Box::new(l.clone()),
            right: Box::new(r.clone()),
        };
        assert_eq!(inner.output_cols().len(), 2);
        let semi = LogicalPlan::Join {
            join_type: JoinType::LeftSemi,
            pred: Expr::lit(true),
            left: Box::new(l),
            right: Box::new(r),
        };
        assert_eq!(semi.output_cols().len(), 1);
    }

    #[test]
    fn base_tables_collects_in_preorder() {
        let plan = LogicalPlan::Join {
            join_type: JoinType::Inner,
            pred: Expr::lit(true),
            left: Box::new(get(1, &[(1, "a")])),
            right: Box::new(get(2, &[(2, "b")])),
        };
        assert_eq!(plan.base_tables(), vec![TableOid(1), TableOid(2)]);
    }

    #[test]
    fn dml_detection() {
        let ins = LogicalPlan::Insert {
            table: TableOid(1),
            child: Box::new(get(1, &[(1, "a")])),
        };
        assert!(ins.is_dml());
        assert!(ins.output_cols().is_empty());
        assert!(!get(1, &[(1, "a")]).is_dml());
    }
}
