//! The storage engine proper.

use mpp_catalog::{Catalog, ColumnStats, Distribution, HistogramBuilder, TableStats};
use mpp_common::{Datum, Error, PartOid, Result, Row, RowBlock, SegmentId, TableOid};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Identity of a physical table: either a plain (unpartitioned) table or
/// one leaf partition of a partitioned table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhysId {
    Table(TableOid),
    Part(PartOid),
}

impl std::fmt::Display for PhysId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysId::Table(t) => write!(f, "{t}"),
            PhysId::Part(p) => write!(f, "{p}"),
        }
    }
}

#[derive(Default)]
struct Inner {
    /// (physical table, segment) → resident columnar block (always dense:
    /// no selection vector). Scanning a block is an `Arc` bump per column;
    /// the row-oriented scan APIs materialize rows on the way out.
    data: HashMap<(PhysId, SegmentId), RowBlock>,
}

/// The shared storage engine. Cheap to clone.
#[derive(Clone)]
pub struct Storage {
    catalog: Catalog,
    num_segments: usize,
    inner: Arc<RwLock<Inner>>,
}

impl Storage {
    pub fn new(catalog: Catalog, num_segments: usize) -> Storage {
        assert!(num_segments >= 1, "need at least one segment");
        Storage {
            catalog,
            num_segments,
            inner: Arc::new(RwLock::new(Inner::default())),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    pub fn segments(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.num_segments as u32).map(SegmentId)
    }

    /// Which segment(s) a row of `table` belongs on.
    fn target_segments(&self, dist: &Distribution, row: &Row) -> Vec<SegmentId> {
        match dist {
            Distribution::Hashed(cols) => {
                let h = row.hash_columns(cols);
                vec![SegmentId((h % self.num_segments as u64) as u32)]
            }
            Distribution::Replicated => self.segments().collect(),
            Distribution::Singleton => vec![SegmentId(0)],
        }
    }

    /// The physical table a row of `table` belongs in (`f_T`; `⊥` is an
    /// error).
    pub fn route_row(&self, table: TableOid, row: &Row) -> Result<PhysId> {
        let desc = self.catalog.table(table)?;
        match &desc.partitioning {
            None => Ok(PhysId::Table(table)),
            Some(tree) => {
                let keys: Vec<Datum> = tree
                    .key_indices()
                    .iter()
                    .map(|&i| {
                        row.get(i).cloned().ok_or_else(|| {
                            Error::Execution(format!("row too short for partition key #{i}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let oid = tree.route(&keys).ok_or_else(|| {
                    Error::NoMatchingPartition(format!(
                        "table {}: no partition accepts key {:?}",
                        desc.name, keys
                    ))
                })?;
                Ok(PhysId::Part(oid))
            }
        }
    }

    /// Every (physical table, segment) location where a row of `table`
    /// with these values is stored.
    pub fn locate_row(&self, table: TableOid, row: &Row) -> Result<Vec<(PhysId, SegmentId)>> {
        let desc = self.catalog.table(table)?;
        let phys = self.route_row(table, row)?;
        Ok(self
            .target_segments(&desc.distribution, row)
            .into_iter()
            .map(|seg| (phys, seg))
            .collect())
    }

    /// Insert rows, routing each to its partition and segment(s). The
    /// catalog work — descriptor resolution, partition-key indices, the
    /// distribution — is done once per batch, not once per row; the per-row
    /// cost is one O(log P) route plus one hash.
    pub fn insert(&self, table: TableOid, rows: impl IntoIterator<Item = Row>) -> Result<usize> {
        let desc = self.catalog.table(table)?;
        let part = desc
            .partitioning
            .as_ref()
            .map(|tree| (tree, tree.key_indices()));
        let mut keys: Vec<Datum> = Vec::with_capacity(part.as_ref().map_or(0, |(_, k)| k.len()));
        let mut staged: HashMap<(PhysId, SegmentId), Vec<Row>> = HashMap::new();
        let mut part_deltas: HashMap<PartOid, u64> = HashMap::new();
        let mut n = 0usize;
        for row in rows {
            if row.len() != desc.schema.len() {
                return Err(Error::Execution(format!(
                    "table {}: row arity {} != schema arity {}",
                    desc.name,
                    row.len(),
                    desc.schema.len()
                )));
            }
            let phys = match &part {
                None => PhysId::Table(table),
                Some((tree, key_indices)) => {
                    keys.clear();
                    for &i in key_indices {
                        keys.push(row.get(i).cloned().ok_or_else(|| {
                            Error::Execution(format!("row too short for partition key #{i}"))
                        })?);
                    }
                    let oid = tree.route(&keys).ok_or_else(|| {
                        Error::NoMatchingPartition(format!(
                            "table {}: no partition accepts key {:?}",
                            desc.name, keys
                        ))
                    })?;
                    PhysId::Part(oid)
                }
            };
            for seg in self.target_segments(&desc.distribution, &row) {
                staged.entry((phys, seg)).or_default().push(row.clone());
            }
            if let PhysId::Part(oid) = phys {
                *part_deltas.entry(oid).or_insert(0) += 1;
            }
            n += 1;
        }
        let width = desc.schema.len();
        let mut g = self.inner.write();
        for (key, rows) in staged {
            g.data
                .entry(key)
                .or_insert_with(|| RowBlock::empty(width))
                .append_rows(&rows);
        }
        drop(g);
        // Coarse stats refresh: keep the row counts trailing the data so
        // the optimizer never costs a freshly-loaded table as empty. Does
        // not bump the stats version (see `Catalog::refresh_stats_coarse`).
        if n > 0 {
            let deltas: Vec<(PartOid, u64)> = part_deltas.into_iter().collect();
            self.catalog.refresh_stats_coarse(table, n as u64, &deltas);
        }
        Ok(n)
    }

    /// Scan one physical table on one segment as a columnar block: an
    /// `Arc` bump per column, no row materialization. `None` when the
    /// location holds no rows (the caller knows the schema width).
    pub fn scan_block(&self, phys: PhysId, segment: SegmentId) -> Option<RowBlock> {
        self.inner.read().data.get(&(phys, segment)).cloned()
    }

    /// Scan several physical tables on one segment under a *single* lock
    /// acquisition, in input order — the block-engine counterpart of
    /// [`Storage::scan_batch`]. A dynamic scan opens every selected
    /// partition back to back; taking the storage lock once per batch
    /// instead of once per partition keeps fine-grained partitioning
    /// cheap — and keeps concurrently-scanning segment workers from
    /// bouncing the lock's cache line hundreds of times per query.
    pub fn scan_batch_blocks(
        &self,
        phys: impl IntoIterator<Item = PhysId>,
        segment: SegmentId,
    ) -> Vec<(PhysId, Option<RowBlock>)> {
        let g = self.inner.read();
        phys.into_iter()
            .map(|p| (p, g.data.get(&(p, segment)).cloned()))
            .collect()
    }

    /// Scan one physical table on one segment as *morsels*: block slices
    /// of at most `morsel_rows` logical rows, in row order. Each morsel
    /// shares the stored block's column arcs — slicing allocates only a
    /// selection vector (and a whole-block morsel not even that). This is
    /// the unit of work the morsel-driven scheduler steals between
    /// workers, so a partition's scan parallelizes even when one
    /// partition holds most of the table.
    pub fn scan_block_morsels(
        &self,
        phys: PhysId,
        segment: SegmentId,
        morsel_rows: usize,
    ) -> Vec<RowBlock> {
        match self.scan_block(phys, segment) {
            None => Vec::new(),
            Some(b) => block_morsels(&b, morsel_rows),
        }
    }

    /// Scan one physical table on one segment, materializing rows.
    pub fn scan(&self, phys: PhysId, segment: SegmentId) -> Vec<Row> {
        self.inner
            .read()
            .data
            .get(&(phys, segment))
            .map(|b| b.to_rows())
            .unwrap_or_default()
    }

    /// Row-materializing form of [`Storage::scan_batch_blocks`].
    pub fn scan_batch(
        &self,
        phys: impl IntoIterator<Item = PhysId>,
        segment: SegmentId,
    ) -> Vec<(PhysId, Vec<Row>)> {
        let g = self.inner.read();
        phys.into_iter()
            .map(|p| {
                (
                    p,
                    g.data
                        .get(&(p, segment))
                        .map(|b| b.to_rows())
                        .unwrap_or_default(),
                )
            })
            .collect()
    }

    /// Rows of a physical table across all segments.
    pub fn scan_all_segments(&self, phys: PhysId) -> Vec<Row> {
        let g = self.inner.read();
        let mut out = Vec::new();
        for seg in 0..self.num_segments as u32 {
            if let Some(b) = g.data.get(&(phys, SegmentId(seg))) {
                out.extend(b.to_rows());
            }
        }
        out
    }

    /// Every physical table of a logical table (1 for plain tables).
    pub fn physical_tables(&self, table: TableOid) -> Result<Vec<PhysId>> {
        let desc = self.catalog.table(table)?;
        Ok(match &desc.partitioning {
            None => vec![PhysId::Table(table)],
            Some(tree) => tree
                .partition_expansion()
                .into_iter()
                .map(PhysId::Part)
                .collect(),
        })
    }

    /// Total row count of a logical table. For replicated tables this is
    /// the logical count (one copy), not the stored count.
    pub fn row_count(&self, table: TableOid) -> Result<u64> {
        let desc = self.catalog.table(table)?;
        let phys = self.physical_tables(table)?;
        let g = self.inner.read();
        let mut n = 0u64;
        for p in phys {
            for seg in 0..self.num_segments as u32 {
                if let Some(b) = g.data.get(&(p, SegmentId(seg))) {
                    n += b.len() as u64;
                }
            }
        }
        if matches!(desc.distribution, Distribution::Replicated) {
            n /= self.num_segments as u64;
        }
        Ok(n)
    }

    /// Replace the contents of one physical table on one segment (used by
    /// DML execution).
    pub fn overwrite(&self, phys: PhysId, segment: SegmentId, rows: Vec<Row>) {
        let mut g = self.inner.write();
        match rows.first() {
            None => {
                g.data.remove(&(phys, segment));
            }
            Some(first) => {
                let width = first.len();
                g.data
                    .insert((phys, segment), RowBlock::from_rows(&rows, width));
            }
        }
    }

    /// Delete all rows of a logical table.
    pub fn truncate(&self, table: TableOid) -> Result<()> {
        let phys: HashSet<PhysId> = self.physical_tables(table)?.into_iter().collect();
        let mut g = self.inner.write();
        g.data.retain(|(p, _), _| !phys.contains(p));
        Ok(())
    }

    /// Delete the rows of specific leaf partitions on every segment —
    /// the storage side of `ALTER TABLE … DROP PARTITION`, called after
    /// the catalog no longer knows the leaves.
    pub fn drop_parts(&self, parts: &[PartOid]) {
        let phys: HashSet<PhysId> = parts.iter().map(|&p| PhysId::Part(p)).collect();
        let mut g = self.inner.write();
        g.data.retain(|(p, _), _| !phys.contains(p));
    }

    /// Compute and install [`TableStats`] for a table: row count, per-leaf
    /// partition row counts and, for every column, NDV / null fraction /
    /// min / max plus an equi-depth histogram (integer-ordered columns) —
    /// all in one streaming pass over the resident blocks, no row
    /// materialization and no data sort (the histogram builder only ever
    /// sorts its bounded reservoir sample).
    pub fn analyze(&self, table: TableOid) -> Result<TableStats> {
        let desc = self.catalog.table(table)?;
        let phys = self.physical_tables(table)?;
        let ncols = desc.schema.len();
        let mut rows_seen = 0u64;
        let mut part_rows: HashMap<PartOid, u64> = HashMap::new();
        let mut distinct: Vec<HashSet<Datum>> = vec![HashSet::new(); ncols];
        let mut nulls = vec![0u64; ncols];
        let mut mins: Vec<Option<Datum>> = vec![None; ncols];
        let mut maxs: Vec<Option<Datum>> = vec![None; ncols];
        let mut hists: Vec<HistogramBuilder> = vec![HistogramBuilder::new(); ncols];
        let replicated = matches!(desc.distribution, Distribution::Replicated);
        let g = self.inner.read();
        for p in &phys {
            // For replicated tables, scan one segment's copy only.
            let seg_range: Vec<u32> = if replicated {
                vec![0]
            } else {
                (0..self.num_segments as u32).collect()
            };
            for seg in seg_range {
                let Some(block) = g.data.get(&(*p, SegmentId(seg))) else {
                    continue;
                };
                rows_seen += block.len() as u64;
                if let PhysId::Part(oid) = p {
                    *part_rows.entry(*oid).or_insert(0) += block.len() as u64;
                }
                // Column-at-a-time statistics straight off the resident
                // block — no row materialization.
                for (i, col) in block.columns().iter().enumerate().take(ncols) {
                    for r in 0..block.phys_rows() {
                        let v = col.get(r);
                        if v.is_null() {
                            nulls[i] += 1;
                            continue;
                        }
                        match &mins[i] {
                            Some(m) if &v >= m => {}
                            _ => mins[i] = Some(v.clone()),
                        }
                        match &maxs[i] {
                            Some(m) if &v <= m => {}
                            _ => maxs[i] = Some(v.clone()),
                        }
                        hists[i].add_datum(&v);
                        distinct[i].insert(v);
                    }
                }
            }
        }
        drop(g);
        let mut stats = TableStats::new(rows_seen).with_part_rows(part_rows);
        for (i, hist) in hists.into_iter().enumerate() {
            let mut cs = ColumnStats::new(distinct[i].len() as u64);
            cs.null_frac = if rows_seen == 0 {
                0.0
            } else {
                nulls[i] as f64 / rows_seen as f64
            };
            cs.min = mins[i].clone();
            cs.max = maxs[i].clone();
            cs.histogram = hist.finish();
            stats = stats.with_column(i, cs);
        }
        self.catalog.set_stats(table, stats.clone());
        Ok(stats)
    }

    /// Rewrite every resident block into the `Any` (per-datum)
    /// representation. A benchmarking aid: it reproduces the engine's
    /// pre-validity-bitmap behavior — where one NULL degraded a whole
    /// column — on identical data, so the typed-vs-degraded gap is
    /// measurable without a historical build.
    pub fn degrade_blocks(&self) {
        let mut g = self.inner.write();
        for b in g.data.values_mut() {
            *b = b.degraded();
        }
    }
}

/// Cut one block into morsels of at most `morsel_rows` logical rows,
/// preserving row order. A block no larger than one morsel comes back
/// as a single clone (no selection vector materialized); `morsel_rows`
/// is clamped to at least 1 so a misconfigured zero still terminates.
pub fn block_morsels(b: &RowBlock, morsel_rows: usize) -> Vec<RowBlock> {
    let step = morsel_rows.max(1);
    let len = b.len();
    if len == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(len.div_ceil(step));
    let mut lo = 0;
    while lo < len {
        let hi = (lo + step).min(len);
        out.push(b.slice_rows(lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::range_parts_equal_width;
    use mpp_catalog::TableDesc;
    use mpp_common::{row, Column, DataType, Schema};

    fn setup(parts: Option<u32>, dist: Distribution) -> (Storage, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let oid = cat.allocate_table_oid();
        let partitioning = parts.map(|n| {
            let first = cat.allocate_part_oids(n);
            range_parts_equal_width(
                1,
                Datum::Int32(0),
                Datum::Int32(n as i32 * 10),
                n as usize,
                first,
            )
            .unwrap()
        });
        cat.register(TableDesc {
            oid,
            name: "r".into(),
            schema,
            distribution: dist,
            partitioning,
        })
        .unwrap();
        (Storage::new(cat, 4), oid)
    }

    #[test]
    fn insert_routes_to_partitions() {
        let (st, t) = setup(Some(4), Distribution::Hashed(vec![0]));
        st.insert(t, (0..40).map(|i| row![i, i])).unwrap();
        assert_eq!(st.row_count(t).unwrap(), 40);
        let phys = st.physical_tables(t).unwrap();
        assert_eq!(phys.len(), 4);
        // Each leaf holds exactly its decade.
        for (k, p) in phys.iter().enumerate() {
            let rows = st.scan_all_segments(*p);
            assert_eq!(rows.len(), 10, "leaf {k}");
            for r in rows {
                let b = r.get(1).unwrap().as_i64().unwrap();
                assert!(b >= k as i64 * 10 && b < (k as i64 + 1) * 10);
            }
        }
    }

    #[test]
    fn out_of_range_key_is_rejected() {
        let (st, t) = setup(Some(4), Distribution::Hashed(vec![0]));
        let err = st.insert(t, vec![row![1, 999]]).unwrap_err();
        assert_eq!(err.kind(), "no_matching_partition");
        // Nothing partially inserted.
        assert_eq!(st.row_count(t).unwrap(), 0);
    }

    #[test]
    fn hash_distribution_spreads_and_is_stable() {
        let (st, t) = setup(None, Distribution::Hashed(vec![0]));
        st.insert(t, (0..1000).map(|i| row![i, 0])).unwrap();
        let mut per_seg = Vec::new();
        for seg in st.segments() {
            per_seg.push(st.scan(PhysId::Table(t), seg).len());
        }
        assert_eq!(per_seg.iter().sum::<usize>(), 1000);
        // All segments get a reasonable share.
        for &n in &per_seg {
            assert!(n > 150, "skewed distribution: {per_seg:?}");
        }
        // Same key → same segment.
        let (st2, t2) = setup(None, Distribution::Hashed(vec![0]));
        st2.insert(t2, vec![row![42, 1]]).unwrap();
        st2.insert(t2, vec![row![42, 2]]).unwrap();
        let seg_with_rows: Vec<usize> = st2
            .segments()
            .map(|s| st2.scan(PhysId::Table(t2), s).len())
            .collect();
        assert_eq!(seg_with_rows.iter().filter(|&&n| n > 0).count(), 1);
    }

    #[test]
    fn morsels_cover_a_segment_in_row_order() {
        let (st, t) = setup(None, Distribution::Singleton);
        st.insert(t, (0..25).map(|i| row![i, i * 2])).unwrap();
        // 25 rows at 7 rows/morsel: 7+7+7+4, in row order, no overlap.
        let morsels = st.scan_block_morsels(PhysId::Table(t), SegmentId(0), 7);
        assert_eq!(
            morsels.iter().map(RowBlock::len).collect::<Vec<_>>(),
            [7, 7, 7, 4]
        );
        let rows: Vec<Row> = morsels.iter().flat_map(RowBlock::to_rows).collect();
        assert_eq!(rows, st.scan(PhysId::Table(t), SegmentId(0)));
        // A morsel at least as large as the block is the block itself.
        let whole = st.scan_block_morsels(PhysId::Table(t), SegmentId(0), 100);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), 25);
        // morsel_rows == 0 is clamped, not an infinite loop.
        let ones = st.scan_block_morsels(PhysId::Table(t), SegmentId(0), 0);
        assert_eq!(ones.len(), 25);
        // An empty segment yields no morsels.
        assert!(st
            .scan_block_morsels(PhysId::Table(t), SegmentId(1), 7)
            .is_empty());
    }

    #[test]
    fn replicated_tables_copy_everywhere() {
        let (st, t) = setup(None, Distribution::Replicated);
        st.insert(t, vec![row![1, 1], row![2, 2]]).unwrap();
        for seg in st.segments() {
            assert_eq!(st.scan(PhysId::Table(t), seg).len(), 2);
        }
        // Logical count is one copy's worth.
        assert_eq!(st.row_count(t).unwrap(), 2);
    }

    #[test]
    fn singleton_tables_live_on_segment_zero() {
        let (st, t) = setup(None, Distribution::Singleton);
        st.insert(t, vec![row![1, 1]]).unwrap();
        assert_eq!(st.scan(PhysId::Table(t), SegmentId(0)).len(), 1);
        assert_eq!(st.scan(PhysId::Table(t), SegmentId(1)).len(), 0);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (st, t) = setup(None, Distribution::Singleton);
        assert!(st.insert(t, vec![row![1]]).is_err());
    }

    #[test]
    fn analyze_computes_stats() {
        let (st, t) = setup(Some(4), Distribution::Hashed(vec![0]));
        let rows = (0..40).map(|i| {
            if i % 4 == 0 {
                Row::new(vec![Datum::Null, Datum::Int32(i)])
            } else {
                row![i % 5, i]
            }
        });
        st.insert(t, rows).unwrap();
        let stats = st.analyze(t).unwrap();
        assert_eq!(stats.row_count, 40);
        let a = &stats.columns[&0];
        assert_eq!(a.ndv, 5); // i%5 over non-multiples-of-4 i in 0..40: {0,1,2,3,4}
        assert!((a.null_frac - 0.25).abs() < 1e-9);
        let b = &stats.columns[&1];
        assert_eq!(b.ndv, 40);
        assert_eq!(b.min, Some(Datum::Int32(0)));
        assert_eq!(b.max, Some(Datum::Int32(39)));
        // Stats are installed in the catalog.
        assert_eq!(st.catalog().stats(t).row_count, 40);
    }

    #[test]
    fn analyze_builds_histogram_and_part_rows() {
        let (st, t) = setup(Some(4), Distribution::Hashed(vec![0]));
        // Skew: partition p0 gets 31 rows (b in 0..10 cycled), the rest 3 each.
        let rows = (0..40).map(|i| {
            let b = if i < 31 { i % 10 } else { 10 + (i - 31) * 3 };
            row![i, b]
        });
        st.insert(t, rows).unwrap();
        let stats = st.analyze(t).unwrap();
        assert_eq!(stats.row_count, 40);
        // Per-partition counts reflect the skew.
        let leaves = st
            .catalog()
            .table(t)
            .unwrap()
            .part_tree()
            .unwrap()
            .partition_expansion();
        assert_eq!(stats.part_rows[&leaves[0]], 31);
        let total: u64 = stats.part_rows.values().sum();
        assert_eq!(total, 40);
        // Column b carries a histogram covering its full value range.
        let h = stats.columns[&1].histogram.as_ref().unwrap();
        assert_eq!(h.total, 40);
        assert_eq!(h.le_frac(39), 1.0);
        // Most values are < 10: the histogram sees the skew.
        assert!(h.le_frac(9) > 0.6);
    }

    #[test]
    fn insert_refreshes_coarse_row_counts() {
        let (st, t) = setup(Some(4), Distribution::Hashed(vec![0]));
        st.insert(t, (0..12).map(|i| row![i, i % 40])).unwrap();
        let stats = st.catalog().stats(t);
        assert_eq!(stats.row_count, 12, "insert must refresh the row count");
        let sv = st.catalog().stats_version();
        st.insert(t, vec![row![100, 5]]).unwrap();
        assert_eq!(st.catalog().stats(t).row_count, 13);
        assert_eq!(
            st.catalog().stats_version(),
            sv,
            "coarse refresh must not bump the stats version"
        );
    }

    #[test]
    fn analyze_replicated_counts_one_copy() {
        let (st, t) = setup(None, Distribution::Replicated);
        st.insert(t, vec![row![1, 1], row![2, 2]]).unwrap();
        let stats = st.analyze(t).unwrap();
        assert_eq!(stats.row_count, 2);
    }

    #[test]
    fn truncate_clears_all_parts() {
        let (st, t) = setup(Some(4), Distribution::Hashed(vec![0]));
        st.insert(t, (0..40).map(|i| row![i, i])).unwrap();
        st.truncate(t).unwrap();
        assert_eq!(st.row_count(t).unwrap(), 0);
    }

    #[test]
    fn overwrite_replaces_segment_contents() {
        let (st, t) = setup(None, Distribution::Singleton);
        st.insert(t, vec![row![1, 1]]).unwrap();
        st.overwrite(PhysId::Table(t), SegmentId(0), vec![row![9, 9], row![8, 8]]);
        assert_eq!(st.row_count(t).unwrap(), 2);
    }
}
