//! # mpp-storage
//!
//! The in-memory MPP storage engine. It mirrors how GPDB lays out
//! partitioned tables (paper §3.2):
//!
//! * every **leaf partition is a separate physical table**, identified by
//!   its [`mpp_common::PartOid`]; plain tables are a single physical table
//!   under their [`mpp_common::TableOid`];
//! * rows are **distributed across segments** (hash / replicated /
//!   singleton) *orthogonally* to partitioning — a partitioned table is
//!   partitioned within each segment;
//! * inserts route tuples with the partitioning function `f_T`
//!   ([`mpp_catalog::PartTree::route`]); a tuple that maps to `⊥` is
//!   rejected, like a violated check constraint.
//!
//! [`Storage::analyze`] computes [`mpp_catalog::TableStats`] the optimizer
//! uses for costing.

pub mod engine;

pub use engine::{block_morsels, PhysId, Storage};
