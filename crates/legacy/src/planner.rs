//! The legacy planner implementation.

use mpp_catalog::{Catalog, Distribution};
use mpp_common::{Result, TableOid};
use mpp_core::optimizer::normalize_basic;
use mpp_expr::analysis::{derive_interval_set, DerivedSet};
use mpp_expr::{collect_columns, split_conjuncts, ColRef, Expr};
use mpp_plan::{JoinType, LogicalPlan, MotionKind, PhysicalPlan};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};

/// Output distribution tracking (a light version of the Orca pipeline's).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dist {
    Hashed,
    Replicated,
    Singleton,
}

/// The PostgreSQL-inheritance-style planner.
pub struct LegacyPlanner {
    catalog: Catalog,
    /// OID-gate parameter numbering; monotonic (never reset) so
    /// concurrent `optimize` calls hand out disjoint parameter slots.
    next_param: AtomicU32,
}

struct Built {
    plan: PhysicalPlan,
    dist: Dist,
}

impl LegacyPlanner {
    pub fn new(catalog: Catalog) -> LegacyPlanner {
        LegacyPlanner {
            catalog,
            next_param: AtomicU32::new(1),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Plan a query the way the legacy planner does: partitioned scans
    /// expand into explicit per-partition plans.
    pub fn optimize(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let normalized = normalize_basic(logical.clone());
        let built = self.build(&normalized)?;
        if normalized.is_dml() || built.dist == Dist::Singleton {
            Ok(built.plan)
        } else {
            Ok(PhysicalPlan::Motion {
                kind: if built.dist == Dist::Replicated {
                    MotionKind::GatherOne
                } else {
                    MotionKind::Gather
                },
                child: Box::new(built.plan),
            })
        }
    }

    fn fresh_param(&self) -> u32 {
        self.next_param.fetch_add(1, Ordering::Relaxed)
    }

    /// Expand a partitioned Get into per-partition scans, statically
    /// eliminating with `pred` when provided (constants only — parameter
    /// values are unknown at plan time).
    fn expand_partitioned_scan(
        &self,
        table: TableOid,
        output: &[ColRef],
        pred: Option<&Expr>,
    ) -> Result<PhysicalPlan> {
        let tree = self.catalog.part_tree(table)?;
        let keys: Vec<ColRef> = tree
            .key_indices()
            .iter()
            .map(|&i| output[i].clone())
            .collect();
        let selected = match pred {
            Some(pred) => {
                let derived: Vec<DerivedSet> = keys
                    .iter()
                    .map(|key| derive_interval_set(pred, key, None))
                    .collect();
                tree.select_partitions(&derived)?
            }
            None => tree.partition_expansion(),
        };
        let children: Vec<PhysicalPlan> = selected
            .iter()
            .map(|&oid| {
                let leaf = tree.leaf_by_oid(oid).expect("selected leaf exists");
                PhysicalPlan::PartScan {
                    table,
                    part: oid,
                    part_name: leaf.name.clone(),
                    output: output.to_vec(),
                    filter: pred.cloned(),
                    gate: None,
                }
            })
            .collect();
        Ok(PhysicalPlan::Append {
            output: output.to_vec(),
            children,
        })
    }

    fn natural_dist(&self, table: TableOid) -> Dist {
        match self.catalog.table(table).map(|d| d.distribution.clone()) {
            Ok(Distribution::Hashed(_)) => Dist::Hashed,
            Ok(Distribution::Replicated) => Dist::Replicated,
            _ => Dist::Singleton,
        }
    }

    fn build(&self, plan: &LogicalPlan) -> Result<Built> {
        match plan {
            LogicalPlan::Get {
                table,
                table_name,
                output,
            } => {
                let desc = self.catalog.table(*table)?;
                let plan = if desc.is_partitioned() {
                    self.expand_partitioned_scan(*table, output, None)?
                } else {
                    PhysicalPlan::TableScan {
                        table: *table,
                        table_name: table_name.clone(),
                        output: output.clone(),
                        filter: None,
                    }
                };
                Ok(Built {
                    plan,
                    dist: self.natural_dist(*table),
                })
            }

            LogicalPlan::Select { pred, child } => {
                // Static partition elimination: a filter directly over a
                // partitioned Get prunes the Append list at plan time.
                if let LogicalPlan::Get { table, output, .. } = child.as_ref() {
                    if self.catalog.table(*table)?.is_partitioned() {
                        return Ok(Built {
                            plan: self.expand_partitioned_scan(*table, output, Some(pred))?,
                            dist: self.natural_dist(*table),
                        });
                    }
                }
                let c = self.build(child)?;
                Ok(Built {
                    plan: PhysicalPlan::Filter {
                        pred: pred.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: c.dist,
                })
            }

            LogicalPlan::Project {
                exprs,
                output,
                child,
            } => {
                let c = self.build(child)?;
                Ok(Built {
                    plan: PhysicalPlan::Project {
                        exprs: exprs.clone(),
                        output: output.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: c.dist,
                })
            }

            LogicalPlan::Join {
                join_type,
                pred,
                left,
                right,
            } => self.build_join(*join_type, pred, left, right),

            LogicalPlan::Agg {
                group_by,
                aggs,
                output,
                child,
            } => {
                let c = self.build(child)?;
                let (input, dist) = if group_by.is_empty() {
                    let gathered = match c.dist {
                        Dist::Singleton => c.plan,
                        Dist::Replicated => PhysicalPlan::Motion {
                            kind: MotionKind::GatherOne,
                            child: Box::new(c.plan),
                        },
                        Dist::Hashed => PhysicalPlan::Motion {
                            kind: MotionKind::Gather,
                            child: Box::new(c.plan),
                        },
                    };
                    (gathered, Dist::Singleton)
                } else {
                    let moved = match c.dist {
                        Dist::Singleton => c.plan,
                        _ => PhysicalPlan::Motion {
                            kind: MotionKind::Redistribute(group_by.clone()),
                            child: Box::new(c.plan),
                        },
                    };
                    (
                        moved,
                        if matches!(c.dist, Dist::Singleton) {
                            Dist::Singleton
                        } else {
                            Dist::Hashed
                        },
                    )
                };
                Ok(Built {
                    plan: PhysicalPlan::HashAgg {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                        output: output.clone(),
                        child: Box::new(input),
                    },
                    dist,
                })
            }

            LogicalPlan::Values { rows, output } => Ok(Built {
                plan: PhysicalPlan::Values {
                    rows: rows.clone(),
                    output: output.clone(),
                },
                dist: Dist::Singleton,
            }),

            LogicalPlan::Limit { n, child } => {
                let c = self.build(child)?;
                let gathered = match c.dist {
                    Dist::Singleton => c.plan,
                    Dist::Replicated => PhysicalPlan::Motion {
                        kind: MotionKind::GatherOne,
                        child: Box::new(c.plan),
                    },
                    Dist::Hashed => PhysicalPlan::Motion {
                        kind: MotionKind::Gather,
                        child: Box::new(c.plan),
                    },
                };
                Ok(Built {
                    plan: PhysicalPlan::Limit {
                        n: *n,
                        child: Box::new(gathered),
                    },
                    dist: Dist::Singleton,
                })
            }

            LogicalPlan::Sort { keys, child } => {
                let c = self.build(child)?;
                let gathered = match c.dist {
                    Dist::Singleton => c.plan,
                    Dist::Replicated => PhysicalPlan::Motion {
                        kind: MotionKind::GatherOne,
                        child: Box::new(c.plan),
                    },
                    Dist::Hashed => PhysicalPlan::Motion {
                        kind: MotionKind::Gather,
                        child: Box::new(c.plan),
                    },
                };
                Ok(Built {
                    plan: PhysicalPlan::Sort {
                        keys: keys.clone(),
                        child: Box::new(gathered),
                    },
                    dist: Dist::Singleton,
                })
            }

            LogicalPlan::Update {
                table,
                target_cols,
                assignments,
                child,
            } => Ok(Built {
                plan: PhysicalPlan::Update {
                    table: *table,
                    target_cols: target_cols.clone(),
                    assignments: assignments.clone(),
                    child: Box::new(self.build_dml_child(child, *table)?),
                },
                dist: Dist::Singleton,
            }),
            LogicalPlan::Delete {
                table,
                target_cols,
                child,
            } => Ok(Built {
                plan: PhysicalPlan::Delete {
                    table: *table,
                    target_cols: target_cols.clone(),
                    child: Box::new(self.build_dml_child(child, *table)?),
                },
                dist: Dist::Singleton,
            }),
            LogicalPlan::Insert { table, child } => Ok(Built {
                plan: PhysicalPlan::Insert {
                    table: *table,
                    child: Box::new(self.build(child)?.plan),
                },
                dist: Dist::Singleton,
            }),
        }
    }

    /// Join implementation. The planner broadcasts the inner (right) side;
    /// for the *direct* pattern — inner side is a partitioned table scan
    /// whose partition key is equi-joined — it adds run-time gating: an
    /// init plan evaluates the outer side, maps join values through the
    /// partitioning function, and stores the qualifying OIDs in a
    /// parameter each listed PartScan tests (the paper's §4.4.2
    /// description of Planner dynamic elimination).
    fn build_join(
        &self,
        join_type: JoinType,
        pred: &Expr,
        left: &LogicalPlan,
        right: &LogicalPlan,
    ) -> Result<Built> {
        let l = self.build(left)?;
        let r = self.build(right)?;
        let (left_keys, right_keys, residual) =
            split_equi_keys(pred, &left.output_cols(), &right.output_cols());

        if left_keys.is_empty() {
            let r_plan = match r.dist {
                Dist::Replicated => r.plan,
                _ => PhysicalPlan::Motion {
                    kind: MotionKind::Broadcast,
                    child: Box::new(r.plan),
                },
            };
            return Ok(Built {
                plan: PhysicalPlan::NLJoin {
                    join_type,
                    pred: Some(pred.clone()),
                    left: Box::new(l.plan),
                    right: Box::new(r_plan),
                },
                dist: l.dist,
            });
        }

        // Direct dynamic-elimination pattern?
        let gating = self.try_gate_inner_side(left, right, &left_keys, &right_keys, &r.plan)?;
        let (r_plan, init) = match gating {
            Some((gated, init)) => (gated, Some(init)),
            None => (r.plan, None),
        };
        let r_plan = match r.dist {
            Dist::Replicated => r_plan,
            _ => PhysicalPlan::Motion {
                kind: MotionKind::Broadcast,
                child: Box::new(r_plan),
            },
        };
        let join = PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left: Box::new(l.plan),
            right: Box::new(r_plan),
        };
        let plan = match init {
            None => join,
            Some(init) => PhysicalPlan::Sequence {
                children: vec![init, join],
            },
        };
        Ok(Built { plan, dist: l.dist })
    }

    /// If the right side is a plain per-partition `Append` of a
    /// single-level partitioned table whose key is one of the equi-join
    /// keys, gate every listed PartScan on a fresh OID-set parameter and
    /// return (gated plan, init plan). Anything more complex — semi-join
    /// inputs, multi-level partitioning, joins of joins — is beyond the
    /// legacy planner and scans everything.
    fn try_gate_inner_side(
        &self,
        left_logical: &LogicalPlan,
        right_logical: &LogicalPlan,
        left_keys: &[Expr],
        right_keys: &[Expr],
        right_plan: &PhysicalPlan,
    ) -> Result<Option<(PhysicalPlan, PhysicalPlan)>> {
        // Right side must be exactly Get or Select(Get) of a partitioned
        // table.
        let (table, output) = match right_logical {
            LogicalPlan::Get { table, output, .. } => (*table, output.clone()),
            LogicalPlan::Select { child, .. } => match child.as_ref() {
                LogicalPlan::Get { table, output, .. } => (*table, output.clone()),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        let desc = self.catalog.table(table)?;
        let Some(tree) = desc.partitioning.as_ref() else {
            return Ok(None);
        };
        if tree.num_levels() != 1 {
            return Ok(None);
        }
        let key_col = output[tree.key_indices()[0]].clone();
        // Which equi pair targets the partition key?
        let Some(pair_idx) = right_keys
            .iter()
            .position(|rk| matches!(rk, Expr::Col(c) if *c == key_col))
        else {
            return Ok(None);
        };
        let outer_key = left_keys[pair_idx].clone();

        // Gate the PartScans.
        let param = self.fresh_param();
        let gated = gate_append(right_plan.clone(), param);

        // The init plan re-evaluates the join's outer side as a subplan —
        // the classic planner approach: the OIDs are only known after the
        // outer side runs, and the subplan pays for that with a second
        // execution of the outer plan.
        let init = PhysicalPlan::InitPlanOids {
            param,
            table,
            key: outer_key,
            child: Box::new(self.build(left_logical)?.plan),
        };
        Ok(Some((gated, init)))
    }
}

/// Add a gate to every PartScan in an Append subtree.
fn gate_append(plan: PhysicalPlan, param: u32) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Append { output, children } => PhysicalPlan::Append {
            output,
            children: children
                .into_iter()
                .map(|c| gate_append(c, param))
                .collect(),
        },
        PhysicalPlan::PartScan {
            table,
            part,
            part_name,
            output,
            filter,
            ..
        } => PhysicalPlan::PartScan {
            table,
            part,
            part_name,
            output,
            filter,
            gate: Some(param),
        },
        PhysicalPlan::Filter { pred, child } => PhysicalPlan::Filter {
            pred,
            child: Box::new(gate_append(*child, param)),
        },
        other => other,
    }
}

/// Split a join predicate into equi-key lists and a residual.
fn split_equi_keys(
    pred: &Expr,
    left_cols: &[ColRef],
    right_cols: &[ColRef],
) -> (Vec<Expr>, Vec<Expr>, Option<Expr>) {
    let lset: BTreeSet<ColRef> = left_cols.iter().cloned().collect();
    let rset: BTreeSet<ColRef> = right_cols.iter().cloned().collect();
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    let mut residual = Vec::new();
    for conj in split_conjuncts(pred) {
        if let Expr::Cmp {
            op: mpp_expr::CmpOp::Eq,
            left: a,
            right: b,
        } = &conj
        {
            let ac = collect_columns(a);
            let bc = collect_columns(b);
            if !ac.is_empty() && !bc.is_empty() {
                if ac.iter().all(|c| lset.contains(c)) && bc.iter().all(|c| rset.contains(c)) {
                    lk.push(a.as_ref().clone());
                    rk.push(b.as_ref().clone());
                    continue;
                }
                if bc.iter().all(|c| lset.contains(c)) && ac.iter().all(|c| rset.contains(c)) {
                    lk.push(b.as_ref().clone());
                    rk.push(a.as_ref().clone());
                    continue;
                }
            }
        }
        residual.push(conj);
    }
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::and(residual))
    };
    (lk, rk, residual)
}

impl LegacyPlanner {
    /// DML child planning: expand the target table (and a directly joined
    /// partitioned source) into explicit per-partition combinations — the
    /// quadratic growth of Figure 18(c).
    fn build_dml_child(&self, child: &LogicalPlan, target: TableOid) -> Result<PhysicalPlan> {
        match child {
            // UPDATE … FROM source: join of the target with a source.
            LogicalPlan::Join {
                join_type,
                pred,
                left,
                right,
            } if left_is_target(left, target) => {
                let target_parts = self.dml_target_parts(left)?;
                let (left_keys, right_keys, residual) =
                    split_equi_keys(pred, &left.output_cols(), &right.output_cols());
                // Source side: per-partition list when partitioned.
                let source_parts: Vec<PhysicalPlan> = match self.build(right)?.plan {
                    PhysicalPlan::Append { children, .. } => children,
                    other => vec![other],
                };
                let mut combos = Vec::new();
                for tp in &target_parts {
                    for sp in &source_parts {
                        let joined = if left_keys.is_empty() {
                            PhysicalPlan::NLJoin {
                                join_type: *join_type,
                                pred: Some(pred.clone()),
                                left: Box::new(tp.clone()),
                                right: Box::new(PhysicalPlan::Motion {
                                    kind: MotionKind::Broadcast,
                                    child: Box::new(sp.clone()),
                                }),
                            }
                        } else {
                            PhysicalPlan::HashJoin {
                                join_type: *join_type,
                                left_keys: left_keys.clone(),
                                right_keys: right_keys.clone(),
                                residual: residual.clone(),
                                left: Box::new(tp.clone()),
                                right: Box::new(PhysicalPlan::Motion {
                                    kind: MotionKind::Broadcast,
                                    child: Box::new(sp.clone()),
                                }),
                            }
                        };
                        combos.push(joined);
                    }
                }
                let mut output = child.output_cols();
                if output.is_empty() {
                    output = left.output_cols();
                }
                Ok(PhysicalPlan::Append {
                    output,
                    children: combos,
                })
            }
            other => Ok(self.build(other)?.plan),
        }
    }

    /// Per-partition plans for the DML target side (Get or Select(Get)).
    fn dml_target_parts(&self, side: &LogicalPlan) -> Result<Vec<PhysicalPlan>> {
        let built = self.build(side)?.plan;
        Ok(match built {
            PhysicalPlan::Append { children, .. } => children,
            other => vec![other],
        })
    }
}

fn left_is_target(side: &LogicalPlan, target: TableOid) -> bool {
    match side {
        LogicalPlan::Get { table, .. } => *table == target,
        LogicalPlan::Select { child, .. } => left_is_target(child, target),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::range_parts_equal_width;
    use mpp_catalog::TableDesc;
    use mpp_common::{Column, DataType, Datum, Schema};
    use mpp_plan::{plan_node_count, plan_size_bytes};

    fn catalog(r_parts: u32, s_parts: Option<u32>) -> (Catalog, TableOid, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let r = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(r_parts);
        cat.register(TableDesc {
            oid: r,
            name: "r".into(),
            schema: schema.clone(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(
                    1,
                    Datum::Int32(0),
                    Datum::Int32(r_parts as i32 * 10),
                    r_parts as usize,
                    first,
                )
                .unwrap(),
            ),
        })
        .unwrap();
        let s = cat.allocate_table_oid();
        let partitioning = s_parts.map(|n| {
            let first = cat.allocate_part_oids(n);
            range_parts_equal_width(
                1,
                Datum::Int32(0),
                Datum::Int32(n as i32 * 10),
                n as usize,
                first,
            )
            .unwrap()
        });
        cat.register(TableDesc {
            oid: s,
            name: "s".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning,
        })
        .unwrap();
        (cat, r, s)
    }

    fn get(cat: &Catalog, oid: TableOid, ids: [u32; 2]) -> LogicalPlan {
        let desc = cat.table(oid).unwrap();
        LogicalPlan::Get {
            table: oid,
            table_name: desc.name.clone(),
            output: vec![ColRef::new(ids[0], "a"), ColRef::new(ids[1], "b")],
        }
    }

    #[test]
    fn full_scan_lists_every_partition() {
        let (cat, r, _) = catalog(20, None);
        let p = LegacyPlanner::new(cat.clone());
        let plan = p.optimize(&get(&cat, r, [1, 2])).unwrap();
        assert_eq!(plan.count_op("PartScan"), 20);
        assert_eq!(plan.count_op("DynamicScan"), 0);
    }

    #[test]
    fn static_elimination_prunes_the_list() {
        let (cat, r, _) = catalog(20, None);
        let p = LegacyPlanner::new(cat.clone());
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(ColRef::new(2, "b")), Expr::lit(50i32)),
            child: Box::new(get(&cat, r, [1, 2])),
        };
        let plan = p.optimize(&logical).unwrap();
        // b < 50 → 5 of 20 partitions listed.
        assert_eq!(plan.count_op("PartScan"), 5);
    }

    #[test]
    fn parameters_defeat_static_elimination() {
        let (cat, r, _) = catalog(20, None);
        let p = LegacyPlanner::new(cat.clone());
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(ColRef::new(2, "b")), Expr::Param(1)),
            child: Box::new(get(&cat, r, [1, 2])),
        };
        let plan = p.optimize(&logical).unwrap();
        // The parameter value is unknown at plan time: all 20 listed.
        assert_eq!(plan.count_op("PartScan"), 20);
    }

    #[test]
    fn plan_size_grows_linearly_with_selected_parts() {
        // Figure 18(a): Planner plan size ∝ partitions scanned.
        let (cat, r, _) = catalog(400, None);
        let p = LegacyPlanner::new(cat.clone());
        let mut sizes = Vec::new();
        for pct in [25i32, 50, 75, 100] {
            let logical = LogicalPlan::Select {
                pred: Expr::lt(Expr::col(ColRef::new(2, "b")), Expr::lit(pct * 40)),
                child: Box::new(get(&cat, r, [1, 2])),
            };
            let plan = p.optimize(&logical).unwrap();
            sizes.push(plan_size_bytes(&plan));
        }
        assert!(
            sizes[3] > sizes[0] * 3,
            "sizes {sizes:?} should grow ~linearly"
        );
    }

    #[test]
    fn join_on_partition_key_gates_all_parts() {
        // Figure 18(b): dynamic elimination lists all parts with gates.
        let (cat, r, s) = catalog(30, None);
        let p = LegacyPlanner::new(cat.clone());
        let logical = LogicalPlan::Join {
            join_type: JoinType::Inner,
            pred: Expr::eq(
                Expr::col(ColRef::new(4, "b")),
                Expr::col(ColRef::new(2, "b")),
            ),
            left: Box::new(get(&cat, s, [3, 4])),
            right: Box::new(get(&cat, r, [1, 2])),
        };
        let plan = p.optimize(&logical).unwrap();
        assert_eq!(plan.count_op("PartScan"), 30, "all parts listed");
        assert_eq!(plan.count_op("InitPlanOids"), 1);
        let mut gated = 0;
        plan.visit(&mut |n| {
            if let PhysicalPlan::PartScan { gate: Some(_), .. } = n {
                gated += 1;
            }
        });
        assert_eq!(gated, 30, "all listed parts gated");
    }

    #[test]
    fn join_on_non_key_column_scans_everything_ungated() {
        let (cat, r, s) = catalog(10, None);
        let p = LegacyPlanner::new(cat.clone());
        let logical = LogicalPlan::Join {
            join_type: JoinType::Inner,
            pred: Expr::eq(
                Expr::col(ColRef::new(3, "a")),
                Expr::col(ColRef::new(1, "a")),
            ),
            left: Box::new(get(&cat, s, [3, 4])),
            right: Box::new(get(&cat, r, [1, 2])),
        };
        let plan = p.optimize(&logical).unwrap();
        assert_eq!(plan.count_op("InitPlanOids"), 0);
        let mut gated = 0;
        plan.visit(&mut |n| {
            if let PhysicalPlan::PartScan { gate: Some(_), .. } = n {
                gated += 1;
            }
        });
        assert_eq!(gated, 0);
    }

    #[test]
    fn dml_plan_grows_quadratically() {
        // Figure 18(c): update R … from S joins every pair of partitions.
        let sizes: Vec<usize> = [10u32, 20]
            .iter()
            .map(|&n| {
                let (cat, r, s) = catalog(n, Some(n));
                let p = LegacyPlanner::new(cat.clone());
                let logical = LogicalPlan::Update {
                    table: r,
                    target_cols: vec![ColRef::new(1, "a"), ColRef::new(2, "b")],
                    assignments: vec![(1, Expr::col(ColRef::new(4, "b")))],
                    child: Box::new(LogicalPlan::Join {
                        join_type: JoinType::Inner,
                        pred: Expr::eq(
                            Expr::col(ColRef::new(1, "a")),
                            Expr::col(ColRef::new(3, "a")),
                        ),
                        left: Box::new(get(&cat, r, [1, 2])),
                        right: Box::new(get(&cat, s, [3, 4])),
                    }),
                };
                let plan = p.optimize(&logical).unwrap();
                assert_eq!(plan.count_op("HashJoin"), (n * n) as usize);
                plan_node_count(&plan)
            })
            .collect();
        // 2× the partitions → ~4× the nodes.
        assert!(sizes[1] > sizes[0] * 3, "sizes {sizes:?}");
    }

    #[test]
    fn unpartitioned_tables_plan_normally() {
        let (cat, _, s) = catalog(4, None);
        let p = LegacyPlanner::new(cat.clone());
        let plan = p.optimize(&get(&cat, s, [3, 4])).unwrap();
        assert_eq!(plan.count_op("TableScan"), 1);
        assert_eq!(plan.count_op("Append"), 0);
    }
}
