//! # mpp-legacy
//!
//! The baseline **"Planner"** the paper compares against (§4): a
//! PostgreSQL-inheritance-style optimizer for partitioned tables.
//!
//! Where Orca emits a constant-size `PartitionSelector`/`DynamicScan`
//! pair, the legacy planner **expands every partitioned scan into an
//! `Append` of explicit per-partition `PartScan` nodes**:
//!
//! * *static* elimination prunes the `Append` list at plan time using
//!   constant predicates — so plan size grows **linearly with the number
//!   of partitions scanned** (Figure 18(a));
//! * *dynamic* elimination (simple two-table equi-joins on the partition
//!   key only) computes an OID set at run time via an
//!   [`mpp_plan::PhysicalPlan::InitPlanOids`] subplan and gates each
//!   listed partition on it — the rows are skipped but **every partition
//!   stays in the plan**, so plan size grows linearly with the *total*
//!   partition count (Figure 18(b));
//! * DML over joined partitioned tables enumerates **per-partition join
//!   pairs**, so plan size grows **quadratically** (Figure 18(c));
//! * prepared-statement parameters defeat static elimination entirely
//!   (their values are unknown at plan time), and join-induced
//!   elimination through anything more complex than the direct pattern —
//!   semi-joins from `IN` subqueries, multi-join chains, multi-level
//!   partitioning — is not attempted. These are the workload classes
//!   where Orca eliminates partitions and the Planner does not
//!   (Table 3 / Figure 16).

pub mod planner;

pub use planner::LegacyPlanner;
