//! TPC-DS-style star schema and the benchmark workload (paper §4.3).
//!
//! Three dimensions (`date_dim`, `customer_dim`, `item_dim`) and the seven
//! partitioned fact tables the paper's workload references: `store_sales`,
//! `web_sales`, `catalog_sales`, `store_returns`, `web_returns`,
//! `catalog_returns` and `inventory`. Every fact is range-partitioned on
//! its date-id column — the normalized Figure 3 design where static
//! elimination is impossible for date-dimension filters and dynamic
//! elimination is required.

use mpp_catalog::builders::range_parts_equal_width;
use mpp_catalog::{Distribution, TableDesc};
use mpp_common::value::civil_from_days;
use mpp_common::{Column, DataType, Datum, Result, Row, Schema, TableOid};
use mpp_storage::Storage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the generated star schema.
#[derive(Debug, Clone)]
pub struct TpcdsConfig {
    /// Rows per sales fact table (returns get 1/5 of this, inventory 1/2).
    pub fact_rows: usize,
    pub customers: usize,
    pub items: usize,
    /// Days covered by `date_dim` (d_id ∈ [1, days]); two years by default.
    pub days: usize,
    /// Range partitions per fact table on its date-id column.
    pub parts_per_fact: usize,
    pub seed: u64,
}

impl Default for TpcdsConfig {
    fn default() -> TpcdsConfig {
        TpcdsConfig {
            fact_rows: 20_000,
            customers: 500,
            items: 200,
            days: 730,
            parts_per_fact: 24,
            seed: 2014,
        }
    }
}

/// OIDs of the registered schema.
#[derive(Debug, Clone)]
pub struct Tpcds {
    pub date_dim: TableOid,
    pub customer_dim: TableOid,
    pub item_dim: TableOid,
    /// (table name, oid) for the seven partitioned facts.
    pub facts: Vec<(String, TableOid)>,
}

const US_STATES: [&str; 10] = ["CA", "NY", "TX", "WA", "OR", "MA", "IL", "FL", "CO", "GA"];
const CATEGORIES: [&str; 6] = ["Books", "Music", "Sports", "Home", "Toys", "Garden"];

/// Register and populate the full schema.
pub fn setup_tpcds(storage: &Storage, cfg: &TpcdsConfig) -> Result<Tpcds> {
    let cat = storage.catalog();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // date_dim: one row per day starting 2012-01-01; d_id is 1-based.
    let date_dim = {
        let schema = Schema::new(vec![
            Column::new("d_id", DataType::Int32).not_null(),
            Column::new("d_date", DataType::Date).not_null(),
            Column::new("d_year", DataType::Int32).not_null(),
            Column::new("d_month", DataType::Int32).not_null(),
            Column::new("d_day_of_week", DataType::Int32).not_null(),
        ]);
        let oid = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid,
            name: "date_dim".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })?;
        let epoch = mpp_common::value::days_from_civil(2012, 1, 1);
        let rows = (0..cfg.days as i32).map(|i| {
            let day = epoch + i;
            let (y, m, _) = civil_from_days(day);
            Row::new(vec![
                Datum::Int32(i + 1),
                Datum::Date(day),
                Datum::Int32(y),
                Datum::Int32(m as i32),
                Datum::Int32((day.rem_euclid(7)) + 1),
            ])
        });
        storage.insert(oid, rows)?;
        storage.analyze(oid)?;
        oid
    };

    let customer_dim = {
        let schema = Schema::new(vec![
            Column::new("c_id", DataType::Int32).not_null(),
            Column::new("c_state", DataType::Utf8).not_null(),
            Column::new("c_country", DataType::Utf8).not_null(),
        ]);
        let oid = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid,
            name: "customer_dim".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })?;
        let rows = (0..cfg.customers as i32).map(|i| {
            Row::new(vec![
                Datum::Int32(i + 1),
                Datum::str(US_STATES[rng.gen_range(0..US_STATES.len())]),
                Datum::str("US"),
            ])
        });
        storage.insert(oid, rows)?;
        storage.analyze(oid)?;
        oid
    };

    let item_dim = {
        let schema = Schema::new(vec![
            Column::new("i_id", DataType::Int32).not_null(),
            Column::new("i_category", DataType::Utf8).not_null(),
            Column::new("i_price", DataType::Float64).not_null(),
        ]);
        let oid = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid,
            name: "item_dim".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })?;
        let rows = (0..cfg.items as i32).map(|i| {
            Row::new(vec![
                Datum::Int32(i + 1),
                Datum::str(CATEGORIES[rng.gen_range(0..CATEGORIES.len())]),
                Datum::Float64(rng.gen_range(100..10_000) as f64 / 100.0),
            ])
        });
        storage.insert(oid, rows)?;
        storage.analyze(oid)?;
        oid
    };

    // Fact tables: (name, date col prefix, has customer, is_sales).
    let fact_defs: [(&str, &str, bool, FactKind); 7] = [
        ("store_sales", "ss", true, FactKind::Sales),
        ("web_sales", "ws", true, FactKind::Sales),
        ("catalog_sales", "cs", true, FactKind::Sales),
        ("store_returns", "sr", true, FactKind::Returns),
        ("web_returns", "wr", true, FactKind::Returns),
        ("catalog_returns", "cr", true, FactKind::Returns),
        ("inventory", "inv", false, FactKind::Inventory),
    ];
    let mut facts = Vec::new();
    for (name, prefix, has_cust, kind) in fact_defs {
        let oid = setup_fact(storage, cfg, &mut rng, name, prefix, has_cust, kind)?;
        facts.push((name.to_string(), oid));
    }

    Ok(Tpcds {
        date_dim,
        customer_dim,
        item_dim,
        facts,
    })
}

#[derive(Clone, Copy)]
enum FactKind {
    Sales,
    Returns,
    Inventory,
}

#[allow(clippy::too_many_arguments)]
fn setup_fact(
    storage: &Storage,
    cfg: &TpcdsConfig,
    rng: &mut StdRng,
    name: &str,
    prefix: &str,
    has_cust: bool,
    kind: FactKind,
) -> Result<TableOid> {
    let cat = storage.catalog();
    let mut cols = vec![
        Column::new(format!("{prefix}_date_id"), DataType::Int32).not_null(),
        Column::new(format!("{prefix}_item_id"), DataType::Int32).not_null(),
    ];
    if has_cust {
        cols.push(Column::new(format!("{prefix}_cust_id"), DataType::Int32).not_null());
    }
    match kind {
        FactKind::Sales => {
            cols.push(Column::new(format!("{prefix}_qty"), DataType::Int32).not_null());
            cols.push(Column::new(format!("{prefix}_amount"), DataType::Float64).not_null());
        }
        FactKind::Returns => {
            cols.push(Column::new(format!("{prefix}_amount"), DataType::Float64).not_null());
        }
        FactKind::Inventory => {
            cols.push(Column::new(format!("{prefix}_qty"), DataType::Int32).not_null());
        }
    }
    let schema = Schema::new(cols);
    let ncols = schema.len();
    let oid = cat.allocate_table_oid();
    let first = cat.allocate_part_oids(cfg.parts_per_fact as u32);
    cat.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning: Some(range_parts_equal_width(
            0,
            Datum::Int32(1),
            Datum::Int32(cfg.days as i32 + 1),
            cfg.parts_per_fact,
            first,
        )?),
    })?;
    let rows_n = match kind {
        FactKind::Sales => cfg.fact_rows,
        FactKind::Returns => cfg.fact_rows / 5,
        FactKind::Inventory => cfg.fact_rows / 2,
    };
    let mut rows = Vec::with_capacity(rows_n);
    for _ in 0..rows_n {
        let mut vals = vec![
            Datum::Int32(rng.gen_range(1..=cfg.days as i32)),
            Datum::Int32(rng.gen_range(1..=cfg.items as i32)),
        ];
        if has_cust {
            vals.push(Datum::Int32(rng.gen_range(1..=cfg.customers as i32)));
        }
        match kind {
            FactKind::Sales => {
                vals.push(Datum::Int32(rng.gen_range(1..=20)));
                vals.push(Datum::Float64(rng.gen_range(100..50_000) as f64 / 100.0));
            }
            FactKind::Returns => {
                vals.push(Datum::Float64(rng.gen_range(100..20_000) as f64 / 100.0));
            }
            FactKind::Inventory => {
                vals.push(Datum::Int32(rng.gen_range(0..=500)));
            }
        }
        debug_assert_eq!(vals.len(), ncols);
        rows.push(Row::new(vals));
    }
    storage.insert(oid, rows)?;
    storage.analyze(oid)?;
    Ok(oid)
}

/// One workload query.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub name: &'static str,
    pub sql: &'static str,
    /// Prepared-statement parameter values, bound at execution time.
    pub params: Vec<Datum>,
    /// The elimination class we designed the query to exercise (used for
    /// reporting, not by the optimizers).
    pub class: QueryClass,
}

/// Why partition elimination does or does not apply to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Constant predicate on the partition key: both optimizers prune.
    Static,
    /// Simple two-table equi-join on the partition key: both optimizers
    /// prune dynamically.
    SimpleJoin,
    /// Elimination requires reasoning through subqueries or multi-join
    /// chains: only Orca prunes.
    ComplexJoin,
    /// Prepared-statement parameter on the key: only Orca prunes (at run
    /// time).
    Param,
    /// No predicate on the partition key: nobody prunes.
    NoElimination,
}

/// The query workload for Table 3 and Figures 16–17: a mix over all seven
/// partitioned facts covering every elimination class.
pub fn tpcds_workload() -> Vec<WorkloadQuery> {
    fn q(name: &'static str, class: QueryClass, sql: &'static str) -> WorkloadQuery {
        WorkloadQuery {
            name,
            sql,
            params: vec![],
            class,
        }
    }
    vec![
        // ---- static elimination (both optimizers prune) ----
        q(
            "q01_ss_static_range",
            QueryClass::Static,
            "SELECT count(*), sum(ss_amount) FROM store_sales WHERE ss_date_id BETWEEN 100 AND 190",
        ),
        q(
            "q02_ws_static_month",
            QueryClass::Static,
            "SELECT avg(ws_amount) FROM web_sales WHERE ws_date_id BETWEEN 1 AND 31",
        ),
        q(
            "q03_cs_static_half",
            QueryClass::Static,
            "SELECT count(*) FROM catalog_sales WHERE cs_date_id < 365",
        ),
        q(
            "q04_inv_static_range",
            QueryClass::Static,
            "SELECT sum(inv_qty) FROM inventory WHERE inv_date_id BETWEEN 300 AND 400",
        ),
        q(
            "q05_sr_static_in",
            QueryClass::Static,
            "SELECT count(*) FROM store_returns WHERE sr_date_id IN (10, 50, 300, 700)",
        ),
        q(
            "q06_ss_static_or",
            QueryClass::Static,
            "SELECT count(*) FROM store_sales WHERE ss_date_id < 60 OR ss_date_id > 700",
        ),
        // ---- simple join elimination (both prune) ----
        q(
            "q07_ss_simple_join",
            QueryClass::SimpleJoin,
            "SELECT count(*) FROM date_dim, store_sales \
           WHERE d_id = ss_date_id AND d_year = 2012 AND d_month = 3",
        ),
        q(
            "q08_ws_simple_join",
            QueryClass::SimpleJoin,
            "SELECT sum(ws_amount) FROM date_dim, web_sales \
           WHERE d_id = ws_date_id AND d_year = 2013 AND d_month BETWEEN 1 AND 2",
        ),
        q(
            "q09_cr_simple_join",
            QueryClass::SimpleJoin,
            "SELECT count(*) FROM date_dim, catalog_returns \
           WHERE d_id = cr_date_id AND d_year = 2012 AND d_month = 12",
        ),
        q(
            "q10_inv_simple_join",
            QueryClass::SimpleJoin,
            "SELECT sum(inv_qty) FROM date_dim, inventory \
           WHERE d_id = inv_date_id AND d_year = 2013 AND d_month = 7",
        ),
        // ---- complex elimination (only Orca prunes) ----
        q(
            "q11_ss_subquery",
            QueryClass::ComplexJoin,
            "SELECT avg(ss_amount) FROM store_sales WHERE ss_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_year = 2013 AND d_month BETWEEN 10 AND 12)",
        ),
        q(
            "q12_ws_subquery",
            QueryClass::ComplexJoin,
            "SELECT count(*) FROM web_sales WHERE ws_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_year = 2012 AND d_month = 6)",
        ),
        q(
            "q13_cs_subquery",
            QueryClass::ComplexJoin,
            "SELECT sum(cs_amount) FROM catalog_sales WHERE cs_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_day_of_week = 1 AND d_year = 2013 AND d_month = 1)",
        ),
        q(
            "q14_sr_subquery",
            QueryClass::ComplexJoin,
            "SELECT count(*) FROM store_returns WHERE sr_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_year = 2012 AND d_month BETWEEN 1 AND 2)",
        ),
        q(
            "q15_wr_subquery",
            QueryClass::ComplexJoin,
            "SELECT avg(wr_amount) FROM web_returns WHERE wr_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_year = 2013 AND d_month = 11)",
        ),
        q(
            "q16_cr_subquery",
            QueryClass::ComplexJoin,
            "SELECT count(*) FROM catalog_returns WHERE cr_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_year = 2013 AND d_month BETWEEN 5 AND 6)",
        ),
        q(
            "q17_inv_subquery",
            QueryClass::ComplexJoin,
            "SELECT sum(inv_qty) FROM inventory WHERE inv_date_id IN \
           (SELECT d_id FROM date_dim WHERE d_year = 2012 AND d_month = 9)",
        ),
        q(
            "q18_ss_three_way",
            QueryClass::ComplexJoin,
            "SELECT count(*) FROM customer_dim, date_dim, store_sales \
           WHERE c_id = ss_cust_id AND d_id = ss_date_id \
           AND c_state = 'CA' AND d_year = 2013 AND d_month BETWEEN 10 AND 12",
        ),
        q(
            "q19_ws_three_way",
            QueryClass::ComplexJoin,
            "SELECT sum(ws_amount) FROM item_dim, date_dim, web_sales \
           WHERE i_id = ws_item_id AND d_id = ws_date_id \
           AND i_category = 'Books' AND d_year = 2012 AND d_month = 12",
        ),
        // ---- prepared statements (only Orca prunes, at run time) ----
        WorkloadQuery {
            name: "q20_ss_param_eq",
            sql: "SELECT count(*) FROM store_sales WHERE ss_date_id = $1",
            params: vec![Datum::Int32(42)],
            class: QueryClass::Param,
        },
        WorkloadQuery {
            name: "q21_cs_param_range",
            sql: "SELECT sum(cs_amount) FROM catalog_sales \
                  WHERE cs_date_id BETWEEN $1 AND $2",
            params: vec![Datum::Int32(60), Datum::Int32(120)],
            class: QueryClass::Param,
        },
        // ---- no elimination possible (both scan everything) ----
        q(
            "q22_ss_full",
            QueryClass::NoElimination,
            "SELECT sum(ss_amount), count(*) FROM store_sales",
        ),
        q(
            "q23_ws_by_item",
            QueryClass::NoElimination,
            "SELECT count(*) FROM item_dim, web_sales \
           WHERE i_id = ws_item_id AND i_category = 'Music'",
        ),
        q(
            "q24_sr_group",
            QueryClass::NoElimination,
            "SELECT sr_item_id, count(*) FROM store_returns GROUP BY sr_item_id LIMIT 50",
        ),
        q(
            "q25_wr_full",
            QueryClass::NoElimination,
            "SELECT avg(wr_amount) FROM web_returns",
        ),
        q(
            "q26_cs_nonkey_filter",
            QueryClass::NoElimination,
            "SELECT count(*) FROM catalog_sales WHERE cs_qty > 10",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::Catalog;

    fn small() -> TpcdsConfig {
        TpcdsConfig {
            fact_rows: 1000,
            customers: 50,
            items: 20,
            days: 730,
            parts_per_fact: 12,
            seed: 1,
        }
    }

    #[test]
    fn registers_all_tables() {
        let st = Storage::new(Catalog::new(), 4);
        let t = setup_tpcds(&st, &small()).unwrap();
        assert_eq!(t.facts.len(), 7);
        assert_eq!(st.row_count(t.date_dim).unwrap(), 730);
        assert_eq!(st.row_count(t.customer_dim).unwrap(), 50);
        for (name, oid) in &t.facts {
            let desc = st.catalog().table(*oid).unwrap();
            assert_eq!(desc.num_leaves(), 12, "{name}");
            assert!(st.row_count(*oid).unwrap() > 0, "{name}");
        }
        assert_eq!(st.row_count(t.facts[0].1).unwrap(), 1000);
        assert_eq!(st.row_count(t.facts[3].1).unwrap(), 200);
    }

    #[test]
    fn date_dim_spans_two_years() {
        let st = Storage::new(Catalog::new(), 4);
        let t = setup_tpcds(&st, &small()).unwrap();
        let rows = st.scan_all_segments(mpp_storage::PhysId::Table(t.date_dim));
        let years: std::collections::HashSet<i64> = rows
            .iter()
            .map(|r| r.values()[2].as_i64().unwrap())
            .collect();
        assert_eq!(years, [2012i64, 2013].into_iter().collect());
        // d_id 1 is 2012-01-01.
        let first = rows
            .iter()
            .find(|r| r.values()[0] == Datum::Int32(1))
            .unwrap();
        assert_eq!(first.values()[1], Datum::date_ymd(2012, 1, 1));
    }

    #[test]
    fn workload_covers_every_fact_and_class() {
        let w = tpcds_workload();
        assert!(w.len() >= 25);
        for fact in [
            "store_sales",
            "web_sales",
            "catalog_sales",
            "store_returns",
            "web_returns",
            "catalog_returns",
            "inventory",
        ] {
            assert!(
                w.iter().any(|q| q.sql.contains(fact)),
                "no query touches {fact}"
            );
        }
        use QueryClass::*;
        for class in [Static, SimpleJoin, ComplexJoin, Param, NoElimination] {
            assert!(w.iter().any(|q| q.class == class), "missing {class:?}");
        }
        // Names are unique.
        let names: std::collections::HashSet<&str> = w.iter().map(|q| q.name).collect();
        assert_eq!(names.len(), w.len());
    }
}
