//! # mpp-workloads
//!
//! Deterministic (seeded) data generators and query workloads for the
//! paper's experiments:
//!
//! * [`tpch`] — a TPC-H-style `lineitem` table with 7 years of ship
//!   dates, partitionable at the four grains of paper Table 2
//!   (42 / 84 / 169 / 361 partitions) or left unpartitioned;
//! * [`tpcds`] — a TPC-DS-style star schema: `date_dim`,
//!   `customer_dim`, `item_dim` dimensions and the seven partitioned
//!   fact tables the paper's workload touches (`store_sales`,
//!   `web_sales`, `catalog_sales`, `store_returns`, `web_returns`,
//!   `catalog_returns`, `inventory`), plus the query workload used to
//!   reproduce Table 3 and Figures 16–17;
//! * [`synth`] — the synthetic `R(a,b)` / `S(a,b)` pair of §4.4.2 used by
//!   the plan-size experiments (Figure 18).

pub mod synth;
pub mod tpcds;
pub mod tpch;

pub use synth::{setup_nullable, setup_rs, setup_skewed, setup_skewed_default, SynthConfig};
pub use tpcds::{setup_tpcds, tpcds_workload, TpcdsConfig, WorkloadQuery};
pub use tpch::{setup_lineitem, LineitemConfig, TABLE2_GRAINS};
