//! TPC-H-style `lineitem` (paper §4.2, Table 2).

use mpp_catalog::builders::range_parts_equal_width;
use mpp_catalog::{Distribution, TableDesc};
use mpp_common::value::days_from_civil;
use mpp_common::{Column, DataType, Datum, Result, Row, Schema, TableOid};
use mpp_storage::Storage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The partition grains of paper Table 2: 42 two-month, 84 monthly,
/// 169 bi-weekly, 361 weekly partitions over 7 years of data.
pub const TABLE2_GRAINS: [usize; 4] = [42, 84, 169, 361];

/// First ship date: 1992-01-01 (TPC-H's epoch), 7 years of data.
pub fn shipdate_range() -> (i32, i32) {
    (
        days_from_civil(1992, 1, 1),
        days_from_civil(1999, 1, 1), // exclusive
    )
}

/// Configuration for the lineitem generator.
#[derive(Debug, Clone)]
pub struct LineitemConfig {
    pub rows: usize,
    /// `None` → unpartitioned; `Some(n)` → n equal range partitions on
    /// `l_shipdate`.
    pub parts: Option<usize>,
    pub seed: u64,
    /// Table name to register (lets several variants coexist).
    pub name: String,
}

impl Default for LineitemConfig {
    fn default() -> LineitemConfig {
        LineitemConfig {
            rows: 10_000,
            parts: Some(84),
            seed: 42,
            name: "lineitem".into(),
        }
    }
}

/// Register and populate a lineitem table; returns its OID. Stats are
/// analyzed so the optimizer sees real cardinalities.
pub fn setup_lineitem(storage: &Storage, cfg: &LineitemConfig) -> Result<TableOid> {
    let cat = storage.catalog();
    let schema = Schema::new(vec![
        Column::new("l_orderkey", DataType::Int64).not_null(),
        Column::new("l_partkey", DataType::Int32).not_null(),
        Column::new("l_suppkey", DataType::Int32).not_null(),
        Column::new("l_quantity", DataType::Float64),
        Column::new("l_extendedprice", DataType::Float64),
        Column::new("l_discount", DataType::Float64),
        Column::new("l_shipdate", DataType::Date).not_null(),
    ]);
    let (lo, hi) = shipdate_range();
    let oid = cat.allocate_table_oid();
    let partitioning = match cfg.parts {
        None => None,
        Some(n) => {
            let first = cat.allocate_part_oids(n as u32);
            Some(range_parts_equal_width(
                6,
                Datum::Date(lo),
                Datum::Date(hi),
                n,
                first,
            )?)
        }
    };
    cat.register(TableDesc {
        oid,
        name: cfg.name.clone(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning,
    })?;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let span = (hi - lo) as i64;
    let rows = (0..cfg.rows).map(|i| {
        let qty = rng.gen_range(1..=50) as f64;
        let price = (rng.gen_range(90_000..=200_000) as f64) / 100.0;
        Row::new(vec![
            Datum::Int64(i as i64 / 4 + 1),
            Datum::Int32(rng.gen_range(1..=2000)),
            Datum::Int32(rng.gen_range(1..=100)),
            Datum::Float64(qty),
            Datum::Float64(price * qty),
            Datum::Float64((rng.gen_range(0..=10) as f64) / 100.0),
            Datum::Date(lo + rng.gen_range(0..span) as i32),
        ])
    });
    storage.insert(oid, rows)?;
    storage.analyze(oid)?;
    Ok(oid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::Catalog;

    #[test]
    fn generates_each_table2_grain() {
        let cat = Catalog::new();
        let st = Storage::new(cat, 2);
        for (k, &parts) in TABLE2_GRAINS.iter().enumerate() {
            let cfg = LineitemConfig {
                rows: 500,
                parts: Some(parts),
                seed: 1,
                name: format!("lineitem_{parts}"),
            };
            let oid = setup_lineitem(&st, &cfg).unwrap();
            let desc = st.catalog().table(oid).unwrap();
            assert_eq!(desc.num_leaves(), parts, "grain {k}");
            assert_eq!(st.row_count(oid).unwrap(), 500);
        }
    }

    #[test]
    fn unpartitioned_variant() {
        let cat = Catalog::new();
        let st = Storage::new(cat, 2);
        let cfg = LineitemConfig {
            rows: 200,
            parts: None,
            seed: 1,
            name: "lineitem_flat".into(),
        };
        let oid = setup_lineitem(&st, &cfg).unwrap();
        assert!(!st.catalog().table(oid).unwrap().is_partitioned());
        assert_eq!(st.row_count(oid).unwrap(), 200);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mk = |seed| {
            let st = Storage::new(Catalog::new(), 2);
            let cfg = LineitemConfig {
                rows: 100,
                parts: Some(42),
                seed,
                name: "lineitem".into(),
            };
            let oid = setup_lineitem(&st, &cfg).unwrap();
            let mut rows = st
                .physical_tables(oid)
                .unwrap()
                .into_iter()
                .flat_map(|p| st.scan_all_segments(p))
                .collect::<Vec<_>>();
            rows.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
            rows
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn stats_are_analyzed() {
        let st = Storage::new(Catalog::new(), 2);
        let oid = setup_lineitem(&st, &LineitemConfig::default()).unwrap();
        assert_eq!(st.catalog().stats(oid).row_count, 10_000);
    }
}
