//! The synthetic `R(a,b)` / `S(a,b)` schema of paper §4.4.2, partitioned
//! on `R.b` and `S.b` respectively, used by the plan-size experiments.

use mpp_catalog::builders::range_parts_equal_width;
use mpp_catalog::{Distribution, TableDesc};
use mpp_common::{Column, DataType, Datum, Result, Row, Schema, TableOid};
use mpp_storage::Storage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic pair.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    pub r_rows: usize,
    pub s_rows: usize,
    /// Partitions of R on `b` (None = unpartitioned).
    pub r_parts: Option<usize>,
    /// Partitions of S on `b` (None = unpartitioned).
    pub s_parts: Option<usize>,
    /// Domain of `b` is `[0, b_domain)`; `a` is `[0, a_domain)`.
    pub b_domain: i32,
    pub a_domain: i32,
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            r_rows: 10_000,
            s_rows: 1_000,
            r_parts: Some(100),
            s_parts: None,
            b_domain: 1_000,
            a_domain: 1_000,
            seed: 7,
        }
    }
}

/// Register and populate R and S; returns their OIDs.
pub fn setup_rs(storage: &Storage, cfg: &SynthConfig) -> Result<(TableOid, TableOid)> {
    let r = setup_one(storage, "r", cfg.r_rows, cfg.r_parts, cfg, cfg.seed)?;
    let s = setup_one(
        storage,
        "s",
        cfg.s_rows,
        cfg.s_parts,
        cfg,
        cfg.seed ^ 0x5555,
    )?;
    Ok((r, s))
}

/// Register and populate one *skewed* table shaped like R: `hot_pct`
/// percent of the rows take a single hot partition-key value — all of
/// them landing in one leaf partition — while the rest stay uniform
/// over `[0, b_domain)`. `dist_col` picks the hash-distribution column
/// (0 = `a`, 1 = `b`); distributing on `b` keeps a group-by-`b`
/// aggregate co-located, so the whole scan→filter→agg pipeline runs in
/// one slice. Uses `cfg.r_rows`, `cfg.r_parts`, the domains and the
/// seed; returns the table OID and the hot key value.
pub fn setup_skewed(
    storage: &Storage,
    name: &str,
    cfg: &SynthConfig,
    hot_pct: u32,
    dist_col: usize,
) -> Result<(TableOid, i32)> {
    let cat = storage.catalog();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32).not_null(),
        Column::new("b", DataType::Int32).not_null(),
    ]);
    let oid = cat.allocate_table_oid();
    let partitioning = match cfg.r_parts {
        None => None,
        Some(n) => {
            let first = cat.allocate_part_oids(n as u32);
            Some(range_parts_equal_width(
                1,
                Datum::Int32(0),
                Datum::Int32(cfg.b_domain),
                n,
                first,
            )?)
        }
    };
    cat.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: Distribution::Hashed(vec![dist_col]),
        partitioning,
    })?;
    let hot_b = cfg.b_domain / 2;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let data = (0..cfg.r_rows).map(|_| {
        let b = if rng.gen_range(0..100u32) < hot_pct {
            hot_b
        } else {
            rng.gen_range(0..cfg.b_domain)
        };
        Row::new(vec![
            Datum::Int32(rng.gen_range(0..cfg.a_domain)),
            Datum::Int32(b),
        ])
    });
    storage.insert(oid, data)?;
    storage.analyze(oid)?;
    Ok((oid, hot_b))
}

/// Register and populate one range-partitioned table whose explicit
/// range parts cover only `[0, cover)` of the key domain while a
/// DEFAULT partition absorbs the overflow `[cover, b_domain)`:
/// `hot_pct` percent of the rows land in the DEFAULT partition, the
/// rest spread uniformly over the covered parts. This is the
/// adaptive-planning benchmark shape — per-partition row counts
/// dominated by one DEFAULT partition (the classic "overflow catch-all
/// outgrew the planned ranges" pattern) — which SQL DDL cannot express
/// for RANGE partitioning, hence the catalog-level builder. Uses
/// `cfg.r_rows` / `cfg.r_parts` (covered-part count, default 10) /
/// `cfg.a_domain` / `cfg.seed`; the table is ANALYZEd so the optimizer
/// sees the skew.
pub fn setup_skewed_default(
    storage: &Storage,
    name: &str,
    cfg: &SynthConfig,
    hot_pct: u32,
    cover: i32,
) -> Result<TableOid> {
    use mpp_catalog::{PartTree, PartitionLevel, PartitionPiece};
    use mpp_expr::interval::{Interval, IntervalSet};

    let cat = storage.catalog();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32).not_null(),
        Column::new("b", DataType::Int32).not_null(),
    ]);
    let oid = cat.allocate_table_oid();
    let n = cfg.r_parts.unwrap_or(10).max(1);
    let width = (cover as i64 / n as i64).max(1);
    let first = cat.allocate_part_oids(n as u32 + 1);
    let mut pieces: Vec<PartitionPiece> = (0..n as i64)
        .map(|i| {
            PartitionPiece::new(
                format!("p{i}"),
                IntervalSet::interval(Interval::half_open(
                    Datum::Int32((i * width) as i32),
                    Datum::Int32(((i + 1) * width) as i32),
                )),
            )
        })
        .collect();
    pieces.push(PartitionPiece::default_piece("pdefault"));
    let tree = PartTree::new(vec![PartitionLevel::new(1, pieces)?], first)?;
    cat.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning: Some(tree),
    })?;
    let covered = width * n as i64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let data = (0..cfg.r_rows).map(|_| {
        let b = if rng.gen_range(0..100u32) < hot_pct {
            rng.gen_range(covered..cfg.b_domain.max(covered as i32 + 1) as i64) as i32
        } else {
            rng.gen_range(0..covered) as i32
        };
        Row::new(vec![
            Datum::Int32(rng.gen_range(0..cfg.a_domain)),
            Datum::Int32(b),
        ])
    });
    storage.insert(oid, data)?;
    storage.analyze(oid)?;
    Ok(oid)
}

/// Register and populate a table `name(a, b, v)` shaped like R plus a
/// *nullable* value column: `v` is NULL with probability `null_pct`/100,
/// otherwise uniform over `[0, a_domain)`. Partitioning, distribution,
/// and the `a`/`b` columns match [`setup_rs`]'s R, so existing query
/// shapes port directly; the NULL slots keep `v` in its typed
/// representation (validity bitmap), making this the workload for the
/// null-fraction benchmark axis and the nullable equivalence suites.
pub fn setup_nullable(
    storage: &Storage,
    name: &str,
    cfg: &SynthConfig,
    null_pct: u32,
) -> Result<TableOid> {
    let cat = storage.catalog();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32).not_null(),
        Column::new("b", DataType::Int32).not_null(),
        Column::new("v", DataType::Int32),
    ]);
    let oid = cat.allocate_table_oid();
    let partitioning = match cfg.r_parts {
        None => None,
        Some(n) => {
            let first = cat.allocate_part_oids(n as u32);
            Some(range_parts_equal_width(
                1,
                Datum::Int32(0),
                Datum::Int32(cfg.b_domain),
                n,
                first,
            )?)
        }
    };
    cat.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning,
    })?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let data = (0..cfg.r_rows).map(|_| {
        let v = if rng.gen_range(0..100u32) < null_pct {
            Datum::Null
        } else {
            Datum::Int32(rng.gen_range(0..cfg.a_domain))
        };
        Row::new(vec![
            Datum::Int32(rng.gen_range(0..cfg.a_domain)),
            Datum::Int32(rng.gen_range(0..cfg.b_domain)),
            v,
        ])
    });
    storage.insert(oid, data)?;
    storage.analyze(oid)?;
    Ok(oid)
}

fn setup_one(
    storage: &Storage,
    name: &str,
    rows: usize,
    parts: Option<usize>,
    cfg: &SynthConfig,
    seed: u64,
) -> Result<TableOid> {
    let cat = storage.catalog();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32).not_null(),
        Column::new("b", DataType::Int32).not_null(),
    ]);
    let oid = cat.allocate_table_oid();
    let partitioning = match parts {
        None => None,
        Some(n) => {
            let first = cat.allocate_part_oids(n as u32);
            Some(range_parts_equal_width(
                1,
                Datum::Int32(0),
                Datum::Int32(cfg.b_domain),
                n,
                first,
            )?)
        }
    };
    cat.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning,
    })?;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows).map(|_| {
        Row::new(vec![
            Datum::Int32(rng.gen_range(0..cfg.a_domain)),
            Datum::Int32(rng.gen_range(0..cfg.b_domain)),
        ])
    });
    storage.insert(oid, data)?;
    storage.analyze(oid)?;
    Ok(oid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::Catalog;

    #[test]
    fn builds_both_tables() {
        let st = Storage::new(Catalog::new(), 4);
        let (r, s) = setup_rs(&st, &SynthConfig::default()).unwrap();
        assert_eq!(st.row_count(r).unwrap(), 10_000);
        assert_eq!(st.row_count(s).unwrap(), 1_000);
        assert_eq!(st.catalog().table(r).unwrap().num_leaves(), 100);
        assert!(!st.catalog().table(s).unwrap().is_partitioned());
    }

    #[test]
    fn skewed_table_concentrates_one_partition() {
        let st = Storage::new(Catalog::new(), 4);
        let cfg = SynthConfig {
            r_rows: 1000,
            r_parts: Some(10),
            b_domain: 200,
            ..SynthConfig::default()
        };
        let (oid, hot) = setup_skewed(&st, "skew", &cfg, 90, 1).unwrap();
        assert_eq!(hot, 100);
        let counts: Vec<usize> = st
            .physical_tables(oid)
            .unwrap()
            .iter()
            .map(|p| st.scan_all_segments(*p).len())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        // ~90% of rows plus the uniform remainder's share land in the
        // hot value's leaf.
        assert!(*counts.iter().max().unwrap() >= 850, "{counts:?}");
    }

    #[test]
    fn partitioned_s_variant() {
        let st = Storage::new(Catalog::new(), 4);
        let cfg = SynthConfig {
            s_parts: Some(50),
            ..SynthConfig::default()
        };
        let (_, s) = setup_rs(&st, &cfg).unwrap();
        assert_eq!(st.catalog().table(s).unwrap().num_leaves(), 50);
    }
}
