//! The synthetic `R(a,b)` / `S(a,b)` schema of paper §4.4.2, partitioned
//! on `R.b` and `S.b` respectively, used by the plan-size experiments.

use mpp_catalog::builders::range_parts_equal_width;
use mpp_catalog::{Distribution, TableDesc};
use mpp_common::{Column, DataType, Datum, Result, Row, Schema, TableOid};
use mpp_storage::Storage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic pair.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    pub r_rows: usize,
    pub s_rows: usize,
    /// Partitions of R on `b` (None = unpartitioned).
    pub r_parts: Option<usize>,
    /// Partitions of S on `b` (None = unpartitioned).
    pub s_parts: Option<usize>,
    /// Domain of `b` is `[0, b_domain)`; `a` is `[0, a_domain)`.
    pub b_domain: i32,
    pub a_domain: i32,
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            r_rows: 10_000,
            s_rows: 1_000,
            r_parts: Some(100),
            s_parts: None,
            b_domain: 1_000,
            a_domain: 1_000,
            seed: 7,
        }
    }
}

/// Register and populate R and S; returns their OIDs.
pub fn setup_rs(storage: &Storage, cfg: &SynthConfig) -> Result<(TableOid, TableOid)> {
    let r = setup_one(storage, "r", cfg.r_rows, cfg.r_parts, cfg, cfg.seed)?;
    let s = setup_one(
        storage,
        "s",
        cfg.s_rows,
        cfg.s_parts,
        cfg,
        cfg.seed ^ 0x5555,
    )?;
    Ok((r, s))
}

fn setup_one(
    storage: &Storage,
    name: &str,
    rows: usize,
    parts: Option<usize>,
    cfg: &SynthConfig,
    seed: u64,
) -> Result<TableOid> {
    let cat = storage.catalog();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32).not_null(),
        Column::new("b", DataType::Int32).not_null(),
    ]);
    let oid = cat.allocate_table_oid();
    let partitioning = match parts {
        None => None,
        Some(n) => {
            let first = cat.allocate_part_oids(n as u32);
            Some(range_parts_equal_width(
                1,
                Datum::Int32(0),
                Datum::Int32(cfg.b_domain),
                n,
                first,
            )?)
        }
    };
    cat.register(TableDesc {
        oid,
        name: name.into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning,
    })?;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows).map(|_| {
        Row::new(vec![
            Datum::Int32(rng.gen_range(0..cfg.a_domain)),
            Datum::Int32(rng.gen_range(0..cfg.b_domain)),
        ])
    });
    storage.insert(oid, data)?;
    storage.analyze(oid)?;
    Ok(oid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::Catalog;

    #[test]
    fn builds_both_tables() {
        let st = Storage::new(Catalog::new(), 4);
        let (r, s) = setup_rs(&st, &SynthConfig::default()).unwrap();
        assert_eq!(st.row_count(r).unwrap(), 10_000);
        assert_eq!(st.row_count(s).unwrap(), 1_000);
        assert_eq!(st.catalog().table(r).unwrap().num_leaves(), 100);
        assert!(!st.catalog().table(s).unwrap().is_partitioned());
    }

    #[test]
    fn partitioned_s_variant() {
        let st = Storage::new(Catalog::new(), 4);
        let cfg = SynthConfig {
            s_parts: Some(50),
            ..SynthConfig::default()
        };
        let (_, s) = setup_rs(&st, &cfg).unwrap();
        assert_eq!(st.catalog().table(s).unwrap().num_leaves(), 50);
    }
}
