//! The two execution modes, side by side.
//!
//! The same plan runs under the sequential interpreter and the
//! per-segment parallel slice driver; both return the same rows and the
//! same partition-elimination statistics.
//!
//! ```bash
//! cargo run -p mppart --example parallel_execution
//! ```

use mppart::{ExecMode, MppDb};

fn main() -> Result<(), mppart::common::Error> {
    let mut db = MppDb::new(4);
    db.sql(
        "CREATE TABLE orders (o_id bigint, amount double, date date NOT NULL) \
         DISTRIBUTED BY (o_id) \
         PARTITION BY RANGE (date) \
         (START ('2012-01-01') END ('2014-01-01') EVERY (1 MONTH))",
    )?;
    for m in 1..=12 {
        db.sql(&format!(
            "INSERT INTO orders VALUES ({m}, {m}.50, '2013-{m:02}-15')"
        ))?;
    }

    let query = "SELECT count(*) FROM orders \
                 WHERE date BETWEEN '2013-10-01' AND '2013-12-31'";

    db.set_exec_mode(ExecMode::Sequential);
    let seq = db.sql(query)?;
    db.set_exec_mode(ExecMode::Parallel);
    let par = db.sql(query)?;

    println!(
        "sequential: {} (scanned {} partitions)",
        seq.rows[0],
        seq.stats.total_parts_scanned()
    );
    println!(
        "parallel:   {} (scanned {} partitions)",
        par.rows[0],
        par.stats.total_parts_scanned()
    );
    assert_eq!(seq.rows, par.rows);
    assert_eq!(seq.stats.parts_scanned, par.stats.parts_scanned);
    println!("modes agree.");
    Ok(())
}
