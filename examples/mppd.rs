//! `mppd` — the engine as a standalone server process.
//!
//! Boots an [`mpp_server::Server`] over a demo database (the synthetic
//! `r`/`s` tables every walkthrough uses), prints the bound address,
//! and runs until a client sends a `Shutdown` frame (`mpp_cli <addr>
//! --shutdown`) or the process receives SIGINT-by-way-of-kill.
//!
//! ```text
//! cargo run --release --example mppd -- --addr 127.0.0.1:0
//! ```

use mpp_server::{Server, ServerConfig};
use mpp_session::SessionCtx;
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7333".to_string();
    let mut segments: usize = 4;
    let mut timeout_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--segments" => {
                segments = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--segments needs a number")
            }
            "--query-timeout-ms" => {
                timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--query-timeout-ms needs a number"),
                )
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: mppd [--addr HOST:PORT] [--segments N] [--query-timeout-ms MS]");
                std::process::exit(2);
            }
        }
    }

    let db = MppDb::new(segments);
    // Denser join key than the stock config (b in [0, 10)): the full
    // `r JOIN s ON r.b = s.b` explodes to ~1M rows, big enough for the
    // smoke script's mid-query cancel to always land mid-stream.
    let demo = SynthConfig {
        b_domain: 10,
        r_parts: Some(10),
        ..SynthConfig::default()
    };
    setup_rs(db.storage(), &demo).expect("demo data setup failed");
    let ctx = SessionCtx::with_db(db, 256);

    let cfg = ServerConfig {
        query_timeout: timeout_ms.map(Duration::from_millis),
        ..ServerConfig::default()
    };
    let server = Server::start(ctx, &addr, cfg).expect("bind failed");
    println!("mppd listening on {}", server.local_addr());
    println!(
        "demo tables: r, s (try: mpp_cli {} 'SELECT count(*) FROM r')",
        server.local_addr()
    );

    server.wait_stop_requested();
    println!("mppd shutting down");
    server.stop();
    let m = server.metrics();
    println!(
        "served {} queries ({} ok, {} failed, {} cancelled), {} rows streamed",
        m.queries_started, m.queries_ok, m.queries_err, m.queries_cancelled, m.rows_streamed
    );
}
