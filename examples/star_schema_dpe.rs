//! Dynamic partition elimination on a star schema — the paper's Figure 4
//! and Figure 6 scenarios over the TPC-DS-style workload schema.
//!
//! The fact table is partitioned on a surrogate date key (a foreign key
//! into `date_dim`), so a date filter can only prune partitions *after*
//! the dimension has been evaluated — at run time.
//!
//! Run with: `cargo run -p mppart --example star_schema_dpe`

use mppart::workloads::{setup_tpcds, TpcdsConfig};
use mppart::MppDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = MppDb::new(4);
    let t = setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 50_000,
            parts_per_fact: 24,
            ..TpcdsConfig::default()
        },
    )?;
    let store_sales = t.facts[0].1;

    // Figure 4: the quarter is only known after evaluating the dimension
    // subquery.
    let fig4 = "SELECT avg(ss_amount) FROM store_sales WHERE ss_date_id IN \
                (SELECT d_id FROM date_dim \
                 WHERE d_year = 2013 AND d_month BETWEEN 10 AND 12)";
    println!("=== Figure 4: join-induced dynamic elimination ===");
    println!("{}\n", db.explain_sql(fig4)?);
    let out = db.sql(fig4)?;
    println!(
        "avg = {}, partitions scanned: {} / 24\n",
        out.rows[0],
        out.stats.parts_scanned_for(store_sales)
    );

    // Figure 6: two dimensions, one of which drives elimination.
    let fig6 = "SELECT count(*) FROM customer_dim, date_dim, store_sales \
                WHERE c_id = ss_cust_id AND d_id = ss_date_id \
                AND c_state = 'CA' AND d_year = 2013 AND d_month BETWEEN 10 AND 12";
    println!("=== Figure 6: three-way join ===");
    println!("{}\n", db.explain_sql(fig6)?);
    let out = db.sql(fig6)?;
    println!(
        "count = {}, partitions scanned: {} / 24\n",
        out.rows[0],
        out.stats.parts_scanned_for(store_sales)
    );

    // The legacy planner on the Figure 4 query: no elimination through the
    // subquery — it scans all 24 partitions.
    println!("=== Legacy planner on the Figure 4 query ===");
    let legacy = db.sql_legacy(fig4)?;
    println!(
        "avg = {}, partitions scanned: {} / 24 (no subquery-driven pruning)",
        legacy.rows[0],
        legacy.stats.parts_scanned_for(store_sales)
    );
    Ok(())
}
