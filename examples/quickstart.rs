//! Quickstart: create a partitioned table, load data, and watch static
//! partition elimination at work — the paper's Figure 1/2 scenario.
//!
//! Run with: `cargo run -p mppart --example quickstart`

use mppart::catalog::builders::monthly_range_parts;
use mppart::catalog::{Distribution, TableDesc};
use mppart::common::{Column, DataType, Datum, Row, Schema};
use mppart::MppDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-segment "cluster".
    let db = MppDb::new(4);

    // orders(o_id, amount, date), hash-distributed on o_id and partitioned
    // into 24 monthly partitions covering 2012–2013 (paper Figure 1).
    let schema = Schema::new(vec![
        Column::new("o_id", DataType::Int64).not_null(),
        Column::new("amount", DataType::Float64).not_null(),
        Column::new("date", DataType::Date).not_null(),
    ]);
    let oid = db.catalog().allocate_table_oid();
    let first_part = db.catalog().allocate_part_oids(24);
    db.catalog().register(TableDesc {
        oid,
        name: "orders".into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning: Some(monthly_range_parts(2, 2012, 1, 24, first_part)?),
    })?;

    // Two years of synthetic orders, one per day-ish.
    let lo = mppart::common::value::days_from_civil(2012, 1, 1);
    let hi = mppart::common::value::days_from_civil(2014, 1, 1);
    let rows = (lo..hi).enumerate().flat_map(|(i, day)| {
        (0..3).map(move |k| {
            Row::new(vec![
                Datum::Int64((i * 3 + k) as i64),
                Datum::Float64(100.0 + (day % 500) as f64),
                Datum::Date(day),
            ])
        })
    });
    db.storage().insert(oid, rows)?;
    db.storage().analyze(oid)?;

    // The paper's Figure 2 query: summarize last quarter's orders.
    let sql = "SELECT avg(amount) FROM orders \
               WHERE date BETWEEN '2013-10-01' AND '2013-12-31'";

    println!("query: {sql}\n");
    println!("plan:\n{}", db.explain_sql(sql)?);

    let out = db.sql(sql)?;
    println!("result: {}", out.rows[0]);
    println!(
        "partitions scanned: {} of 24 (static partition elimination)",
        out.stats.parts_scanned_for(oid)
    );
    println!("tuples read: {}", out.stats.tuples_scanned);

    // Compare with the same query over the full table.
    let full = db.sql("SELECT avg(amount) FROM orders")?;
    println!(
        "\nfull scan for comparison: {} partitions, {} tuples",
        full.stats.parts_scanned_for(oid),
        full.stats.tuples_scanned
    );
    Ok(())
}
