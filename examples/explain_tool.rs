//! A tiny interactive EXPLAIN/query shell over the TPC-DS-style schema:
//! type SQL, see the Orca-style plan, the legacy plan, and execution
//! statistics side by side.
//!
//! Run with: `cargo run -p mppart --example explain_tool` and type SQL
//! (or pipe a file in). `\q` quits.

use mppart::plan::explain;
use mppart::workloads::{setup_tpcds, TpcdsConfig};
use mppart::MppDb;
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = MppDb::new(4);
    let t = setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 10_000,
            parts_per_fact: 24,
            ..TpcdsConfig::default()
        },
    )?;
    println!("mppart explain shell — TPC-DS-style schema loaded:");
    println!("  dims:  date_dim, customer_dim, item_dim");
    print!("  facts:");
    for (name, oid) in &t.facts {
        print!(" {name}({} parts)", db.catalog().table(*oid)?.num_leaves());
    }
    println!("\ntype SQL (one statement per line), \\q to quit.\n");

    let stdin = std::io::stdin();
    loop {
        print!("mppart> ");
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            break;
        }
        match db.plan(line) {
            Err(e) => {
                println!("error: {e}\n");
                continue;
            }
            Ok(plan) => {
                println!("--- orca plan ---\n{}", explain(&plan));
                match db.plan_legacy(line) {
                    Ok(lp) => println!(
                        "--- legacy plan: {} nodes vs orca's {} ---",
                        mppart::plan::plan_node_count(&lp),
                        mppart::plan::plan_node_count(&plan),
                    ),
                    Err(e) => println!("--- legacy planner failed: {e} ---"),
                }
            }
        }
        match db.sql(line) {
            Err(e) => println!("execution error: {e}\n"),
            Ok(out) => {
                for row in out.rows.iter().take(20) {
                    println!("{row}");
                }
                if out.rows.len() > 20 {
                    println!("… {} more rows", out.rows.len() - 20);
                }
                println!(
                    "[{} rows, {} partitions scanned, {} tuples read]\n",
                    out.rows.len(),
                    out.stats.total_parts_scanned(),
                    out.stats.tuples_scanned
                );
            }
        }
    }
    Ok(())
}
