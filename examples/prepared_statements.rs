//! Prepared statements: the partitioning key is a `$n` parameter, so no
//! static pruning is possible — the PartitionSelector evaluates the bound
//! value at execution time (paper §1, §3.2).
//!
//! Run with: `cargo run -p mppart --example prepared_statements`

use mppart::common::Datum;
use mppart::testing::setup_orders;
use mppart::MppDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 30_000, 7)?;

    let sql = "SELECT count(*), avg(amount) FROM orders WHERE date BETWEEN $1 AND $2";
    println!("prepared: {sql}\n");
    println!(
        "plan (note the parameterized PartitionSelector):\n{}",
        db.explain_sql(sql)?
    );

    let bindings = [
        (
            "Q1 2012",
            Datum::date_ymd(2012, 1, 1),
            Datum::date_ymd(2012, 3, 31),
        ),
        (
            "July 2013",
            Datum::date_ymd(2013, 7, 1),
            Datum::date_ymd(2013, 7, 31),
        ),
        (
            "H2 2013",
            Datum::date_ymd(2013, 7, 1),
            Datum::date_ymd(2013, 12, 31),
        ),
        (
            "out of range",
            Datum::date_ymd(2030, 1, 1),
            Datum::date_ymd(2030, 12, 31),
        ),
    ];
    for (label, lo, hi) in bindings {
        let out = db.sql_with_params(sql, &[lo, hi])?;
        println!(
            "{label:>13}: {} | partitions scanned: {:>2} / 24",
            out.rows[0],
            out.stats.parts_scanned_for(orders)
        );
    }
    println!("\nSame plan each time; only the propagated partition OIDs change.");
    Ok(())
}
