//! `mpp_cli` — run SQL against a running `mppd`.
//!
//! ```text
//! mpp_cli 127.0.0.1:7333 "SELECT count(*) FROM r" "EXPLAIN SELECT * FROM r WHERE b = 5"
//! mpp_cli 127.0.0.1:7333 --stats
//! mpp_cli 127.0.0.1:7333 --cancel-after-block "SELECT * FROM r, s WHERE r.a < 1000"
//! mpp_cli 127.0.0.1:7333 --shutdown
//! ```
//!
//! `--cancel-after-block` is the scripted form of the mid-query cancel
//! path (used by `scripts/net_smoke.sh`): it reads exactly one
//! `DataBlock`, injects a `Cancel` frame, and expects the query to die
//! with `code = "cancelled"` and partial statistics.

use mpp_common::Datum;
use mpp_server::{Client, ClientError, ClientMsg, ServerMsg};

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("mpp_cli: {e}");
    std::process::exit(1);
}

fn print_reply(reply: &mpp_server::Reply) {
    if !reply.columns.is_empty() {
        println!("{}", reply.columns.join(" | "));
    }
    for row in &reply.rows {
        let cells: Vec<String> = row.values().iter().map(render).collect();
        println!("{}", cells.join(" | "));
    }
    println!(
        "-- {} row(s) in {} block(s); {} tuple(s) scanned, {} partition(s)",
        reply.rows.len(),
        reply.data_blocks,
        reply.stats.tuples_scanned,
        reply.stats.total_parts_scanned(),
    );
}

fn render(d: &Datum) -> String {
    match d {
        Datum::Null => "NULL".to_string(),
        Datum::Bool(b) => b.to_string(),
        Datum::Int32(v) => v.to_string(),
        Datum::Int64(v) => v.to_string(),
        Datum::Float64(v) => v.to_string(),
        Datum::Str(s) => s.to_string(),
        Datum::Date(days) => format!("date({days})"),
    }
}

fn cancel_after_block(client: &mut Client, sql: &str) {
    client
        .send(&ClientMsg::Query {
            sql: sql.to_string(),
            params: Vec::new(),
        })
        .unwrap_or_else(|e| fail(e));
    let mut cancelled = false;
    loop {
        match client.recv().unwrap_or_else(|e| fail(e)) {
            ServerMsg::RowDescription { .. } => {}
            ServerMsg::DataBlock { rows } => {
                if !cancelled {
                    println!("got first block ({} rows), cancelling", rows.len());
                    client.cancel().unwrap_or_else(|e| fail(e));
                    cancelled = true;
                }
            }
            ServerMsg::CommandComplete { stats, .. } => {
                // The query finished before the cancel landed — possible
                // on tiny results, a failure for the smoke script's
                // deliberately large one.
                fail(format!(
                    "query completed ({} rows) before cancel took effect",
                    stats.rows_returned
                ));
            }
            ServerMsg::Error { code, stats, .. } if code == "cancelled" => {
                let scanned = stats.map(|s| s.tuples_scanned).unwrap_or(0);
                println!("cancelled mid-query after scanning {scanned} tuple(s)");
                return;
            }
            ServerMsg::Error { code, message, .. } => {
                fail(format!("expected cancelled, got [{code}] {message}"))
            }
            other => fail(format!("unexpected frame {other:?}")),
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| {
        eprintln!("usage: mpp_cli HOST:PORT [--stats|--shutdown|--cancel-after-block SQL|SQL ...]");
        std::process::exit(2);
    });
    let mut client = Client::connect(&addr).unwrap_or_else(|e| fail(e));

    let mut ran_anything = false;
    while let Some(arg) = args.next() {
        ran_anything = true;
        match arg.as_str() {
            "--stats" => {
                let m = client.server_stats().unwrap_or_else(|e| fail(e));
                println!(
                    "connections: {} active / {} total ({} shed)",
                    m.active_connections, m.total_connections, m.shed_connections
                );
                println!(
                    "queries: {} in flight, {} queued, {} shed; {} ok, {} failed, {} cancelled",
                    m.inflight_queries,
                    m.queued_queries,
                    m.shed_queries,
                    m.queries_ok,
                    m.queries_err,
                    m.queries_cancelled
                );
                println!(
                    "streamed: {} rows in {} blocks ({} bytes); plan cache {} hits / {} misses",
                    m.rows_streamed,
                    m.blocks_streamed,
                    m.bytes_streamed,
                    m.cache_hits,
                    m.cache_misses
                );
                println!(
                    "latency: p50 {}us, p99 {}us over {} queries",
                    m.latency_quantile_micros(0.50),
                    m.latency_quantile_micros(0.99),
                    m.latency_count
                );
            }
            "--shutdown" => {
                client.shutdown_server().unwrap_or_else(|e| fail(e));
                println!("shutdown requested");
                return;
            }
            "--cancel-after-block" => {
                let sql = args
                    .next()
                    .unwrap_or_else(|| fail("--cancel-after-block needs a SQL argument"));
                cancel_after_block(&mut client, &sql);
            }
            sql => match client.query(sql, &[]) {
                Ok(reply) => print_reply(&reply),
                Err(ClientError::Server { code, message, .. }) => {
                    eprintln!("error [{code}]: {message}");
                    std::process::exit(1);
                }
                Err(e) => fail(e),
            },
        }
    }
    if !ran_anything {
        eprintln!("nothing to do; pass SQL or a flag");
        std::process::exit(2);
    }
    let _ = client.goodbye();
}
