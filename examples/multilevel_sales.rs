//! Multi-level (hierarchical) partitioning — the paper's §2.4 / Figure 9:
//! `orders` partitioned by month at level 1 and by region at level 2, and
//! the per-level selection behaviour of Figure 10.
//!
//! Run with: `cargo run -p mppart --example multilevel_sales`

use mppart::testing::setup_orders_multilevel;
use mppart::MppDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = MppDb::new(4);
    let regions = ["Region 1", "Region 2"];
    let table = setup_orders_multilevel(&db, &regions, 50_000, 42)?;
    let total = db.catalog().table(table)?.num_leaves();
    println!(
        "orders_ml: 24 months x {} regions = {total} leaf partitions\n",
        regions.len()
    );

    let cases = [
        (
            "date only (one month, all regions)",
            "SELECT count(*) FROM orders_ml WHERE date BETWEEN '2012-01-01' AND '2012-01-31'",
        ),
        (
            "region only (all months, one region)",
            "SELECT count(*) FROM orders_ml WHERE region = 'Region 1'",
        ),
        (
            "date AND region (a single leaf)",
            "SELECT count(*) FROM orders_ml \
             WHERE date BETWEEN '2012-01-01' AND '2012-01-31' AND region = 'Region 1'",
        ),
        (
            "no predicate (all leaves)",
            "SELECT count(*) FROM orders_ml",
        ),
    ];

    for (label, sql) in cases {
        let out = db.sql(sql)?;
        println!("--- {label}");
        println!("    {sql}");
        println!(
            "    rows = {}, partitions scanned = {} / {total}\n",
            out.rows[0],
            out.stats.parts_scanned_for(table)
        );
    }

    // Show the multi-level PartitionSelector annotation (Figure 11's
    // extended PartSelectorSpec: one key and one predicate per level).
    println!(
        "plan for the combined predicate:\n{}",
        db.explain_sql(cases[2].1)?
    );
    Ok(())
}
