//! Property-based equivalence of the two execution engines: over random
//! data, random predicates, both planners and both exec modes, the
//! vectorized block engine (`ExecEngine::Batch`) must be observationally
//! identical to the row-at-a-time interpreter (`ExecEngine::Row`) — the
//! same multiset of rows, the same partitions scanned and tuples read,
//! and, for queries whose expressions fail at runtime, the same error.

use mppart::common::Datum;
use mppart::core::OptimizerConfig;
use mppart::testing::sorted;
use mppart::workloads::{setup_nullable, setup_rs, setup_skewed, SynthConfig};
use mppart::{ExecEngine, ExecMode, MppDb, Planner, SchedConfig, SchedPolicy};
use proptest::prelude::*;

/// A small random single-table predicate over `a` and the partition key
/// `b`, rendered as SQL.
#[derive(Debug, Clone)]
enum Pred {
    Cmp(&'static str, i32, bool /* on partition key b */),
    Between(i32, i32, bool),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn to_sql(&self) -> String {
        match self {
            Pred::Cmp(op, v, on_b) => format!("{} {op} {v}", if *on_b { "b" } else { "a" }),
            Pred::Between(lo, hi, on_b) => {
                format!("{} BETWEEN {lo} AND {hi}", if *on_b { "b" } else { "a" })
            }
            Pred::And(l, r) => format!("({} AND {})", l.to_sql(), r.to_sql()),
            Pred::Or(l, r) => format!("({} OR {})", l.to_sql(), r.to_sql()),
            Pred::Not(p) => format!("NOT {}", p.to_sql()),
        }
    }
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (
            prop_oneof![
                Just("="),
                Just("<"),
                Just("<="),
                Just(">"),
                Just(">="),
                Just("<>")
            ],
            0i32..200,
            any::<bool>()
        )
            .prop_map(|(op, v, on_b)| Pred::Cmp(op, v, on_b)),
        (0i32..200, 0i32..200, any::<bool>()).prop_map(|(lo, hi, on_b)| Pred::Between(
            lo.min(hi),
            lo.max(hi),
            on_b
        )),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Pred::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Pred::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

/// Two databases with identical synthetic data: one running the block
/// engine, one running the row engine, both under `mode`.
fn engine_pair(segs: usize, parts: usize, seed: u64, mode: ExecMode) -> (MppDb, MppDb) {
    let cfg = SynthConfig {
        r_rows: 300,
        s_rows: 120,
        r_parts: Some(parts),
        s_parts: None,
        b_domain: 200,
        a_domain: 200,
        seed,
    };
    let mk = |engine| {
        let db = MppDb::with_config(OptimizerConfig {
            num_segments: segs,
            ..OptimizerConfig::default()
        })
        .with_exec_mode(mode)
        .with_exec_engine(engine);
        setup_rs(db.storage(), &cfg).unwrap();
        db
    };
    (mk(ExecEngine::Batch), mk(ExecEngine::Row))
}

/// Run one statement on both engines and both planners, asserting the
/// observable outcome is identical.
fn assert_engines_agree(
    batch: &MppDb,
    row: &MppDb,
    sql: &str,
    params: &[Datum],
) -> Result<(), TestCaseError> {
    for planner in [Planner::Orca, Planner::Legacy] {
        let b = batch.run_sql(sql, params, planner);
        let r = row.run_sql(sql, params, planner);
        match (b, r) {
            (Ok(b), Ok(r)) => {
                prop_assert_eq!(
                    sorted(b.rows),
                    sorted(r.rows),
                    "rows differ for {} ({:?})",
                    sql,
                    planner
                );
                prop_assert_eq!(
                    &b.stats.parts_scanned,
                    &r.stats.parts_scanned,
                    "parts_scanned differ for {} ({:?})",
                    sql,
                    planner
                );
                prop_assert_eq!(
                    b.stats.tuples_scanned,
                    r.stats.tuples_scanned,
                    "tuples_scanned differ for {} ({:?})",
                    sql,
                    planner
                );
                prop_assert_eq!(
                    b.stats.rows_moved,
                    r.stats.rows_moved,
                    "rows_moved differ for {} ({:?})",
                    sql,
                    planner
                );
                // The row engine never touches vectorized paths.
                prop_assert_eq!(r.stats.rows_vectorized, 0);
                prop_assert_eq!(r.stats.blocks_produced, 0);
            }
            (Err(b), Err(r)) => {
                // Same failure, same message — the block engine's
                // fallback must surface the row engine's exact error.
                prop_assert_eq!(
                    b.to_string(),
                    r.to_string(),
                    "error differs for {} ({:?})",
                    sql,
                    planner
                );
            }
            (b, r) => {
                return Err(TestCaseError::fail(format!(
                    "engines disagree on success for {sql} ({planner:?}): \
                     batch={:?} row={:?}",
                    b.map(|o| o.rows.len()),
                    r.map(|o| o.rows.len())
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Selections over random predicates: identical rows, identical
    /// partition-elimination work, in both exec modes.
    #[test]
    fn batch_matches_row_on_selections(
        pred in arb_pred(),
        seed in 0u64..100,
        parts in 1usize..20,
        segs in 1usize..4,
    ) {
        let sql = format!("SELECT * FROM r WHERE {}", pred.to_sql());
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let (batch, row) = engine_pair(segs, parts, seed, mode);
            assert_engines_agree(&batch, &row, &sql, &[])?;
        }
    }

    /// Joins (hash-join key vectorization + motions) and aggregates
    /// (vectorized key extraction and accumulator input).
    #[test]
    fn batch_matches_row_on_joins_and_aggs(
        cutoff in 0i32..200,
        seed in 0u64..50,
        parts in 1usize..16,
    ) {
        let (batch, row) = engine_pair(3, parts, seed, ExecMode::Parallel);
        for sql in [
            format!("SELECT * FROM r, s WHERE r.b = s.y AND r.a < {cutoff}"),
            format!("SELECT b, COUNT(*), SUM(a) FROM r WHERE a < {cutoff} GROUP BY b"),
            format!("SELECT COUNT(*), MIN(a), MAX(b), AVG(a) FROM r WHERE b >= {cutoff}"),
            format!("SELECT a + b, a * 2 FROM r WHERE b < {cutoff} ORDER BY a + b LIMIT 7"),
        ] {
            assert_engines_agree(&batch, &row, &sql, &[])?;
        }
    }

    /// Runtime expression errors (division by zero somewhere mid-block)
    /// must surface identically: same error kind and message, whichever
    /// engine hit it. Exercises the strict-eval row fallback.
    #[test]
    fn batch_matches_row_on_runtime_errors(
        k in 1i32..40,
        seed in 0u64..50,
        parts in 1usize..12,
    ) {
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let (batch, row) = engine_pair(2, parts, seed, mode);
            for sql in [
                // Errors on rows where a % k == 0 (if any survive the filter).
                format!("SELECT b / (a % {k}) FROM r WHERE b < 120"),
                // Error in a filter predicate.
                format!("SELECT a FROM r WHERE 100 / (a % {k}) > 1"),
                // Error inside an aggregate argument.
                format!("SELECT SUM(b / (a % {k})) FROM r"),
            ] {
                assert_engines_agree(&batch, &row, &sql, &[])?;
            }
        }
    }

    /// The block engine under the morsel scheduler, across worker counts
    /// and heavy skew (one partition holding ~90% of the rows), stays
    /// observationally identical to the row interpreter: same rows, same
    /// partition work, same error outcome — the fused pipeline and its
    /// row fallback must not depend on how morsels were distributed.
    #[test]
    fn batch_matches_row_across_worker_counts_on_skew(
        seed in 0u64..20,
        cutoff in 20i32..180,
        k in 1i32..24,
    ) {
        let cfg = SynthConfig {
            r_rows: 400,
            s_rows: 0,
            r_parts: Some(12),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed,
        };
        let queries = [
            format!("SELECT * FROM r WHERE a < {cutoff}"),
            format!("SELECT b, COUNT(*), SUM(a), AVG(a) FROM r WHERE a < {cutoff} GROUP BY b"),
            format!("SELECT SUM(100 / (a % {k})) FROM r WHERE b < {cutoff}"),
        ];
        for workers in [1usize, 2, 4, 8] {
            for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                let mk = |engine, sched: SchedConfig| {
                    let db = MppDb::with_config(OptimizerConfig {
                        num_segments: 4,
                        ..OptimizerConfig::default()
                    })
                    .with_exec_mode(mode)
                    .with_exec_engine(engine)
                    .with_sched_config(sched);
                    setup_skewed(db.storage(), "r", &cfg, 90, 0).unwrap();
                    db
                };
                let batch = mk(
                    ExecEngine::Batch,
                    SchedConfig {
                        workers: Some(workers),
                        policy: SchedPolicy::Morsel,
                        morsel_rows: 48,
                    },
                );
                let row = mk(ExecEngine::Row, SchedConfig::default());
                for sql in &queries {
                    assert_engines_agree(&batch, &row, sql, &[])?;
                }
            }
        }
    }

    /// Nullable typed columns: the validity-bitmap representation keeps a
    /// null-bearing `v` column on the word-mask / typed-kernel paths, and
    /// every 3VL shape — comparisons, BETWEEN, IN, IS [NOT] NULL, AND/OR,
    /// arithmetic with NULL propagation, aggregates skipping NULLs, NULL
    /// group keys, deferred division errors — must stay observationally
    /// identical to the row interpreter.
    #[test]
    fn batch_matches_row_on_nullable_columns(
        cutoff in 0i32..200,
        k in 1i32..24,
        null_pct in prop_oneof![Just(0u32), Just(10), Just(50), Just(95)],
        seed in 0u64..50,
        parts in 1usize..12,
    ) {
        let cfg = SynthConfig {
            r_rows: 300,
            s_rows: 0,
            r_parts: Some(parts),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed,
        };
        let mk = |engine| {
            let db = MppDb::with_config(OptimizerConfig {
                num_segments: 3,
                ..OptimizerConfig::default()
            })
            .with_exec_mode(ExecMode::Parallel)
            .with_exec_engine(engine);
            setup_nullable(db.storage(), "rn", &cfg, null_pct).unwrap();
            db
        };
        let (batch, row) = (mk(ExecEngine::Batch), mk(ExecEngine::Row));
        for sql in [
            format!("SELECT * FROM rn WHERE v < {cutoff}"),
            format!("SELECT * FROM rn WHERE v BETWEEN {} AND {}", cutoff / 2, cutoff),
            "SELECT * FROM rn WHERE v IS NULL".to_string(),
            format!("SELECT * FROM rn WHERE v IS NOT NULL AND v >= {cutoff}"),
            format!("SELECT * FROM rn WHERE v IN (1, 7, {cutoff}) OR v IS NULL"),
            format!("SELECT v + a, v * 2 FROM rn WHERE b < {cutoff}"),
            format!("SELECT b, COUNT(*), COUNT(v), SUM(v), AVG(v) FROM rn WHERE a < {cutoff} GROUP BY b"),
            "SELECT v, COUNT(*) FROM rn GROUP BY v".to_string(),
            "SELECT MIN(v), MAX(v), SUM(v) FROM rn".to_string(),
            format!("SELECT 100 / (v % {k}) FROM rn WHERE b < {cutoff}"),
            format!("SELECT SUM(100 / (v % {k})) FROM rn"),
        ] {
            assert_engines_agree(&batch, &row, &sql, &[])?;
        }
    }

    /// Prepared statements: one handle, many parameter bindings, both
    /// engines — rows and partition elimination must match per binding.
    #[test]
    fn batch_matches_row_on_prepared_params(
        bounds in proptest::collection::vec(0i32..200, 1..4),
        seed in 0u64..50,
        parts in 2usize..16,
    ) {
        let (batch, row) = engine_pair(3, parts, seed, ExecMode::Parallel);
        let sql = "SELECT * FROM r WHERE b < $1";
        let bq = batch.prepare(sql).unwrap();
        let rq = row.prepare(sql).unwrap();
        for v in bounds {
            let params = [Datum::Int32(v)];
            let b = batch.execute_prepared(&bq, &params).unwrap();
            let r = row.execute_prepared(&rq, &params).unwrap();
            prop_assert_eq!(sorted(b.rows), sorted(r.rows), "v={}", v);
            prop_assert_eq!(&b.stats.parts_scanned, &r.stats.parts_scanned, "v={}", v);
            prop_assert_eq!(b.stats.tuples_scanned, r.stats.tuples_scanned, "v={}", v);
        }
        // Template reuse is engine-independent: sites compiled once.
        prop_assert_eq!(bq.compiled_sites(), rq.compiled_sites());
    }
}

/// The block engine actually vectorizes: a filtered scan+agg pipeline
/// reports vectorized rows and produced blocks, with no row fallback.
#[test]
fn batch_engine_reports_vectorized_work() {
    let (batch, row) = engine_pair(3, 8, 7, ExecMode::Sequential);
    let sql = "SELECT b, COUNT(*) FROM r WHERE a < 150 GROUP BY b";
    let b = batch.sql(sql).unwrap();
    let r = row.sql(sql).unwrap();
    assert_eq!(sorted(b.rows), sorted(r.rows));
    assert!(b.stats.rows_vectorized > 0, "{:?}", b.stats);
    assert!(b.stats.blocks_produced > 0, "{:?}", b.stats);
    assert_eq!(b.stats.rows_row_fallback, 0, "{:?}", b.stats);
    assert_eq!(r.stats.rows_vectorized, 0);
}

/// DML always runs on the row engine, and a batch-engine session still
/// executes it correctly (insert → vectorized read-back).
#[test]
fn dml_on_batch_session_falls_back_to_row_engine() {
    let db = MppDb::new(2).with_exec_engine(ExecEngine::Batch);
    db.sql("CREATE TABLE t (k INT, v INT) DISTRIBUTED BY (k)")
        .unwrap();
    for i in 0..50 {
        db.sql(&format!("INSERT INTO t VALUES ({i}, {})", i * 3))
            .unwrap();
    }
    db.sql("UPDATE t SET v = v + 1 WHERE k < 10").unwrap();
    db.sql("DELETE FROM t WHERE k >= 40").unwrap();
    let got = db.sql("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    let want: i64 = (0..40).map(|i| i * 3 + i64::from(i < 10)).sum();
    assert_eq!(
        got.rows[0].values(),
        &[Datum::Int64(40), Datum::Int64(want)]
    );
}
