//! Property-based equivalence for adaptive planning: per-partition plan
//! specialization plus runtime cardinality feedback may change plan
//! *shape* — never results. Over random skew, random predicates and
//! random seeds, an adaptive database and an adaptive-off database over
//! identical data must agree in every {planner} × {exec mode} × {exec
//! engine} cell, on the prepared path with parameters, and across a
//! mid-sequence feedback-triggered re-optimization.

use mppart::common::{Datum, Row};
use mppart::testing::approx_same_bag;
use mppart::workloads::{setup_rs, setup_skewed, SynthConfig};
use mppart::{ExecEngine, ExecMode, MppDb, Planner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All eight {Orca,Legacy} × {Sequential,Parallel} × {Row,Batch} cells.
fn combos() -> Vec<(Planner, ExecMode, ExecEngine)> {
    let mut v = Vec::new();
    for planner in [Planner::Orca, Planner::Legacy] {
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            for engine in [ExecEngine::Row, ExecEngine::Batch] {
                v.push((planner, mode, engine));
            }
        }
    }
    v
}

/// One database with the skewed join workload: `t` is range-partitioned
/// on `b` with `hot_pct` percent of its rows in a single hot partition
/// (the shape that makes per-partition specialization fire), `s` is a
/// small unpartitioned join partner. Both sides are ANALYZEd so the
/// optimizer sees the skew.
fn skewed_db(seed: u64, hot_pct: u32, adaptive: bool) -> MppDb {
    let mut db = MppDb::new(4);
    db.set_adaptive_plans(adaptive);
    let cfg = SynthConfig {
        r_rows: 60,
        s_rows: 40,
        r_parts: None,
        s_parts: None,
        b_domain: 100,
        a_domain: 50,
        seed,
    };
    setup_rs(db.storage(), &cfg).unwrap();
    let skew_cfg = SynthConfig {
        r_rows: 300,
        r_parts: Some(10),
        ..cfg
    };
    setup_skewed(db.storage(), "t", &skew_cfg, hot_pct, 0).unwrap();
    db.sql("ANALYZE t").unwrap();
    db.sql("ANALYZE s").unwrap();
    db
}

/// Run `sql` in every combo on both databases and require identical row
/// multisets cell by cell (within float epsilon — distributed
/// aggregation may reorder summation).
fn assert_equiv_all_combos(
    on: &mut MppDb,
    off: &mut MppDb,
    sql: &str,
    params: &[Datum],
) -> std::result::Result<(), TestCaseError> {
    for (planner, mode, engine) in combos() {
        on.set_exec_mode(mode);
        on.set_exec_engine(engine);
        off.set_exec_mode(mode);
        off.set_exec_engine(engine);
        let a = on.run_sql(sql, params, planner).unwrap();
        let b = off.run_sql(sql, params, planner).unwrap();
        prop_assert!(
            approx_same_bag(a.rows.clone(), b.rows.clone()),
            "adaptive vs non-adaptive rows differ in {planner:?}/{mode:?}/{engine:?}: \
             {} vs {} row(s)\n  sql: {sql}",
            a.rows.len(),
            b.rows.len()
        );
    }
    on.set_exec_mode(ExecMode::Sequential);
    on.set_exec_engine(ExecEngine::Row);
    off.set_exec_mode(ExecMode::Sequential);
    off.set_exec_engine(ExecEngine::Row);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Skewed join: the adaptive optimizer may split the partitioned side
    /// into per-group Append branches with different join strategies; the
    /// row multiset must match the uniform plan in all eight cells.
    #[test]
    fn skewed_join_equivalence(seed in 0u64..40, hot_pct in 55u32..95) {
        let mut on = skewed_db(seed, hot_pct, true);
        let mut off = skewed_db(seed, hot_pct, false);
        // Join on t's partition key: the shape per-partition
        // specialization rewrites.
        let sql = "SELECT s.a, t.a, t.b FROM s JOIN t ON s.b = t.b";
        assert_equiv_all_combos(&mut on, &mut off, sql, &[])?;
    }

    /// Partition-key filters compose with specialization: each Append
    /// branch carries its own residual restriction, so static pruning on
    /// top of the split must not lose or duplicate rows.
    #[test]
    fn filtered_skewed_join_equivalence(
        seed in 0u64..40,
        hot_pct in 55u32..95,
        cutoff in 1i32..100,
    ) {
        let mut on = skewed_db(seed, hot_pct, true);
        let mut off = skewed_db(seed, hot_pct, false);
        let sql = format!(
            "SELECT t.b, count(*) FROM t JOIN s ON t.a = s.a WHERE t.b < {cutoff} GROUP BY t.b"
        );
        assert_equiv_all_combos(&mut on, &mut off, &sql, &[])?;
    }

    /// Prepared statements with parameters: prepare once on each side,
    /// execute with the same binding, both planners.
    #[test]
    fn prepared_params_equivalence(
        seed in 0u64..40,
        hot_pct in 55u32..95,
        cutoff in 1i32..100,
    ) {
        let on = skewed_db(seed, hot_pct, true);
        let off = skewed_db(seed, hot_pct, false);
        let sql = "SELECT s.a, t.b FROM s JOIN t ON s.b = t.b WHERE t.a < $1";
        let params = [Datum::Int32(cutoff)];
        for planner in [Planner::Orca, Planner::Legacy] {
            let qa = on.prepare_with(sql, planner).unwrap();
            let qb = off.prepare_with(sql, planner).unwrap();
            let a = on.execute_prepared(&qa, &params).unwrap();
            let b = off.execute_prepared(&qb, &params).unwrap();
            prop_assert!(
                approx_same_bag(a.rows.clone(), b.rows.clone()),
                "prepared adaptive vs non-adaptive rows differ under {planner:?}: \
                 {} vs {} row(s)",
                a.rows.len(),
                b.rows.len()
            );
        }
    }

    /// Feedback-triggered re-optimization mid-sequence: execute a
    /// prepared plan, grow the join partner far past its planned-for
    /// cardinality (a >10× under-estimate the executor's scan counters
    /// expose), and keep going. The stale prepared handle, the
    /// re-prepared plan, and the one-shot path must all keep agreeing
    /// with the adaptive-off database fed the identical inserts.
    #[test]
    fn feedback_reoptimization_mid_sequence(seed in 0u64..20, hot_pct in 60u32..90) {
        let mut on = skewed_db(seed, hot_pct, true);
        let mut off = skewed_db(seed, hot_pct, false);
        let sql = "SELECT t.a, s.b FROM t JOIN s ON t.a = s.a";

        let stale_on = on.prepare_with(sql, Planner::Orca).unwrap();
        let stale_off = off.prepare_with(sql, Planner::Orca).unwrap();
        let a = on.execute_prepared(&stale_on, &[]).unwrap();
        let b = off.execute_prepared(&stale_off, &[]).unwrap();
        prop_assert!(approx_same_bag(a.rows, b.rows));

        // Grow s by >10× what the prepared plan expected. Same rows into
        // both databases; only the adaptive side may react.
        let s_oid = on.catalog().table_by_name("s").unwrap().oid;
        let s_off = off.catalog().table_by_name("s").unwrap().oid;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeedbac);
        let grown: Vec<Row> = (0..1_000)
            .map(|_| {
                Row::new(vec![
                    Datum::Int32(rng.gen_range(0..50)),
                    Datum::Int32(rng.gen_range(0..100)),
                ])
            })
            .collect();
        on.storage().insert(s_oid, grown.iter().cloned()).unwrap();
        off.storage().insert(s_off, grown.iter().cloned()).unwrap();

        // Stale handle still answers correctly and, on the adaptive side,
        // reports the miss into the feedback store.
        let a = on.execute_prepared(&stale_on, &[]).unwrap();
        let b = off.execute_prepared(&stale_off, &[]).unwrap();
        prop_assert!(approx_same_bag(a.rows, b.rows));
        prop_assert!(
            on.catalog().feedback_override(s_oid).is_some(),
            "a >10x under-estimate must install a feedback override"
        );
        prop_assert!(
            off.catalog().feedback_override(s_off).is_none(),
            "adaptive-off must never record feedback"
        );

        // Re-optimized (fresh prepare + one-shot) plans see the observed
        // cardinality; results must stay identical in every cell.
        let fresh_on = on.prepare_with(sql, Planner::Orca).unwrap();
        let a = on.execute_prepared(&fresh_on, &[]).unwrap();
        let b = off.execute_prepared(&stale_off, &[]).unwrap();
        prop_assert!(approx_same_bag(a.rows, b.rows));
        assert_equiv_all_combos(&mut on, &mut off, sql, &[])?;
    }
}

/// Deterministic anchor: with heavy skew and fresh statistics, the
/// adaptive Orca plan for the skewed join actually specializes (EXPLAIN
/// shows an Append with per-group strategies) while the adaptive-off
/// plan does not — guarding against the axis silently testing two
/// identical plans.
#[test]
fn adaptive_plan_actually_differs_under_skew() {
    let on = skewed_db(7, 90, true);
    let off = skewed_db(7, 90, false);
    let sql = "SELECT s.a, t.a, t.b FROM s JOIN t ON s.b = t.b";
    let plan_on = on.explain_sql(sql).unwrap();
    let plan_off = off.explain_sql(sql).unwrap();
    assert_ne!(
        plan_on, plan_off,
        "90% skew with analyzed stats should trigger per-partition specialization"
    );
    assert!(
        plan_on.contains("Append"),
        "specialized plan stitches groups with Append:\n{plan_on}"
    );
    let a = on.sql(sql).unwrap();
    let b = off.sql(sql).unwrap();
    assert!(approx_same_bag(a.rows, b.rows));
}
