//! Replay every minimized reproducer in `testkit/corpus/` through the
//! full differential harness: all eight {planner} × {exec mode} ×
//! {exec engine} combinations plus both planners' prepared paths. Each
//! corpus file is a bug the fuzzer once found, shrunk to its essence; a
//! failure here means the bug came back.

use mpp_testkit::{combos, corpus, run_case};

#[test]
fn corpus_replays_clean_across_all_combos() {
    assert_eq!(combos().len(), 8, "the combo matrix changed size");
    let cases = corpus::load_all().expect("corpus must parse");
    assert!(
        !cases.is_empty(),
        "testkit/corpus is empty — reproducers should be checked in"
    );
    for (name, case) in cases {
        if let Some(f) = run_case(&case) {
            panic!("corpus case {name} regressed:\n{f}");
        }
    }
}
