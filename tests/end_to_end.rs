//! End-to-end scenarios from the paper: SQL in, rows and scan statistics
//! out, across the simulated MPP cluster.

use mppart::common::{Datum, Row};
use mppart::testing::{approx_same_bag, setup_orders, setup_orders_multilevel, sorted};
use mppart::workloads::{setup_tpcds, tpcds_workload, TpcdsConfig};
use mppart::MppDb;

/// Paper Figure 2: a constant date range over monthly partitions must
/// scan only the last quarter's three partitions.
#[test]
fn figure2_static_elimination_scans_three_partitions() {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 5_000, 1).unwrap();
    let out = db
        .sql("SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'")
        .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.stats.parts_scanned_for(orders), 3, "Q4 = 3 partitions");

    // Cross-check the average against a brute-force full scan.
    let all = db.sql("SELECT avg(amount) FROM orders").unwrap();
    assert_eq!(all.stats.parts_scanned_for(orders), 24);
    let pruned_avg = out.rows[0].values()[0].as_f64().unwrap();
    // Recompute by hand from raw storage.
    let lo = Datum::date_ymd(2013, 10, 1);
    let hi = Datum::date_ymd(2013, 12, 31);
    let mut sum = 0.0;
    let mut n = 0usize;
    for phys in db.storage().physical_tables(orders).unwrap() {
        for row in db.storage().scan_all_segments(phys) {
            let d = &row.values()[2];
            if *d >= lo && *d <= hi {
                sum += row.values()[1].as_f64().unwrap();
                n += 1;
            }
        }
    }
    assert!(n > 0);
    assert!((pruned_avg - sum / n as f64).abs() < 1e-9);
}

/// Paper Figure 4: the same quarter expressed through the date dimension —
/// dynamic elimination must kick in and the result must match the
/// equivalent static query.
#[test]
fn figure4_dynamic_elimination_through_subquery() {
    let db = MppDb::new(4);
    let t = setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 8_000,
            parts_per_fact: 24,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    let ss = t.facts[0].1;

    let dynamic = db
        .sql(
            "SELECT count(*), sum(ss_amount) FROM store_sales WHERE ss_date_id IN \
             (SELECT d_id FROM date_dim WHERE d_year = 2013 AND d_month BETWEEN 10 AND 12)",
        )
        .unwrap();
    // Q4-2013 = d_id 640..=731 of 730 days → at most 4 of 24 partitions.
    let scanned = dynamic.stats.parts_scanned_for(ss);
    assert!(
        scanned <= 4,
        "dynamic elimination should prune to ≤4 of 24 partitions, scanned {scanned}"
    );

    // Equivalent static formulation must agree (2013-10-01 is day 640).
    let static_q = db
        .sql(
            "SELECT count(*), sum(ss_amount) FROM store_sales WHERE ss_date_id BETWEEN 640 AND 731",
        )
        .unwrap();
    assert_eq!(sorted(dynamic.rows), sorted(static_q.rows));
}

/// Paper Figure 6: three-way join with selections on both dimensions.
#[test]
fn figure6_three_way_join() {
    let db = MppDb::new(4);
    let t = setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 6_000,
            parts_per_fact: 24,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    let ss = t.facts[0].1;
    let out = db
        .sql(
            "SELECT count(*) FROM customer_dim, date_dim, store_sales \
             WHERE c_id = ss_cust_id AND d_id = ss_date_id \
             AND c_state = 'CA' AND d_year = 2013 AND d_month BETWEEN 10 AND 12",
        )
        .unwrap();
    assert!(out.stats.parts_scanned_for(ss) <= 4);

    // Brute force over raw storage.
    let ca_ids: std::collections::HashSet<i64> = db
        .storage()
        .scan_all_segments(mppart::storage::PhysId::Table(t.customer_dim))
        .iter()
        .filter(|r| r.values()[1] == Datum::str("CA"))
        .map(|r| r.values()[0].as_i64().unwrap())
        .collect();
    let q4_ids: std::collections::HashSet<i64> = db
        .storage()
        .scan_all_segments(mppart::storage::PhysId::Table(t.date_dim))
        .iter()
        .filter(|r| {
            r.values()[2].as_i64().unwrap() == 2013
                && (10..=12).contains(&r.values()[3].as_i64().unwrap())
        })
        .map(|r| r.values()[0].as_i64().unwrap())
        .collect();
    let mut expected = 0i64;
    for phys in db.storage().physical_tables(ss).unwrap() {
        for row in db.storage().scan_all_segments(phys) {
            let date_id = row.values()[0].as_i64().unwrap();
            let cust_id = row.values()[2].as_i64().unwrap();
            if q4_ids.contains(&date_id) && ca_ids.contains(&cust_id) {
                expected += 1;
            }
        }
    }
    assert_eq!(out.rows[0].values()[0], Datum::Int64(expected));
}

/// Paper §2.4 / Figure 10: multi-level partitioning selects per level.
#[test]
fn multilevel_selection_per_level() {
    let db = MppDb::new(4);
    let regions = ["Region 1", "Region 2"];
    let t = setup_orders_multilevel(&db, &regions, 4_000, 3).unwrap();
    let total = db.catalog().table(t).unwrap().num_leaves(); // 48

    // Date-only predicate: one month × all regions = 2 leaves.
    let out = db
        .sql("SELECT count(*) FROM orders_ml WHERE date BETWEEN '2012-01-01' AND '2012-01-31'")
        .unwrap();
    assert_eq!(out.stats.parts_scanned_for(t), 2);

    // Region-only predicate: 24 months × 1 region.
    let out = db
        .sql("SELECT count(*) FROM orders_ml WHERE region = 'Region 1'")
        .unwrap();
    assert_eq!(out.stats.parts_scanned_for(t), 24);

    // Both: exactly one leaf.
    let out = db
        .sql(
            "SELECT count(*) FROM orders_ml \
             WHERE date BETWEEN '2012-01-01' AND '2012-01-31' AND region = 'Region 2'",
        )
        .unwrap();
    assert_eq!(out.stats.parts_scanned_for(t), 1);

    // No predicate: everything.
    let out = db.sql("SELECT count(*) FROM orders_ml").unwrap();
    assert_eq!(out.stats.parts_scanned_for(t), total);
}

/// Prepared statements: the partition choice happens at execution time,
/// per parameter binding (paper §1).
#[test]
fn prepared_statement_selection_at_runtime() {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 3_000, 9).unwrap();
    let sql = "SELECT count(*) FROM orders WHERE date = $1";
    let jan = db
        .sql_with_params(sql, &[Datum::date_ymd(2012, 1, 15)])
        .unwrap();
    assert_eq!(jan.stats.parts_scanned_for(orders), 1);
    let dec = db
        .sql_with_params(sql, &[Datum::date_ymd(2013, 12, 24)])
        .unwrap();
    assert_eq!(dec.stats.parts_scanned_for(orders), 1);

    // Counts agree with literal versions.
    let jan_lit = db
        .sql("SELECT count(*) FROM orders WHERE date = '2012-01-15'")
        .unwrap();
    assert_eq!(jan.rows, jan_lit.rows);
}

/// The whole TPC-DS-style workload runs through parse → optimize →
/// execute without errors, and Orca never returns different rows than the
/// legacy planner.
#[test]
fn full_workload_runs_and_matches_legacy() {
    let db = MppDb::new(4);
    setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 3_000,
            parts_per_fact: 12,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    for q in tpcds_workload() {
        let orca = db
            .sql_with_params(q.sql, &q.params)
            .unwrap_or_else(|e| panic!("{} failed on orca: {e}", q.name));
        let legacy = db
            .sql_legacy_with_params(q.sql, &q.params)
            .unwrap_or_else(|e| panic!("{} failed on legacy: {e}", q.name));
        assert!(
            approx_same_bag(orca.rows, legacy.rows),
            "{}: orca and legacy disagree",
            q.name
        );
    }
}

/// Grouped aggregation over a partitioned fact joins up correctly across
/// motions.
#[test]
fn group_by_with_join_and_limit() {
    let db = MppDb::new(4);
    setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 2_000,
            parts_per_fact: 12,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    let out = db
        .sql(
            "SELECT d_month, count(*) FROM date_dim, store_sales \
             WHERE d_id = ss_date_id AND d_year = 2012 GROUP BY d_month",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 12, "12 months in 2012");
    let total: i64 = out
        .rows
        .iter()
        .map(|r| r.values()[1].as_i64().unwrap())
        .sum();
    let year_total = db
        .sql(
            "SELECT count(*) FROM date_dim, store_sales \
             WHERE d_id = ss_date_id AND d_year = 2012",
        )
        .unwrap();
    assert_eq!(Datum::Int64(total), year_total.rows[0].values()[0]);

    let limited = db
        .sql(
            "SELECT d_month, count(*) FROM date_dim, store_sales \
             WHERE d_id = ss_date_id AND d_year = 2012 GROUP BY d_month LIMIT 5",
        )
        .unwrap();
    assert_eq!(limited.rows.len(), 5);
}

/// An empty partition range yields empty results and zero scans.
#[test]
fn empty_selection_scans_nothing() {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 1_000, 5).unwrap();
    let out = db
        .sql("SELECT * FROM orders WHERE date > '2020-01-01'")
        .unwrap();
    assert!(out.rows.is_empty());
    assert_eq!(out.stats.parts_scanned_for(orders), 0);
}

/// Rows land on the right segments: the same query must return identical
/// results regardless of cluster size.
#[test]
fn results_independent_of_segment_count() {
    let collect = |segments: usize| -> Vec<Row> {
        let db = MppDb::new(segments);
        setup_orders(&db, 2_000, 11).unwrap();
        sorted(
            db.sql("SELECT o_id, amount FROM orders WHERE date < '2012-04-01'")
                .unwrap()
                .rows,
        )
    };
    let one = collect(1);
    assert_eq!(one, collect(3));
    assert_eq!(one, collect(8));
}

/// DDL end to end: the paper's Figure 1 schema created from SQL, loaded,
/// queried with ORDER BY, and dropped.
#[test]
fn ddl_create_load_query_drop() {
    let db = MppDb::new(4);
    db.sql(
        "CREATE TABLE orders (o_id bigint NOT NULL, amount double, date date NOT NULL) \
         DISTRIBUTED BY (o_id) \
         PARTITION BY RANGE (date) \
         (START ('2012-01-01') END ('2014-01-01') EVERY (1 MONTH))",
    )
    .unwrap();
    let oid = db.catalog().table_by_name("orders").unwrap().oid;
    assert_eq!(db.catalog().table(oid).unwrap().num_leaves(), 24);

    db.sql(
        "INSERT INTO orders VALUES \
         (1, 10.0, '2012-01-05'), (2, 30.0, '2013-11-20'), \
         (3, 20.0, '2013-10-02'), (4, 40.0, '2013-12-31')",
    )
    .unwrap();

    let out = db
        .sql(
            "SELECT o_id, amount FROM orders \
             WHERE date BETWEEN '2013-10-01' AND '2013-12-31' \
             ORDER BY amount DESC LIMIT 2",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0].values()[1], Datum::Float64(40.0));
    assert_eq!(out.rows[1].values()[1], Datum::Float64(30.0));
    assert_eq!(out.stats.parts_scanned_for(oid), 3);

    db.sql("DROP TABLE orders").unwrap();
    assert!(db.sql("SELECT * FROM orders").is_err());
}

/// Multi-level DDL: SUBPARTITION BY builds the Figure 9 hierarchy.
#[test]
fn ddl_multilevel_subpartition() {
    let db = MppDb::new(2);
    db.sql(
        "CREATE TABLE sales (id int, date date NOT NULL, region text NOT NULL) \
         PARTITION BY RANGE (date) \
         (START ('2012-01-01') END ('2013-01-01') EVERY (1 MONTH)) \
         SUBPARTITION BY LIST (region) \
         (PARTITION r1 VALUES ('east'), PARTITION r2 VALUES ('west'))",
    )
    .unwrap();
    let oid = db.catalog().table_by_name("sales").unwrap().oid;
    assert_eq!(db.catalog().table(oid).unwrap().num_leaves(), 24);
    db.sql("INSERT INTO sales VALUES (1, '2012-06-15', 'east'), (2, '2012-06-16', 'west')")
        .unwrap();
    let out = db
        .sql("SELECT count(*) FROM sales WHERE date = '2012-06-15' AND region = 'east'")
        .unwrap();
    assert_eq!(out.rows[0].values()[0], Datum::Int64(1));
    assert_eq!(out.stats.parts_scanned_for(oid), 1);
}

/// ORDER BY is correct across segments: global order after the gather.
#[test]
fn order_by_is_global() {
    let db = MppDb::new(4);
    setup_orders(&db, 500, 77).unwrap();
    let out = db.sql("SELECT o_id FROM orders ORDER BY o_id").unwrap();
    let ids: Vec<i64> = out
        .rows
        .iter()
        .map(|r| r.values()[0].as_i64().unwrap())
        .collect();
    let mut sorted_ids = ids.clone();
    sorted_ids.sort();
    assert_eq!(ids, sorted_ids);
    assert_eq!(ids.len(), 500);
}
