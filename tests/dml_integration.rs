//! DML over partitioned tables: inserts route through `f_T`, updates can
//! move tuples across partitions, deletes honor partition elimination —
//! and the legacy planner's pair-expanded DML plans compute the same
//! effects.

use mppart::common::Datum;
use mppart::testing::{setup_orders, sorted};
use mppart::workloads::{setup_rs, SynthConfig};
use mppart::MppDb;

fn table_rows(db: &MppDb, name: &str) -> Vec<mppart::common::Row> {
    let desc = db.catalog().table_by_name(name).unwrap();
    let mut out = Vec::new();
    for phys in db.storage().physical_tables(desc.oid).unwrap() {
        out.extend(db.storage().scan_all_segments(phys));
    }
    sorted(out)
}

#[test]
fn insert_routes_to_correct_partition() {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 100, 1).unwrap();
    let before = db.storage().row_count(orders).unwrap();
    let out = db
        .sql("INSERT INTO orders VALUES (9001, 42.5, '2013-07-04'), (9002, 10.0, '2012-02-29')")
        .unwrap();
    assert_eq!(out.rows[0].values()[0], Datum::Int64(2));
    assert_eq!(db.storage().row_count(orders).unwrap(), before + 2);

    // The July 2013 row is findable by a one-partition query.
    let q = db
        .sql("SELECT amount FROM orders WHERE date = '2013-07-04' AND o_id = 9001")
        .unwrap();
    assert_eq!(q.rows.len(), 1);
    assert_eq!(q.stats.parts_scanned_for(orders), 1);
}

#[test]
fn insert_outside_all_partitions_fails() {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 10, 2).unwrap();
    let err = db
        .sql("INSERT INTO orders VALUES (1, 1.0, '2031-01-01')")
        .unwrap_err();
    assert_eq!(err.kind(), "no_matching_partition");
    assert_eq!(db.storage().row_count(orders).unwrap(), 10);
}

#[test]
fn delete_uses_partition_elimination() {
    let db = MppDb::new(4);
    let orders = setup_orders(&db, 2_000, 3).unwrap();
    let jan_count = db
        .sql("SELECT count(*) FROM orders WHERE date < '2012-02-01'")
        .unwrap()
        .rows[0]
        .values()[0]
        .as_i64()
        .unwrap();
    let out = db
        .sql("DELETE FROM orders WHERE date < '2012-02-01'")
        .unwrap();
    assert_eq!(out.rows[0].values()[0], Datum::Int64(jan_count));
    // Only the January partition was touched.
    assert_eq!(out.stats.parts_scanned_for(orders), 1);
    let remaining = db.sql("SELECT count(*) FROM orders").unwrap();
    assert_eq!(
        remaining.rows[0].values()[0],
        Datum::Int64(2_000 - jan_count)
    );
    // Nothing left in January.
    let jan = db
        .sql("SELECT count(*) FROM orders WHERE date < '2012-02-01'")
        .unwrap();
    assert_eq!(jan.rows[0].values()[0], Datum::Int64(0));
}

#[test]
fn update_moves_rows_across_partitions() {
    let db = MppDb::new(4);
    setup_orders(&db, 1_000, 4).unwrap();
    let dec_before = db
        .sql("SELECT count(*) FROM orders WHERE date BETWEEN '2013-12-01' AND '2013-12-31'")
        .unwrap()
        .rows[0]
        .values()[0]
        .as_i64()
        .unwrap();
    let jan_before = db
        .sql("SELECT count(*) FROM orders WHERE date BETWEEN '2012-01-01' AND '2012-01-31'")
        .unwrap()
        .rows[0]
        .values()[0]
        .as_i64()
        .unwrap();
    // Move every December 2013 order back to January 2012 — a
    // cross-partition update.
    let out = db
        .sql(
            "UPDATE orders SET date = '2012-01-15' \
             WHERE date BETWEEN '2013-12-01' AND '2013-12-31'",
        )
        .unwrap();
    assert_eq!(out.rows[0].values()[0], Datum::Int64(dec_before));
    let dec_after = db
        .sql("SELECT count(*) FROM orders WHERE date BETWEEN '2013-12-01' AND '2013-12-31'")
        .unwrap()
        .rows[0]
        .values()[0]
        .as_i64()
        .unwrap();
    let jan_after = db
        .sql("SELECT count(*) FROM orders WHERE date BETWEEN '2012-01-01' AND '2012-01-31'")
        .unwrap()
        .rows[0]
        .values()[0]
        .as_i64()
        .unwrap();
    assert_eq!(dec_after, 0);
    assert_eq!(jan_after, jan_before + dec_before);
}

#[test]
fn update_from_join_matches_between_planners() {
    // The paper's §4.4.3 statement: update R set b=S.b from S where R.a=S.a.
    // Run it on two identical databases, once per planner, and compare the
    // final table contents.
    let build = || {
        let db = MppDb::new(3);
        setup_rs(
            db.storage(),
            &SynthConfig {
                r_rows: 300,
                s_rows: 100,
                r_parts: Some(10),
                s_parts: Some(10),
                b_domain: 100,
                a_domain: 50,
                seed: 99,
            },
        )
        .unwrap();
        db
    };
    // NOTE: with duplicate a-values the join picks arbitrary matches, so
    // restrict S to unique a values first for determinism.
    let orca_db = build();
    let legacy_db = build();
    // Deterministic variant: set b to a constant for matched rows.
    let sql = "UPDATE r SET b = 7 FROM s WHERE r.a = s.a AND s.b < 50";
    let a = orca_db.sql(sql).unwrap();
    let b = legacy_db.sql_legacy(sql).unwrap();
    // Legacy expands the update into per-partition-pair joins; matched row
    // multiplicity can differ from Orca's single join when S has duplicate
    // (a) values, so compare the final table states, not the counts.
    let _ = (a, b);
    assert_eq!(table_rows(&orca_db, "r"), table_rows(&legacy_db, "r"));
}

#[test]
fn legacy_dml_executes_correctly() {
    let db = MppDb::new(3);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 200,
            s_rows: 50,
            r_parts: Some(10),
            s_parts: Some(5),
            b_domain: 100,
            a_domain: 40,
            seed: 17,
        },
    )
    .unwrap();
    let before = db.sql("SELECT count(*) FROM r WHERE b >= 90").unwrap().rows[0].values()[0]
        .as_i64()
        .unwrap();
    assert!(before > 0);
    let out = db.sql_legacy("DELETE FROM r WHERE b >= 90").unwrap();
    assert_eq!(out.rows[0].values()[0], Datum::Int64(before));
    let after = db.sql("SELECT count(*) FROM r WHERE b >= 90").unwrap();
    assert_eq!(after.rows[0].values()[0], Datum::Int64(0));
}

#[test]
fn insert_column_subset_defaults_to_null() {
    let db = MppDb::new(2);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 10,
            s_rows: 10,
            r_parts: Some(5),
            s_parts: None,
            b_domain: 50,
            a_domain: 50,
            seed: 1,
        },
    )
    .unwrap();
    // s is unpartitioned; inserting (a) only leaves b NULL.
    db.sql("INSERT INTO s (a) VALUES (999)").unwrap();
    let q = db.sql("SELECT a FROM s WHERE b IS NULL").unwrap();
    assert_eq!(q.rows.len(), 1);
    assert_eq!(q.rows[0].values()[0], Datum::Int32(999));
    // But a NULL partition key on a partitioned table with no default
    // partition is rejected.
    let err = db.sql("INSERT INTO r (a) VALUES (1)").unwrap_err();
    assert_eq!(err.kind(), "no_matching_partition");
}
