//! Negative paths for ALTER TABLE ADD/DROP PARTITION at the `MppDb`
//! level: the statement must fail with the right error kind AND leave the
//! partition tree — and the stored rows — exactly as they were.

use mppart::MppDb;

fn leaf_names(db: &MppDb, table: &str) -> Vec<String> {
    db.catalog()
        .table_by_name(table)
        .unwrap()
        .part_tree()
        .unwrap()
        .leaves()
        .iter()
        .map(|l| l.name.clone())
        .collect()
}

fn setup() -> MppDb {
    let db = MppDb::new(2);
    db.sql(
        "CREATE TABLE m (id int NOT NULL, k int NOT NULL) \
         DISTRIBUTED BY (id) \
         PARTITION BY RANGE (k) (START (0) END (30) EVERY (10))",
    )
    .unwrap();
    db.sql("INSERT INTO m VALUES (1, 5), (2, 15), (3, 25)")
        .unwrap();
    db
}

#[test]
fn drop_nonexistent_partition_is_not_found_and_preserves_state() {
    let db = setup();
    let before = leaf_names(&db, "m");

    let err = db.sql("ALTER TABLE m DROP PARTITION nosuch").unwrap_err();
    assert_eq!(err.kind(), "not_found", "got: {err}");

    assert_eq!(leaf_names(&db, "m"), before);
    let out = db.sql("SELECT id, k FROM m").unwrap();
    assert_eq!(out.rows.len(), 3, "rows must survive the failed ALTER");
}

#[test]
fn drop_last_partition_of_a_level_is_rejected() {
    let db = setup();
    // Dropping down to one partition is legal…
    db.sql("ALTER TABLE m DROP PARTITION p1").unwrap();
    db.sql("ALTER TABLE m DROP PARTITION p2").unwrap();
    let before = leaf_names(&db, "m");
    assert_eq!(before.len(), 1);

    // …but a level may never become empty.
    let err = db.sql("ALTER TABLE m DROP PARTITION p0").unwrap_err();
    assert_eq!(err.kind(), "invalid_metadata", "got: {err}");

    assert_eq!(leaf_names(&db, "m"), before);
    let out = db.sql("SELECT id FROM m WHERE k < 10").unwrap();
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn add_partition_with_default_present_is_rejected() {
    let db = MppDb::new(2);
    db.sql(
        "CREATE TABLE cust (id int NOT NULL, region text NOT NULL) \
         DISTRIBUTED BY (id) \
         PARTITION BY LIST (region) \
         (PARTITION north VALUES ('NY'), DEFAULT PARTITION other)",
    )
    .unwrap();
    let before = leaf_names(&db, "cust");

    // The default already captures every remaining value; adding a
    // partition would silently steal rows from it.
    let err = db
        .sql("ALTER TABLE cust ADD PARTITION south VALUES ('TX')")
        .unwrap_err();
    assert_eq!(err.kind(), "invalid_metadata", "got: {err}");
    assert_eq!(leaf_names(&db, "cust"), before);

    // Dropping the default lifts the restriction.
    db.sql("ALTER TABLE cust DROP PARTITION other").unwrap();
    db.sql("ALTER TABLE cust ADD PARTITION south VALUES ('TX')")
        .unwrap();
    assert_eq!(leaf_names(&db, "cust"), vec!["north", "south"]);
}

#[test]
fn duplicate_partition_name_is_rejected_before_the_default_check() {
    let db = MppDb::new(2);
    db.sql(
        "CREATE TABLE cust (id int NOT NULL, region text NOT NULL) \
         DISTRIBUTED BY (id) \
         PARTITION BY LIST (region) \
         (PARTITION north VALUES ('NY'), DEFAULT PARTITION other)",
    )
    .unwrap();

    let err = db
        .sql("ALTER TABLE cust ADD PARTITION north VALUES ('TX')")
        .unwrap_err();
    assert_eq!(err.kind(), "duplicate", "got: {err}");
}
