//! Optimizer-level integration: plan shapes, plan-size scaling (the
//! Figure 18 claims), memo-vs-pipeline agreement, and §3.1 validity of
//! every plan the optimizers emit.

use mppart::core::validate_selector_pairing;
use mppart::core::{Optimizer, OptimizerConfig};
use mppart::plan::{plan_node_count, plan_size_bytes, PhysicalPlan};
use mppart::testing::{approx_same_bag, setup_orders};
use mppart::workloads::{
    setup_lineitem, setup_rs, setup_tpcds, tpcds_workload, LineitemConfig, SynthConfig, TpcdsConfig,
};
use mppart::MppDb;

/// Figure 18(a): with static elimination, Orca's plan size is flat in the
/// fraction of partitions scanned, the legacy planner's grows linearly.
#[test]
fn fig18a_static_plan_size_scaling() {
    let db = MppDb::new(4);
    setup_lineitem(
        db.storage(),
        &LineitemConfig {
            rows: 500,
            parts: Some(361),
            ..LineitemConfig::default()
        },
    )
    .unwrap();
    let mut orca_sizes = Vec::new();
    let mut legacy_sizes = Vec::new();
    // l_shipdate thresholds selecting ~1%, 25%, 50%, 75%, 100% of parts.
    for pct in [1, 25, 50, 75, 100] {
        let cutoff_year = 1992 + (7 * pct) / 100;
        let cutoff_month = 1 + ((7 * pct) % 100) * 12 / 100;
        let sql = format!(
            "SELECT * FROM lineitem WHERE l_shipdate < '{:04}-{:02}-01'",
            cutoff_year,
            cutoff_month.min(12)
        );
        orca_sizes.push(plan_size_bytes(&db.plan(&sql).unwrap()));
        legacy_sizes.push(plan_size_bytes(&db.plan_legacy(&sql).unwrap()));
    }
    // Orca: flat (identical plans except the literal).
    let orca_spread = orca_sizes.iter().max().unwrap() - orca_sizes.iter().min().unwrap();
    assert!(
        orca_spread < 16,
        "orca plan size should be constant: {orca_sizes:?}"
    );
    // Legacy: grows with the percentage.
    assert!(
        legacy_sizes[4] > legacy_sizes[0] * 20,
        "legacy should grow linearly: {legacy_sizes:?}"
    );
    // And at 100% the legacy plan dwarfs Orca's.
    assert!(legacy_sizes[4] > orca_sizes[4] * 50);
}

/// Figure 18(b): with join-driven (dynamic) elimination the legacy plan
/// grows with the *total* partition count; Orca's stays flat.
#[test]
fn fig18b_dynamic_plan_size_scaling() {
    let sizes = |parts: usize| {
        let db = MppDb::new(4);
        setup_rs(
            db.storage(),
            &SynthConfig {
                r_parts: Some(parts),
                s_parts: None,
                r_rows: 100,
                s_rows: 50,
                ..SynthConfig::default()
            },
        )
        .unwrap();
        let sql = "SELECT * FROM s, r WHERE r.b = s.b AND s.a < 100";
        (
            plan_size_bytes(&db.plan(sql).unwrap()),
            plan_size_bytes(&db.plan_legacy(sql).unwrap()),
        )
    };
    let (orca_50, legacy_50) = sizes(50);
    let (orca_300, legacy_300) = sizes(300);
    assert!(
        orca_300 < orca_50 + 16,
        "orca flat: {orca_50} -> {orca_300}"
    );
    assert!(
        legacy_300 > legacy_50 * 4,
        "legacy linear: {legacy_50} -> {legacy_300}"
    );
}

/// Figure 18(c): DML over two partitioned tables — quadratic for the
/// legacy planner, flat for Orca.
#[test]
fn fig18c_dml_plan_size_scaling() {
    let counts = |parts: usize| {
        let db = MppDb::new(4);
        setup_rs(
            db.storage(),
            &SynthConfig {
                r_parts: Some(parts),
                s_parts: Some(parts),
                r_rows: 50,
                s_rows: 50,
                ..SynthConfig::default()
            },
        )
        .unwrap();
        let sql = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a";
        (
            plan_node_count(&db.plan(sql).unwrap()),
            plan_node_count(&db.plan_legacy(sql).unwrap()),
        )
    };
    let (orca_10, legacy_10) = counts(10);
    let (orca_20, legacy_20) = counts(20);
    assert_eq!(orca_10, orca_20, "orca DML plans are partition-count-free");
    assert!(
        legacy_20 as f64 > legacy_10 as f64 * 3.2,
        "legacy quadratic: {legacy_10} -> {legacy_20}"
    );
}

/// Every workload plan both optimizers emit satisfies the §3.1 pairing
/// rules (when it contains dynamic scans at all).
#[test]
fn all_workload_plans_validate() {
    let db = MppDb::new(4);
    setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 500,
            parts_per_fact: 8,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    for q in tpcds_workload() {
        let plan = db.plan(q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.name));
        validate_selector_pairing(&plan).unwrap_or_else(|e| panic!("{}: {e}", q.name));
    }
}

/// The Memo path and the deterministic pipeline must agree on results.
#[test]
fn memo_and_pipeline_agree_on_results() {
    let pipeline_db = MppDb::new(4);
    setup_tpcds(
        pipeline_db.storage(),
        &TpcdsConfig {
            fact_rows: 2_000,
            parts_per_fact: 12,
            seed: 5,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    let memo_db = MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        use_memo: true,
        ..OptimizerConfig::default()
    });
    setup_tpcds(
        memo_db.storage(),
        &TpcdsConfig {
            fact_rows: 2_000,
            parts_per_fact: 12,
            seed: 5,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    for q in tpcds_workload() {
        if !q.params.is_empty() {
            continue; // same coverage, simpler harness
        }
        let a = pipeline_db
            .sql(q.sql)
            .unwrap_or_else(|e| panic!("{} pipeline: {e}", q.name));
        let b = memo_db
            .sql(q.sql)
            .unwrap_or_else(|e| panic!("{} memo: {e}", q.name));
        assert!(
            approx_same_bag(a.rows, b.rows),
            "{}: memo and pipeline disagree",
            q.name
        );
    }
}

/// The memo also eliminates partitions on the flagship dynamic case.
#[test]
fn memo_eliminates_partitions() {
    let db = MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        use_memo: true,
        ..OptimizerConfig::default()
    });
    let t = setup_tpcds(
        db.storage(),
        &TpcdsConfig {
            fact_rows: 2_000,
            parts_per_fact: 24,
            ..TpcdsConfig::default()
        },
    )
    .unwrap();
    let out = db
        .sql(
            "SELECT count(*) FROM store_sales WHERE ss_date_id IN \
             (SELECT d_id FROM date_dim WHERE d_year = 2013 AND d_month = 12)",
        )
        .unwrap();
    assert!(
        out.stats.parts_scanned_for(t.facts[0].1) <= 2,
        "memo DPE should prune december to ≤2 parts, got {}",
        out.stats.parts_scanned_for(t.facts[0].1)
    );
}

/// Disabling partition selection (Figure 17's baseline) keeps results
/// identical but scans every partition.
#[test]
fn disabled_selection_scans_everything_but_agrees() {
    let on = MppDb::new(4);
    let orders_on = setup_orders(&on, 2_000, 21).unwrap();
    let off = MppDb::with_config(OptimizerConfig {
        num_segments: 4,
        enable_partition_selection: false,
        ..OptimizerConfig::default()
    });
    let orders_off = setup_orders(&off, 2_000, 21).unwrap();

    let sql = "SELECT count(*) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'";
    let a = on.sql(sql).unwrap();
    let b = off.sql(sql).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.stats.parts_scanned_for(orders_on), 3);
    assert_eq!(b.stats.parts_scanned_for(orders_off), 24);
    assert!(b.stats.tuples_scanned > a.stats.tuples_scanned * 5);
}

/// The optimizer is deterministic: same statement, same plan.
#[test]
fn planning_is_deterministic() {
    let db = MppDb::new(4);
    setup_rs(db.storage(), &SynthConfig::default()).unwrap();
    let sql = "SELECT count(*) FROM s, r WHERE r.b = s.b AND s.a < 100";
    let p1 = db.plan(sql).unwrap();
    let p2 = db.plan(sql).unwrap();
    // Colref ids differ between bindings; compare shapes via explain with
    // ids stripped.
    let strip = |p: &PhysicalPlan| {
        mppart::plan::explain(p)
            .chars()
            .filter(|c| !c.is_ascii_digit())
            .collect::<String>()
    };
    assert_eq!(strip(&p1), strip(&p2));
}

/// Plans from a standalone `Optimizer` (no MppDb) work too — the library
/// API is usable without the facade.
#[test]
fn standalone_optimizer_api() {
    let db = MppDb::new(2);
    setup_rs(db.storage(), &SynthConfig::default()).unwrap();
    let opt = Optimizer::new(db.catalog().clone(), OptimizerConfig::default());
    let gen = mppart::expr::ColRefGenerator::starting_at(10_000);
    let bound = mppart::sql::plan_sql("SELECT * FROM r WHERE b < 50", db.catalog(), &gen).unwrap();
    let plan = opt.optimize(&bound.plan).unwrap();
    validate_selector_pairing(&plan).unwrap();
    assert!(plan.count_op("PartitionSelector") == 1);
}
