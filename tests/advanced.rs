//! Advanced scenarios: multi-level dynamic elimination, outer/anti joins
//! with NULLs, legacy-planner parameter behaviour, memo-path DML mixing,
//! and failure injection.

use mppart::common::{Datum, Row};
use mppart::core::OptimizerConfig;
use mppart::plan::PhysicalPlan;
use mppart::testing::{approx_same_bag, setup_orders_multilevel, sorted};
use mppart::workloads::{setup_rs, setup_tpcds, SynthConfig, TpcdsConfig};
use mppart::MppDb;

/// Dynamic elimination composes with a static predicate on another level:
/// the join prunes the date level while the region predicate prunes the
/// region level of the same multi-level table.
#[test]
fn multilevel_mixed_static_and_dynamic_elimination() {
    let db = MppDb::new(4);
    let regions = ["Region 1", "Region 2", "Region 3"];
    let t = setup_orders_multilevel(&db, &regions, 6_000, 13).unwrap();
    // A tiny dimension keyed by date, to drive join-based elimination.
    db.sql("CREATE TABLE promo (p_date date NOT NULL, p_name text)")
        .unwrap();
    db.sql(
        "INSERT INTO promo VALUES \
         ('2012-03-15', 'spring'), ('2012-03-20', 'spring2')",
    )
    .unwrap();

    // With the dimension written first, the fact lands on the join's
    // inner side and the §2.3 algorithm plants a DPE selector on the
    // outer side. Both promo dates are in March 2012: 1 month × 1 region
    // = exactly 1 of 72 leaves.
    let out = db
        .sql(
            "SELECT count(*) FROM promo, orders_ml \
             WHERE date = p_date AND region = 'Region 2'",
        )
        .unwrap();
    assert_eq!(
        out.stats.parts_scanned_for(t),
        1,
        "date level pruned dynamically, region level statically"
    );

    // Written the other way, the deterministic pipeline keeps the fact on
    // the outer side (no DPE possible there) — join commutativity is the
    // Memo's job, and the IN-subquery rewrite handles it too:
    let brute = db
        .sql(
            "SELECT count(*) FROM orders_ml \
             WHERE region = 'Region 2' AND \
             date IN (SELECT p_date FROM promo)",
        )
        .unwrap();
    assert_eq!(out.rows, brute.rows);
    assert_eq!(
        brute.stats.parts_scanned_for(t),
        1,
        "semi-join rewrite prunes too"
    );
}

/// NOT IN over a partitioned table: anti-join semantics with no partition
/// loss.
#[test]
fn not_in_anti_join() {
    let db = MppDb::new(3);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 300,
            s_rows: 40,
            r_parts: Some(10),
            s_parts: None,
            b_domain: 100,
            a_domain: 100,
            seed: 5,
        },
    )
    .unwrap();
    let anti = db
        .sql("SELECT count(*) FROM r WHERE b NOT IN (SELECT b FROM s)")
        .unwrap();
    let semi = db
        .sql("SELECT count(*) FROM r WHERE b IN (SELECT b FROM s)")
        .unwrap();
    let total = db.sql("SELECT count(*) FROM r").unwrap();
    let (a, s, t) = (
        anti.rows[0].values()[0].as_i64().unwrap(),
        semi.rows[0].values()[0].as_i64().unwrap(),
        total.rows[0].values()[0].as_i64().unwrap(),
    );
    assert_eq!(a + s, t, "anti + semi = all (no NULL keys in r/s)");
    // Legacy agrees.
    let anti_legacy = db
        .sql_legacy("SELECT count(*) FROM r WHERE b NOT IN (SELECT b FROM s)")
        .unwrap();
    assert_eq!(anti.rows, anti_legacy.rows);
}

/// LEFT OUTER JOIN with NULL extension across motions.
#[test]
fn left_outer_join_null_extension() {
    let db = MppDb::new(4);
    db.sql("CREATE TABLE l (id int NOT NULL, v int)").unwrap();
    db.sql("CREATE TABLE r2 (id int NOT NULL, w int)").unwrap();
    db.sql("INSERT INTO l VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    db.sql("INSERT INTO r2 VALUES (1, 100), (1, 101), (3, 300)")
        .unwrap();
    let out = db
        .sql("SELECT l.id AS id, w FROM l LEFT OUTER JOIN r2 ON l.id = r2.id ORDER BY id")
        .unwrap();
    // id 1 matches twice, id 2 null-extends, id 3 matches once.
    assert_eq!(out.rows.len(), 4);
    let nulls: Vec<i64> = out
        .rows
        .iter()
        .filter(|r| r.values()[1].is_null())
        .map(|r| r.values()[0].as_i64().unwrap())
        .collect();
    assert_eq!(nulls, vec![2]);
    // Legacy agrees.
    let legacy = db
        .sql_legacy("SELECT l.id AS id, w FROM l LEFT OUTER JOIN r2 ON l.id = r2.id ORDER BY id")
        .unwrap();
    assert_eq!(sorted(out.rows), sorted(legacy.rows));
}

/// The legacy planner executes parameterized queries correctly — it just
/// cannot prune for them (scans every listed partition).
#[test]
fn legacy_params_scan_everything_but_agree() {
    let db = MppDb::new(4);
    let (r, _) = setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 500,
            s_rows: 10,
            r_parts: Some(20),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed: 8,
        },
    )
    .unwrap();
    let sql = "SELECT count(*) FROM r WHERE b = $1";
    let params = [Datum::Int32(42)];
    let orca = db.sql_with_params(sql, &params).unwrap();
    let legacy = db.sql_legacy_with_params(sql, &params).unwrap();
    assert_eq!(orca.rows, legacy.rows);
    assert_eq!(
        orca.stats.parts_scanned_for(r),
        1,
        "orca prunes at run time"
    );
    assert_eq!(
        legacy.stats.parts_scanned_for(r),
        20,
        "legacy listed and scanned everything"
    );
}

/// Memo path handles the full workload end to end including partition
/// statistics (not just plan shapes).
#[test]
fn memo_workload_prunes_like_pipeline() {
    let mk = |use_memo| {
        let db = MppDb::with_config(OptimizerConfig {
            num_segments: 4,
            use_memo,
            ..OptimizerConfig::default()
        });
        setup_tpcds(
            db.storage(),
            &TpcdsConfig {
                fact_rows: 1_500,
                parts_per_fact: 12,
                seed: 44,
                ..TpcdsConfig::default()
            },
        )
        .unwrap();
        db
    };
    let pipeline = mk(false);
    let memo = mk(true);
    let sql = "SELECT count(*) FROM date_dim, store_sales \
               WHERE d_id = ss_date_id AND d_year = 2012 AND d_month = 4";
    let a = pipeline.sql(sql).unwrap();
    let b = memo.sql(sql).unwrap();
    assert_eq!(a.rows, b.rows);
    let ss_a = pipeline.catalog().table_by_name("store_sales").unwrap().oid;
    let ss_b = memo.catalog().table_by_name("store_sales").unwrap().oid;
    assert!(a.stats.parts_scanned_for(ss_a) <= 2);
    assert!(b.stats.parts_scanned_for(ss_b) <= 2);
}

/// Failure injection: a hand-built plan whose selector is cut off by a
/// Motion fails cleanly at the §3.1 runtime check — no wrong results.
#[test]
fn invalid_plan_fails_at_runtime_not_silently() {
    let db = MppDb::new(4);
    let (r, s) = setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 100,
            s_rows: 10,
            r_parts: Some(10),
            s_parts: None,
            b_domain: 100,
            a_domain: 100,
            seed: 2,
        },
    )
    .unwrap();
    use mppart::expr::{ColRef, Expr};
    use mppart::plan::{JoinType, MotionKind};
    let (sa, sb) = (ColRef::new(101, "sa"), ColRef::new(102, "sb"));
    let (ra, rb) = (ColRef::new(103, "ra"), ColRef::new(104, "rb"));
    let _ = ra;
    // Selector on the outer side, but the scan is behind a Redistribute:
    // the propagated OIDs never reach the scan's process.
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Gather,
        child: Box::new(PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(sb.clone())],
            right_keys: vec![Expr::col(rb.clone())],
            residual: None,
            left: Box::new(PhysicalPlan::PartitionSelector {
                table: r,
                table_name: "r".into(),
                part_scan_id: mppart::common::PartScanId(1),
                part_keys: vec![rb.clone()],
                predicates: vec![Some(Expr::eq(Expr::col(rb.clone()), Expr::col(sb.clone())))],
                child: Some(Box::new(PhysicalPlan::TableScan {
                    table: s,
                    table_name: "s".into(),
                    output: vec![sa, sb],
                    filter: None,
                })),
            }),
            right: Box::new(PhysicalPlan::Motion {
                kind: MotionKind::Redistribute(vec![ColRef::new(103, "ra")]),
                child: Box::new(PhysicalPlan::DynamicScan {
                    table: r,
                    table_name: "r".into(),
                    part_scan_id: mppart::common::PartScanId(1),
                    output: vec![ColRef::new(103, "ra"), rb],
                    filter: None,
                    restrict: None,
                }),
            }),
        }),
    };
    // Static validation rejects it…
    assert!(mppart::core::validate_selector_pairing(&plan).is_err());
    // …and so does the executor, with a targeted error.
    let err = mppart::executor::execute(db.storage(), &plan).unwrap_err();
    assert_eq!(err.kind(), "invalid_plan");
}

/// EXPLAIN on DML statements shows the plan instead of mutating data.
#[test]
fn explain_dml_is_side_effect_free() {
    let db = MppDb::new(2);
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 50,
            s_rows: 10,
            r_parts: Some(5),
            s_parts: None,
            b_domain: 50,
            a_domain: 50,
            seed: 1,
        },
    )
    .unwrap();
    let before = db
        .storage()
        .row_count(db.catalog().table_by_name("r").unwrap().oid)
        .unwrap();
    let out = db.sql("EXPLAIN DELETE FROM r WHERE b < 25").unwrap();
    assert!(out
        .rows
        .iter()
        .any(|r| r.values()[0].as_str().unwrap().contains("Delete")));
    let after = db
        .storage()
        .row_count(db.catalog().table_by_name("r").unwrap().oid)
        .unwrap();
    assert_eq!(before, after, "EXPLAIN must not execute the DML");
}

/// Same query, wildly different segment counts, identical aggregates —
/// including float sums (within tolerance).
#[test]
fn aggregates_stable_across_cluster_sizes() {
    let run = |segments| {
        let db = MppDb::new(segments);
        setup_tpcds(
            db.storage(),
            &TpcdsConfig {
                fact_rows: 1_000,
                parts_per_fact: 6,
                seed: 99,
                ..TpcdsConfig::default()
            },
        )
        .unwrap();
        db.sql(
            "SELECT ss_item_id, count(*), sum(ss_amount) FROM store_sales \
             WHERE ss_date_id < 100 GROUP BY ss_item_id",
        )
        .unwrap()
        .rows
    };
    let one: Vec<Row> = run(1);
    assert!(approx_same_bag(one.clone(), run(4)));
    assert!(approx_same_bag(one, run(7)));
}
