//! Property-based equivalence: over random data and random predicates,
//! the Orca-style optimizer, the Memo path, the legacy planner and a
//! brute-force reference must all return the same rows — partition
//! elimination must never change results, only work done.

use mppart::common::{Datum, Row};
use mppart::core::OptimizerConfig;
use mppart::testing::{approx_same_bag, sorted};
use mppart::workloads::{setup_nullable, setup_rs, setup_skewed, SynthConfig};
use mppart::{ExecMode, MppDb, Planner, SchedConfig, SchedPolicy};
use proptest::prelude::*;

/// A randomly generated single-table predicate over `b` (the partition
/// key) and `a`, rendered as SQL and as a closure for brute force.
#[derive(Debug, Clone)]
enum Pred {
    Cmp(&'static str, i32, bool /* on partition key b */),
    Between(i32, i32, bool),
    InList(Vec<i32>, bool),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn to_sql(&self) -> String {
        match self {
            Pred::Cmp(op, v, on_b) => {
                format!("{} {op} {v}", if *on_b { "b" } else { "a" })
            }
            Pred::Between(lo, hi, on_b) => {
                format!("{} BETWEEN {lo} AND {hi}", if *on_b { "b" } else { "a" })
            }
            Pred::InList(vals, on_b) => format!(
                "{} IN ({})",
                if *on_b { "b" } else { "a" },
                vals.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Pred::And(l, r) => format!("({} AND {})", l.to_sql(), r.to_sql()),
            Pred::Or(l, r) => format!("({} OR {})", l.to_sql(), r.to_sql()),
            Pred::Not(p) => format!("NOT {}", p.to_sql()),
        }
    }

    fn eval(&self, a: i32, b: i32) -> bool {
        match self {
            Pred::Cmp(op, v, on_b) => {
                let x = if *on_b { b } else { a };
                match *op {
                    "=" => x == *v,
                    "<" => x < *v,
                    "<=" => x <= *v,
                    ">" => x > *v,
                    ">=" => x >= *v,
                    "<>" => x != *v,
                    _ => unreachable!(),
                }
            }
            Pred::Between(lo, hi, on_b) => {
                let x = if *on_b { b } else { a };
                x >= *lo && x <= *hi
            }
            Pred::InList(vals, on_b) => {
                let x = if *on_b { b } else { a };
                vals.contains(&x)
            }
            Pred::And(l, r) => l.eval(a, b) && r.eval(a, b),
            Pred::Or(l, r) => l.eval(a, b) || r.eval(a, b),
            Pred::Not(p) => !p.eval(a, b),
        }
    }
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (
            prop_oneof![
                Just("="),
                Just("<"),
                Just("<="),
                Just(">"),
                Just(">="),
                Just("<>")
            ],
            0..200i32,
            any::<bool>()
        )
            .prop_map(|(op, v, on_b)| Pred::Cmp(op, v, on_b)),
        (0..200i32, 0..200i32, any::<bool>())
            .prop_map(|(x, y, on_b)| { Pred::Between(x.min(y), x.max(y), on_b) }),
        (prop::collection::vec(0..200i32, 1..5), any::<bool>())
            .prop_map(|(vals, on_b)| Pred::InList(vals, on_b)),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Pred::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Pred::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

/// Brute-force reference: filter every stored row.
fn brute_force(db: &MppDb, table: &str, pred: &Pred) -> Vec<Row> {
    let desc = db.catalog().table_by_name(table).unwrap();
    let mut out = Vec::new();
    for phys in db.storage().physical_tables(desc.oid).unwrap() {
        for row in db.storage().scan_all_segments(phys) {
            let a = row.values()[0].as_i64().unwrap() as i32;
            let b = row.values()[1].as_i64().unwrap() as i32;
            if pred.eval(a, b) {
                out.push(row);
            }
        }
    }
    out
}

fn fresh_db(seed: u64, use_memo: bool) -> MppDb {
    let db = MppDb::with_config(OptimizerConfig {
        num_segments: 3,
        use_memo,
        ..OptimizerConfig::default()
    });
    setup_rs(
        db.storage(),
        &SynthConfig {
            r_rows: 400,
            s_rows: 150,
            r_parts: Some(20),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed,
        },
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selection over the partition key: optimized result == brute force,
    /// for the pipeline, the memo and the legacy planner alike.
    #[test]
    fn selection_equivalence(pred in arb_pred(), seed in 0u64..100) {
        let db = fresh_db(seed, false);
        let sql = format!("SELECT * FROM r WHERE {}", pred.to_sql());
        let expected = sorted(brute_force(&db, "r", &pred));

        let orca = db.sql(&sql).unwrap();
        prop_assert_eq!(sorted(orca.rows), expected.clone());

        let legacy = db.sql_legacy(&sql).unwrap();
        prop_assert_eq!(sorted(legacy.rows), expected.clone());

        let memo_db = fresh_db(seed, true);
        let memo = memo_db.sql(&sql).unwrap();
        prop_assert_eq!(sorted(memo.rows), expected);
    }

    /// Join on the partition key (dynamic elimination): all planners match
    /// the brute-force join.
    #[test]
    fn join_equivalence(cutoff in 0i32..200, seed in 0u64..50) {
        let db = fresh_db(seed, false);
        let sql = format!(
            "SELECT count(*) FROM s, r WHERE r.b = s.b AND s.a < {cutoff}"
        );
        // Brute force.
        let r_rows = brute_force(&db, "r", &Pred::Cmp(">=", i32::MIN + 1, false));
        let s_rows = brute_force(&db, "s", &Pred::Cmp("<", cutoff, false));
        let mut expected = 0i64;
        for s in &s_rows {
            for r in &r_rows {
                if r.values()[1] == s.values()[1] {
                    expected += 1;
                }
            }
        }
        let orca = db.sql(&sql).unwrap();
        prop_assert_eq!(&orca.rows[0].values()[0], &Datum::Int64(expected));
        let legacy = db.sql_legacy(&sql).unwrap();
        prop_assert_eq!(&legacy.rows[0].values()[0], &Datum::Int64(expected));
        let memo_db = fresh_db(seed, true);
        let memo = memo_db.sql(&sql).unwrap();
        prop_assert_eq!(&memo.rows[0].values()[0], &Datum::Int64(expected));
    }

    /// Partition elimination soundness: the pruned scan never loses rows
    /// relative to the selection-disabled configuration.
    #[test]
    fn pruning_never_loses_rows(pred in arb_pred(), seed in 0u64..50) {
        let on = fresh_db(seed, false);
        let off = MppDb::with_config(OptimizerConfig {
            num_segments: 3,
            enable_partition_selection: false,
            ..OptimizerConfig::default()
        });
        setup_rs(
            off.storage(),
            &SynthConfig {
                r_rows: 400,
                s_rows: 150,
                r_parts: Some(20),
                s_parts: None,
                b_domain: 200,
                a_domain: 200,
                seed,
            },
        )
        .unwrap();
        let sql = format!("SELECT * FROM r WHERE {}", pred.to_sql());
        let pruned = on.sql(&sql).unwrap();
        let full = off.sql(&sql).unwrap();
        prop_assert!(approx_same_bag(pruned.rows, full.rows));
    }

    /// Aggregates agree between planners on random group-by queries.
    #[test]
    fn aggregate_equivalence(cutoff in 0i32..200, seed in 0u64..50) {
        let db = fresh_db(seed, false);
        let sql = format!(
            "SELECT a, count(*), sum(b), min(b), max(b) FROM r WHERE b < {cutoff} GROUP BY a"
        );
        let orca = db.sql(&sql).unwrap();
        let legacy = db.sql_legacy(&sql).unwrap();
        prop_assert!(approx_same_bag(orca.rows, legacy.rows));
    }
}

/// Two databases over the identical random schema and data, one per
/// execution mode.
fn mode_pair(segs: usize, parts: usize, seed: u64) -> (MppDb, MppDb) {
    let cfg = SynthConfig {
        r_rows: 300,
        s_rows: 120,
        r_parts: Some(parts),
        s_parts: None,
        b_domain: 200,
        a_domain: 200,
        seed,
    };
    let seq = MppDb::with_config(OptimizerConfig {
        num_segments: segs,
        ..OptimizerConfig::default()
    });
    setup_rs(seq.storage(), &cfg).unwrap();
    let par = MppDb::with_config(OptimizerConfig {
        num_segments: segs,
        ..OptimizerConfig::default()
    })
    .with_exec_mode(ExecMode::Parallel);
    setup_rs(par.storage(), &cfg).unwrap();
    (seq, par)
}

/// Assert the two modes returned the same multiset of rows and did the
/// same partition-elimination work.
fn assert_modes_agree(
    seq: &MppDb,
    par: &MppDb,
    sql: &str,
    params: &[Datum],
) -> Result<(), TestCaseError> {
    let s = seq.sql_with_params(sql, params).unwrap();
    let p = par.sql_with_params(sql, params).unwrap();
    prop_assert_eq!(sorted(s.rows), sorted(p.rows), "rows differ for {}", sql);
    prop_assert_eq!(
        &s.stats.parts_scanned,
        &p.stats.parts_scanned,
        "parts_scanned differ for {}",
        sql
    );
    prop_assert_eq!(
        s.stats.tuples_scanned,
        p.stats.tuples_scanned,
        "tuples_scanned differ for {}",
        sql
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole equivalence: per-segment parallel slice execution is
    /// observationally identical to the sequential interpreter — same
    /// multiset of rows, identical `parts_scanned` — over random
    /// schemas (segment count, partition count) and random predicates.
    #[test]
    fn parallel_matches_sequential_on_selections(
        pred in arb_pred(),
        seed in 0u64..100,
        parts in 1usize..24,
        segs in 1usize..5,
    ) {
        let (seq, par) = mode_pair(segs, parts, seed);
        let sql = format!("SELECT * FROM r WHERE {}", pred.to_sql());
        assert_modes_agree(&seq, &par, &sql, &[])?;
    }

    /// Nullable typed columns (validity bitmaps): three-valued predicate
    /// logic, NULL-skipping aggregates, and NULL group keys must behave
    /// identically under sequential and parallel execution, on both
    /// planners' plans.
    #[test]
    fn parallel_matches_sequential_on_nullable_columns(
        cutoff in 0i32..200,
        null_pct in prop_oneof![Just(0u32), Just(10), Just(50)],
        seed in 0u64..50,
        parts in 1usize..16,
    ) {
        let cfg = SynthConfig {
            r_rows: 300,
            s_rows: 0,
            r_parts: Some(parts),
            s_parts: None,
            b_domain: 200,
            a_domain: 200,
            seed,
        };
        let mk = |mode| {
            let db = MppDb::with_config(OptimizerConfig {
                num_segments: 3,
                ..OptimizerConfig::default()
            })
            .with_exec_mode(mode);
            setup_nullable(db.storage(), "rn", &cfg, null_pct).unwrap();
            db
        };
        let (seq, par) = (mk(ExecMode::Sequential), mk(ExecMode::Parallel));
        for sql in [
            format!("SELECT * FROM rn WHERE v < {cutoff} OR v IS NULL"),
            format!("SELECT * FROM rn WHERE v IS NOT NULL AND b < {cutoff}"),
            format!("SELECT b, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v) \
                     FROM rn WHERE a < {cutoff} GROUP BY b"),
            "SELECT v, COUNT(*) FROM rn GROUP BY v".to_string(),
        ] {
            assert_modes_agree(&seq, &par, &sql, &[])?;
        }
    }

    /// Joins exercise Motion staging and dynamic partition elimination;
    /// both modes must agree there too.
    #[test]
    fn parallel_matches_sequential_on_joins(
        cutoff in 0i32..200,
        seed in 0u64..50,
        segs in 1usize..5,
    ) {
        let (seq, par) = mode_pair(segs, 16, seed);
        let sql = format!(
            "SELECT count(*) FROM s, r WHERE r.b = s.b AND s.a < {cutoff}"
        );
        assert_modes_agree(&seq, &par, &sql, &[])?;
    }

    /// Prepared-statement parameters (paper §4.1): partition selection
    /// driven by `$1` behaves identically under both modes, on the
    /// Orca-style and the legacy (init-plan OID gate) paths.
    #[test]
    fn parallel_matches_sequential_with_params(
        v in 0i32..200,
        hi in 0i32..200,
        seed in 0u64..50,
    ) {
        let (seq, par) = mode_pair(4, 20, seed);
        let params = [Datum::Int32(v), Datum::Int32(hi)];
        assert_modes_agree(
            &seq,
            &par,
            "SELECT * FROM r WHERE b = $1 OR b > $2",
            &params,
        )?;

        // Legacy planner path: Append of gated PartScans behind an
        // InitPlanOids OID-set parameter. One `$n`, so exactly one datum.
        let sql = "SELECT count(*) FROM r WHERE b < $1";
        let one = [Datum::Int32(v)];
        let s = seq.sql_legacy_with_params(sql, &one).unwrap();
        let p = par.sql_legacy_with_params(sql, &one).unwrap();
        prop_assert_eq!(sorted(s.rows), sorted(p.rows));
        prop_assert_eq!(&s.stats.parts_scanned, &p.stats.parts_scanned);
    }

    /// The morsel scheduler's worker count is invisible to results: over
    /// heavily skewed data (one partition holding ~90% of the rows),
    /// every worker count returns the identical multiset of rows, does
    /// the identical partition-elimination work and surfaces the
    /// identical error outcome as the per-segment baseline, on both
    /// planners and both exec modes.
    #[test]
    fn worker_count_is_invisible_on_skewed_data(
        seed in 0u64..20,
        cutoff in 20i32..180,
        k in 1i32..24,
    ) {
        let mk = |sched: SchedConfig, mode: ExecMode| {
            let db = MppDb::with_config(OptimizerConfig {
                num_segments: 4,
                ..OptimizerConfig::default()
            })
            .with_exec_mode(mode)
            .with_sched_config(sched);
            let cfg = SynthConfig {
                r_rows: 400,
                s_rows: 0,
                r_parts: Some(12),
                s_parts: None,
                b_domain: 200,
                a_domain: 200,
                seed,
            };
            setup_skewed(db.storage(), "r", &cfg, 90, 0).unwrap();
            db
        };
        let queries = [
            format!("SELECT * FROM r WHERE a < {cutoff}"),
            format!("SELECT b, count(*), sum(a), min(a), max(a) FROM r WHERE a < {cutoff} GROUP BY b"),
            // Division by zero on some rows (whenever a % k hits 0).
            format!("SELECT 100 / (a % {k}) FROM r WHERE b < {cutoff}"),
        ];
        let baseline = mk(
            SchedConfig { policy: SchedPolicy::PerSegment, ..SchedConfig::default() },
            ExecMode::Sequential,
        );
        for workers in [1usize, 2, 4, 8] {
            for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                let db = mk(
                    SchedConfig {
                        workers: Some(workers),
                        policy: SchedPolicy::Morsel,
                        // Small morsels so skewed partitions split into many.
                        morsel_rows: 48,
                    },
                    mode,
                );
                for sql in &queries {
                    for planner in [Planner::Orca, Planner::Legacy] {
                        let want = baseline.run_sql(sql, &[], planner);
                        let got = db.run_sql(sql, &[], planner);
                        match (want, got) {
                            (Ok(w), Ok(g)) => {
                                prop_assert_eq!(
                                    sorted(w.rows), sorted(g.rows),
                                    "rows differ: {} w={} {:?} {:?}", sql, workers, mode, planner
                                );
                                prop_assert_eq!(
                                    &w.stats.parts_scanned, &g.stats.parts_scanned,
                                    "parts_scanned differ: {} w={} {:?} {:?}", sql, workers, mode, planner
                                );
                                prop_assert_eq!(
                                    w.stats.tuples_scanned, g.stats.tuples_scanned,
                                    "tuples_scanned differ: {} w={} {:?} {:?}", sql, workers, mode, planner
                                );
                            }
                            (Err(w), Err(g)) => {
                                prop_assert_eq!(
                                    w.kind(), g.kind(),
                                    "error kind differs: {} w={} {:?} {:?}", sql, workers, mode, planner
                                );
                                prop_assert_eq!(
                                    w.to_string(), g.to_string(),
                                    "error message differs: {} w={} {:?} {:?}", sql, workers, mode, planner
                                );
                            }
                            (w, g) => {
                                return Err(TestCaseError::fail(format!(
                                    "outcomes disagree for {sql} (workers={workers} {mode:?} \
                                     {planner:?}): baseline={:?} got={:?}",
                                    w.map(|o| o.rows.len()),
                                    g.map(|o| o.rows.len()),
                                )));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Compiled expression evaluation is invisible to results: every
    /// planner × execution mode combination (Orca/legacy × Sequential/
    /// Parallel) still equals the brute-force reference, which bypasses
    /// `mpp_expr` evaluation entirely.
    #[test]
    fn compilation_unchanged_across_planners_and_modes(
        pred in arb_pred(),
        seed in 0u64..100,
        parts in 1usize..24,
        segs in 1usize..5,
    ) {
        let (seq, par) = mode_pair(segs, parts, seed);
        let sql = format!("SELECT * FROM r WHERE {}", pred.to_sql());
        let expected = sorted(brute_force(&seq, "r", &pred));
        for db in [&seq, &par] {
            let orca = db.sql(&sql).unwrap();
            prop_assert_eq!(
                sorted(orca.rows),
                expected.clone(),
                "orca rows changed under compilation for {}",
                sql
            );
            let legacy = db.sql_legacy(&sql).unwrap();
            prop_assert_eq!(
                sorted(legacy.rows),
                expected.clone(),
                "legacy rows changed under compilation for {}",
                sql
            );
        }
    }
}
